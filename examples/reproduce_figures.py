#!/usr/bin/env python
"""Regenerate any figure or table of the paper's evaluation section.

Usage:
    python examples/reproduce_figures.py                # list figures
    python examples/reproduce_figures.py fig7           # run one figure
    python examples/reproduce_figures.py all --scale 0.3
    python examples/reproduce_figures.py fig8 --workers 4 --trials 4

This script is a thin veneer over the orchestration CLI (``python -m
repro``): with no argument it lists the figures, and otherwise it forwards
``FIGURE [options...]`` to ``repro run`` unchanged, so every ``repro run``
option (``--scale``, ``--seed``, ``--trials``, ``--workers``,
``--no-cache``, ``--force``, ``--quiet``, ``--cache-dir``) works here too.
Figure runs fan out over ``--workers`` processes and are cached
content-addressably under ``.repro_cache/``; note that per-trial driver
seeds are derived from the experiment spec and ``--seed``, so use
``repro.experiments.figures.run_figure`` directly to drive a specific
raw seed.

``--scale 1.0`` is still far below the paper's 40K-host networks; scale
up gradually and expect runtime to grow superlinearly with network size.
"""

from __future__ import annotations

import sys

from repro.orchestration.cli import main as cli_main


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv == ["-h"] or argv == ["--help"]:
        print(__doc__)
        return cli_main(["figures"])
    return cli_main(["run", *argv])


if __name__ == "__main__":
    raise SystemExit(main())
