#!/usr/bin/env python
"""Regenerate any figure or table of the paper's evaluation section.

Usage:
    python examples/reproduce_figures.py                # list figures
    python examples/reproduce_figures.py fig7           # run one figure
    python examples/reproduce_figures.py all --scale 0.3
    python examples/reproduce_figures.py fig10 --scale 1.0 --seed 3

The ``--scale`` flag scales network sizes relative to the default
benchmark-friendly configuration; ``--scale 1.0`` is still far below the
paper's 40K-host networks (see EXPERIMENTS.md for how to go to full scale
and what to expect in runtime).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.tables import format_table


def list_figures() -> None:
    rows = [{"figure": key, "description": description}
            for key, (description, _) in FIGURES.items()]
    print(format_table(rows, title="Available figures"))


def run_one(figure_id: str, scale: float, seed: int) -> None:
    description, _ = FIGURES[figure_id]
    print(f"== {figure_id}: {description} (scale={scale}) ==")
    started = time.time()
    rows = run_figure(figure_id, scale=scale, seed=seed)
    elapsed = time.time() - started
    print(format_table(rows))
    print(f"-- {len(rows)} rows in {elapsed:.1f}s --")
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", nargs="?", default=None,
                        help="figure id (e.g. fig7) or 'all'")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="network-size scale factor (default 0.5)")
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    args = parser.parse_args(argv)

    if args.figure is None:
        list_figures()
        return 0
    if args.figure == "all":
        for figure_id in FIGURES:
            run_one(figure_id, args.scale, args.seed)
        return 0
    if args.figure not in FIGURES:
        print(f"unknown figure {args.figure!r}; known figures:", file=sys.stderr)
        list_figures()
        return 1
    run_one(args.figure, args.scale, args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
