#!/usr/bin/env python
"""P2P scenario: taking a census of a Gnutella-like file-sharing overlay.

The operator of a measurement host wants to know (a) how many peers are
online, (b) the total number of files shared, and (c) a *continuously*
refreshed estimate of the network size while peers come and go.  The example
exercises three different tools from the library:

1. one-shot WILDFIRE count/sum queries with validity certificates,
2. the RANDOMIZEDREPORT sampled census (cheaper, approximate), and
3. the Section 5.4 capture-recapture estimator for continuous monitoring.

Run with:  python examples/p2p_network_census.py
"""

from __future__ import annotations

import random

from repro import ValidAggregator
from repro.core.config import ProtocolConfig
from repro.experiments.tables import format_table
from repro.queries.size_estimation import CaptureRecaptureEstimator
from repro.simulation.churn import uniform_failure_schedule
from repro.topology.gnutella import gnutella_like_topology
from repro.workloads.values import zipf_values


def one_shot_census(topo, shared_files, churn) -> None:
    aggregator = ValidAggregator(
        topo, shared_files, querying_host=0, seed=5,
        protocol_config=ProtocolConfig(fm_repetitions=16),
    )
    rows = []
    for kind, protocol in (("count", "wildfire"),
                           ("count", "randomized-report"),
                           ("sum", "wildfire")):
        result = aggregator.query(kind, protocol=protocol, churn=churn)
        rows.append({
            "query": kind,
            "protocol": result.protocol,
            "declared": round(result.value),
            "true_initial": round(aggregator.true_value(kind)),
            "valid": result.is_valid,
            "messages": result.communication_cost,
        })
    print(format_table(rows, title="One-shot census under churn"))
    print()


def continuous_size_estimate(initial_peers: int = 3000, intervals: int = 10) -> None:
    """Capture-recapture monitoring of a population with ongoing churn."""
    rng = random.Random(9)
    alive = set(range(initial_peers))
    next_id = initial_peers
    estimator = CaptureRecaptureEstimator()
    rows = []
    for interval in range(intervals):
        sample = rng.sample(sorted(alive), 250)
        record = estimator.observe_interval(alive, sample)
        if record is not None:
            rows.append({
                "interval": interval,
                "true_peers": len(alive),
                "estimate": round(record.estimate),
                "relative_error": round(abs(record.estimate / len(alive) - 1.0), 3),
            })
        # 4% of peers leave and ~2.5% join before the next sampling round.
        departures = rng.sample(sorted(alive), int(len(alive) * 0.04))
        alive.difference_update(departures)
        for _ in range(int(len(alive) * 0.025)):
            alive.add(next_id)
            next_id += 1
    print(format_table(rows, title="Continuous size estimation (capture-recapture)"))
    print()


def main() -> None:
    num_peers = 1200
    topo = gnutella_like_topology(num_peers, seed=5)
    # Attribute value = number of files each peer shares (heavy-tailed).
    shared_files = zipf_values(num_peers, low=0, high=400, seed=5)

    print(f"Overlay: {topo.num_hosts} peers, {topo.num_edges} links, "
          f"diameter ~ {topo.diameter_estimate()}")
    print()

    churn = uniform_failure_schedule(
        candidates=range(num_peers),
        num_failures=num_peers // 12,
        start=0.5,
        end=18.0,
        seed=13,
        protect=[0],
    )
    one_shot_census(topo, shared_files, churn)
    continuous_size_estimate()
    print("The sampled census and the capture-recapture monitor trade accuracy")
    print("for cost; the WILDFIRE census carries a validity certificate that")
    print("pins its answer to the hosts that were actually reachable.")


if __name__ == "__main__":
    main()
