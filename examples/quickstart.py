#!/usr/bin/env python
"""Quickstart: validity-aware aggregation on a dynamic P2P network.

Builds a random overlay, attaches Zipfian attribute values, and runs the
whole aggregate-query menu (min / max / count / sum / avg) with WILDFIRE,
first on a static network and then under churn, printing the oracle's
Single-Site Validity verdict next to each answer.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ValidAggregator, topology, workloads
from repro.experiments.tables import format_table
from repro.simulation.churn import uniform_failure_schedule


def main() -> None:
    num_hosts = 500
    topo = topology.random_topology(num_hosts, avg_degree=5, seed=42)
    values = workloads.zipf_values(num_hosts, seed=42)
    aggregator = ValidAggregator(topo, values, querying_host=0, seed=42)

    print(f"Network: {topo.name}, {topo.num_hosts} hosts, {topo.num_edges} edges, "
          f"diameter ~ {topo.diameter_estimate()}")
    print()

    # ------------------------------------------------------------------
    # Static network: every protocol answer matches the exact aggregate
    # (count/sum are Flajolet-Martin estimates, so they carry sketch noise).
    # ------------------------------------------------------------------
    rows = []
    for kind in ("min", "max", "count", "sum", "avg"):
        result = aggregator.query(kind)
        rows.append({
            "query": kind,
            "declared": round(result.value, 1),
            "exact": round(aggregator.true_value(kind), 1),
            "messages": result.communication_cost,
        })
    print(format_table(rows, title="Failure-free network (WILDFIRE)"))
    print()

    # ------------------------------------------------------------------
    # Dynamic network: 10% of hosts leave while the query is processed.
    # The oracle certificate tells us whether each answer is Single-Site
    # Valid with respect to the churn that actually happened.
    # ------------------------------------------------------------------
    churn = uniform_failure_schedule(
        candidates=range(num_hosts),
        num_failures=num_hosts // 10,
        start=0.5,
        end=15.0,
        seed=7,
        protect=[0],
    )
    rows = []
    for kind in ("min", "max", "count", "sum"):
        for protocol in ("wildfire", "spanning-tree"):
            result = aggregator.query(kind, protocol=protocol, churn=churn)
            rows.append({
                "query": kind,
                "protocol": result.protocol,
                "declared": round(result.value, 1),
                "oracle_lower": round(result.certificate.lower_bound, 1),
                "oracle_upper": round(result.certificate.upper_bound, 1),
                "single_site_valid": result.is_valid,
            })
    print(format_table(rows, title="Dynamic network (10% of hosts leave mid-query)"))
    print()
    print("WILDFIRE answers stay inside the oracle bounds; the best-effort")
    print("spanning tree silently drops whole subtrees once churn kicks in.")


if __name__ == "__main__":
    main()
