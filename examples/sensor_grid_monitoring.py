#!/usr/bin/env python
"""Sensor-network scenario: monitoring a field of temperature sensors.

A 30x30 sensor grid (Moore neighborhoods, wireless broadcast medium) reports
temperature readings.  The operator wants the maximum and average reading
plus a live count of responsive sensors while sensors keep dying from
battery exhaustion.  The example contrasts WILDFIRE with the TAG-style
spanning tree on exactly this workload and shows the price of validity in
messages.

Run with:  python examples/sensor_grid_monitoring.py
"""

from __future__ import annotations

import random

from repro import ValidAggregator
from repro.core.config import ProtocolConfig, SimulationConfig
from repro.experiments.tables import format_table
from repro.simulation.churn import uniform_failure_schedule
from repro.topology.grid import grid_topology


def synthetic_temperatures(num_sensors: int, seed: int = 0) -> list:
    """Base temperature 18-24 C with a hot spot in one corner of the field."""
    rng = random.Random(seed)
    side = int(num_sensors ** 0.5)
    readings = []
    for sensor in range(num_sensors):
        row, col = divmod(sensor, side)
        base = rng.uniform(18.0, 24.0)
        # Hot spot centred near (5, 5): adds up to ~15 degrees.
        hotspot = 15.0 * max(0.0, 1.0 - ((row - 5) ** 2 + (col - 5) ** 2) / 50.0)
        readings.append(round(base + hotspot, 1))
    return readings


def main() -> None:
    side = 30
    grid = grid_topology(side)
    readings = synthetic_temperatures(grid.num_hosts, seed=3)
    # The base station is the corner sensor 0; the wireless flag models the
    # broadcast radio medium (one transmission reaches all neighbors).
    aggregator = ValidAggregator(
        grid,
        readings,
        querying_host=0,
        seed=3,
        simulation=SimulationConfig(wireless=True),
        protocol_config=ProtocolConfig(fm_repetitions=16),
    )

    print(f"Sensor field: {side}x{side} grid, {grid.num_hosts} sensors, "
          f"diameter ~ {grid.diameter_estimate()}")
    print(f"True max temperature: {max(readings)} C, "
          f"true mean: {sum(readings) / len(readings):.1f} C")
    print()

    # 8% of the sensors die (battery / hardware) while queries run.
    churn = uniform_failure_schedule(
        candidates=range(grid.num_hosts),
        num_failures=int(grid.num_hosts * 0.08),
        start=1.0,
        end=40.0,
        seed=11,
        protect=[0],
    )

    rows = []
    for kind in ("max", "avg", "count"):
        for protocol in ("wildfire", "spanning-tree", "dag"):
            result = aggregator.query(kind, protocol=protocol, churn=churn)
            rows.append({
                "query": kind,
                "protocol": result.protocol,
                "declared": round(result.value, 1),
                "oracle_lower": round(result.certificate.lower_bound, 1),
                "oracle_upper": round(result.certificate.upper_bound, 1),
                "valid": result.is_valid,
                "messages": result.communication_cost,
            })
    print(format_table(rows, title="Aggregates while 8% of sensors fail"))
    print()
    print("Reading the table:")
    print(" * WILDFIRE max/avg/count stay within the oracle's validity bounds.")
    print(" * The spanning tree loses whole subtrees behind failed sensors, so")
    print("   its count/avg drift below the lower bound -- with no way for the")
    print("   operator to know.")
    print(" * The price: WILDFIRE sends roughly 4-5x more messages for count,")
    print("   but max queries cost about the same as the tree thanks to early")
    print("   aggregation during the broadcast wave.")


if __name__ == "__main__":
    main()
