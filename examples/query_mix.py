#!/usr/bin/env python
"""Multi-tenant query service: many concurrent queries, one network.

Builds one shared Gnutella-like overlay and multiplexes an open-world
query mix over it -- Poisson arrivals of WILDFIRE / spanning-tree / DAG
queries from random hosts, a slice of them continuous (periodic) streams
-- all driven by a single calendar-queue event loop.  Then demonstrates
the service's determinism contract by replaying one tenant's query solo
and comparing it bit-for-bit.

Run with:  python examples/query_mix.py
(equivalent CLI: repro serve --hosts 500 --qps 2 --duration 30)
"""

from __future__ import annotations

import random

from repro.experiments.tables import format_table
from repro.protocols.base import protocol_from_spec, run_protocol
from repro.service import QueryService, QueryStatus
from repro.topology.gnutella import gnutella_like_topology
from repro.workloads.query_mix import generate_query_mix


def main() -> None:
    num_hosts = 500
    seed = 42
    topo = gnutella_like_topology(num_hosts, seed=seed)
    rng = random.Random(seed)
    values = [rng.random() * 100.0 for _ in range(num_hosts)]

    # ------------------------------------------------------------------
    # Generate the open-world load: ~2 query streams per time unit for 30
    # units, 20% of them continuous streams of 3 reports each.
    # ------------------------------------------------------------------
    submissions = generate_query_mix(
        num_hosts, qps=2.0, duration=30.0, seed=seed,
        continuous_fraction=0.2, period=8.0, reports=3)
    print(f"Workload: {len(submissions)} query submissions over 30 time "
          f"units on {topo.name} ({num_hosts} hosts)")

    # ------------------------------------------------------------------
    # Multiplex everything over one service (one live network, one event
    # loop, per-query seed streams and cost accounting).
    # ------------------------------------------------------------------
    service = QueryService(topo, values, seed=seed, stats="streaming")
    ids = [
        service.submit(s.protocol, s.aggregate, querying_host=s.querying_host,
                       at=s.time, stream=s.stream)
        for s in submissions
    ]
    report = service.run()
    print(f"Answered {report.answered}/{len(ids)} queries in "
          f"{report.elapsed:.2f}s wall "
          f"({report.queries_per_second:.1f} queries/s, "
          f"{report.messages_sent} messages)\n")

    rows = []
    for outcome in report.outcomes[:10]:
        rows.append({
            "id": outcome.query_id,
            "protocol": outcome.protocol,
            "query": outcome.query.kind.value,
            "host": outcome.querying_host,
            "launched": outcome.submitted_at,
            "declared": outcome.declared_at,
            "value": (round(outcome.value, 2)
                      if outcome.value is not None else None),
            "messages": outcome.costs.communication_cost,
        })
    print(format_table(rows, title="First 10 tenants"))
    print()

    # ------------------------------------------------------------------
    # Determinism contract: replay one tenant's query solo with its
    # session seed and the service's shared d_hat -- the declared value
    # and the full cost accounting must match bit-for-bit.
    # ------------------------------------------------------------------
    sample = next(o for o in report.outcomes
                  if o.status is QueryStatus.DONE)
    solo = run_protocol(
        protocol_from_spec(sample.protocol), topo, values,
        sample.query.kind.value, querying_host=sample.querying_host,
        seed=sample.seed, d_hat=service.d_hat)
    print(f"Replaying query {sample.query_id} ({sample.protocol} "
          f"{sample.query.kind.value}) solo:")
    print(f"  service value {sample.value!r} == solo value {solo.value!r}: "
          f"{sample.value == solo.value}")
    print(f"  cost fingerprints match: "
          f"{sample.costs.fingerprint() == solo.costs.fingerprint()}")


if __name__ == "__main__":
    main()
