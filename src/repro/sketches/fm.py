"""Flajolet-Martin probabilistic counting sketches.

An :class:`FMSketch` holds ``c`` bit vectors.  Inserting a (conceptually
distinct) element samples, for each vector, a geometrically distributed bit
index -- the position of the last Tail before the first Head in a fair coin
toss sequence -- and sets that bit.  Two sketches are merged with bitwise OR,
which is idempotent, commutative and associative: exactly the properties the
WILDFIRE protocol needs from its combine function.

The number of distinct elements is estimated from the average position of
the lowest zero bit across the ``c`` vectors:  ``2 ** z_bar / 0.77351``.

Storage and sampling are built for the simulation kernel's hot path:

* All ``c`` vectors live in ONE Python integer (vector ``i`` occupies bits
  ``[i * num_bits, (i + 1) * num_bits)``), so merging two sketches -- the
  operation WILDFIRE performs once per received message -- is a single
  bitwise OR of two ints instead of ``c`` separate ORs plus tuple and
  dataclass construction.
* Geometric sampling draws one ``getrandbits(c * (num_bits - 1))`` block
  per element and reads each vector's index as the length of the run of
  ones at the bottom of its ``num_bits - 1`` chunk.  A chunk of ``k`` ones
  followed by a zero has probability ``2**-(k+1)`` and a chunk of all ones
  has probability ``2**-(num_bits-1)`` -- exactly the clamped coin-toss
  distribution, at a fraction of the cost of per-toss ``rng.random()``
  calls.

The pre-rewrite sampler (one ``rng.random()`` call per coin toss) is kept
as the ``"legacy"`` sampling mode.  It consumes the underlying RNG stream
bit-for-bit like the seed implementation did, which is what lets the golden
seeded-equivalence tests (``tests/golden/``) replay pre-rewrite experiment
results on the rewritten kernel.  Switch modes with :func:`sampling_mode`.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Iterable, Iterator, List, Optional, Tuple

#: The Flajolet-Martin bias correction constant phi; E[2^z] ~= phi * n.
FM_CORRECTION = 0.77351

#: Default number of bits per vector; 32 bits supports networks well beyond
#: the paper's scale (the paper suggests the same default).
DEFAULT_NUM_BITS = 32

#: Valid sampling modes: ``"fast"`` (getrandbits blocks, the default) and
#: ``"legacy"`` (per-toss ``rng.random()``, stream-compatible with the seed
#: implementation; used by the golden equivalence harness).
SAMPLING_MODES = ("fast", "legacy")

_sampling_mode = "fast"


def get_sampling_mode() -> str:
    """The geometric sampling mode currently in effect."""
    return _sampling_mode


def set_sampling_mode(mode: str) -> str:
    """Set the sampling mode and return the previous one."""
    global _sampling_mode
    if mode not in SAMPLING_MODES:
        raise ValueError(
            f"unknown sampling mode {mode!r}; valid: {SAMPLING_MODES}"
        )
    previous = _sampling_mode
    _sampling_mode = mode
    return previous


@contextmanager
def sampling_mode(mode: str) -> Iterator[None]:
    """Temporarily switch the geometric sampling mode (for tests/goldens)."""
    previous = set_sampling_mode(mode)
    try:
        yield
    finally:
        set_sampling_mode(previous)


def _geometric_bit_index(rng: random.Random, num_bits: int) -> int:
    """Sample the bit index set by one simulated fair-coin-toss sequence.

    Half the elements map to bit 0, a quarter to bit 1, an eighth to bit 2,
    and so on; the index is clamped to the vector width.  This is the
    ``"legacy"`` sampler: one ``rng.random()`` call per toss, identical RNG
    consumption to the seed implementation.
    """
    index = 0
    while rng.random() < 0.5 and index < num_bits - 1:
        index += 1
    return index


def _sample_packed_element(rng: random.Random, repetitions: int,
                           num_bits: int) -> int:
    """One element's sketch as a packed int: one set bit per vector."""
    if _sampling_mode == "legacy":
        packed = 0
        for rep in range(repetitions):
            packed |= 1 << (rep * num_bits + _geometric_bit_index(rng, num_bits))
        return packed
    chunk = num_bits - 1
    if chunk == 0:
        # One-bit vectors: every element lands on bit 0 of each vector.
        packed = 0
        for rep in range(repetitions):
            packed |= 1 << (rep * num_bits)
        return packed
    draw = rng.getrandbits(repetitions * chunk)
    mask = (1 << chunk) - 1
    packed = 0
    offset = 0
    for rep in range(repetitions):
        bits = (draw >> (rep * chunk)) & mask
        # Index = length of the run of ones at the bottom of the chunk:
        # ``~bits & (bits + 1)`` isolates the lowest zero bit.
        packed |= 1 << (offset + (~bits & (bits + 1)).bit_length() - 1)
        offset += num_bits
    return packed


class FMSketch:
    """An immutable FM sketch: ``c`` bit vectors packed into one integer.

    Attributes:
        packed: all vectors in one int; vector ``i`` occupies the bit range
            ``[i * num_bits, (i + 1) * num_bits)``.
        repetitions: the number of vectors ``c``.
        num_bits: width of each bit vector.

    The public surface of the original tuple-of-ints representation is
    preserved: sketches construct from ``vectors=``, expose a ``vectors``
    view, and compare equal iff their vectors and widths are equal.
    """

    __slots__ = ("packed", "repetitions", "num_bits")

    def __init__(self, vectors: Tuple[int, ...],
                 num_bits: int = DEFAULT_NUM_BITS) -> None:
        vectors = tuple(vectors)
        if not vectors:
            raise ValueError("an FM sketch needs at least one vector")
        if num_bits < 1:
            raise ValueError("num_bits must be positive")
        limit = 1 << num_bits
        packed = 0
        offset = 0
        for vector in vectors:
            if vector < 0 or vector >= limit:
                raise ValueError("bit vector out of range for num_bits")
            packed |= vector << offset
            offset += num_bits
        self.packed = packed
        self.repetitions = len(vectors)
        self.num_bits = num_bits

    @classmethod
    def _from_packed(cls, packed: int, repetitions: int,
                     num_bits: int) -> "FMSketch":
        """Internal unchecked constructor used on the merge hot path."""
        sketch = object.__new__(cls)
        sketch.packed = packed
        sketch.repetitions = repetitions
        sketch.num_bits = num_bits
        return sketch

    @classmethod
    def from_packed(cls, packed: int, repetitions: int,
                    num_bits: int = DEFAULT_NUM_BITS) -> "FMSketch":
        """Rehydrate a sketch from its packed-int representation.

        This is the public counterpart of the internal hot-path
        constructor: bulk consumers (the WILDFIRE packed fast path, the
        vector kernel lane) carry sketch state around as bare ints --
        merging is then a single integer OR -- and only materialise an
        :class:`FMSketch` when the aggregate is actually read or sent.
        ``packed`` must fit ``repetitions`` vectors of ``num_bits`` bits.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        if num_bits < 1:
            raise ValueError("num_bits must be positive")
        if packed < 0 or packed >> (repetitions * num_bits):
            raise ValueError("packed value out of range for the sketch shape")
        return cls._from_packed(packed, repetitions, num_bits)

    @staticmethod
    def union_packed(masks: Iterable[int]) -> int:
        """OR together many packed sketch states in one pass.

        The batched form of :meth:`merge` for callers holding bare packed
        ints: folding ``k`` partial aggregates costs ``k`` integer ORs and
        zero object allocations.  Returns 0 (the empty sketch) for an
        empty iterable; callers are responsible for shape agreement, as
        with any packed-int arithmetic.
        """
        union = 0
        for mask in masks:
            union |= mask
        return union

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, repetitions: int, num_bits: int = DEFAULT_NUM_BITS) -> "FMSketch":
        """A sketch representing the empty set."""
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        if num_bits < 1:
            raise ValueError("num_bits must be positive")
        return cls._from_packed(0, repetitions, num_bits)

    @classmethod
    def for_new_element(
        cls,
        repetitions: int,
        rng: random.Random,
        num_bits: int = DEFAULT_NUM_BITS,
    ) -> "FMSketch":
        """Sketch of a single element distinct from every other element.

        This is the per-host initialisation of the distributed count
        operator: the host "pretends to have an element distinct from other
        hosts" by sampling fresh coin-toss sequences.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        if num_bits < 1:
            raise ValueError("num_bits must be positive")
        return cls._from_packed(
            _sample_packed_element(rng, repetitions, num_bits),
            repetitions, num_bits,
        )

    @classmethod
    def for_value(
        cls,
        value: int,
        repetitions: int,
        rng: random.Random,
        num_bits: int = DEFAULT_NUM_BITS,
    ) -> "FMSketch":
        """Sketch representing ``value`` distinct elements (the SUM operator).

        The host pretends to hold ``value`` distinct elements and ORs their
        single-element sketches locally before any communication, exactly as
        in Section 5.2.
        """
        if value < 0:
            raise ValueError("sum sketches require non-negative values")
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        if num_bits < 1:
            raise ValueError("num_bits must be positive")
        if _sampling_mode == "legacy":
            # Replays the seed implementation's RNG consumption order:
            # element-major, vector-minor, one coin-toss loop per sample.
            vectors = [0] * repetitions
            for _ in range(int(value)):
                for i in range(repetitions):
                    vectors[i] |= 1 << _geometric_bit_index(rng, num_bits)
            packed = 0
            offset = 0
            for vector in vectors:
                packed |= vector << offset
                offset += num_bits
            return cls._from_packed(packed, repetitions, num_bits)
        packed = 0
        for _ in range(int(value)):
            packed |= _sample_packed_element(rng, repetitions, num_bits)
        return cls._from_packed(packed, repetitions, num_bits)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    @property
    def vectors(self) -> Tuple[int, ...]:
        """The per-repetition bit vectors (unpacked view)."""
        mask = (1 << self.num_bits) - 1
        packed = self.packed
        num_bits = self.num_bits
        return tuple(
            (packed >> (rep * num_bits)) & mask
            for rep in range(self.repetitions)
        )

    def merge(self, other: "FMSketch") -> "FMSketch":
        """OR-combine two sketches (duplicate-insensitive union)."""
        if self.repetitions != other.repetitions:
            raise ValueError("cannot merge sketches with different repetitions")
        if self.num_bits != other.num_bits:
            raise ValueError("cannot merge sketches with different widths")
        return FMSketch._from_packed(
            self.packed | other.packed, self.repetitions, self.num_bits
        )

    def __or__(self, other: "FMSketch") -> "FMSketch":
        return self.merge(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FMSketch):
            return NotImplemented
        return (
            self.packed == other.packed
            and self.repetitions == other.repetitions
            and self.num_bits == other.num_bits
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self.packed, self.repetitions, self.num_bits))

    def __repr__(self) -> str:
        return f"FMSketch(vectors={self.vectors!r}, num_bits={self.num_bits})"

    def is_empty(self) -> bool:
        return self.packed == 0

    def lowest_zero_bits(self) -> Tuple[int, ...]:
        """The index of the lowest unset bit in each vector."""
        mask = (1 << self.num_bits) - 1
        result: List[int] = []
        for rep in range(self.repetitions):
            vector = (self.packed >> (rep * self.num_bits)) & mask
            # ``~v & (v + 1)`` isolates the lowest zero bit; a full vector
            # (all ones) yields index ``num_bits``.
            result.append((~vector & (vector + 1)).bit_length() - 1)
        return tuple(result)

    def estimate(self) -> float:
        """Estimate of the number of distinct elements represented."""
        if self.packed == 0:
            return 0.0
        zeros = self.lowest_zero_bits()
        z_bar = sum(zeros) / len(zeros)
        return (2.0 ** z_bar) / FM_CORRECTION

    def describe(self) -> str:
        """Readable rendering of the bit vectors (for debugging)."""
        rows = [format(vector, f"0{self.num_bits}b")[::-1] for vector in self.vectors]
        return "\n".join(rows)


# ----------------------------------------------------------------------
# Convenience functions used by the accuracy experiments (Figure 6)
# ----------------------------------------------------------------------
def sketch_for_new_element(
    repetitions: int,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    num_bits: int = DEFAULT_NUM_BITS,
) -> FMSketch:
    """Standalone wrapper around :meth:`FMSketch.for_new_element`."""
    rng = rng if rng is not None else random.Random(seed)
    return FMSketch.for_new_element(repetitions, rng, num_bits=num_bits)


def sketch_for_value(
    value: int,
    repetitions: int,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    num_bits: int = DEFAULT_NUM_BITS,
) -> FMSketch:
    """Standalone wrapper around :meth:`FMSketch.for_value`."""
    rng = rng if rng is not None else random.Random(seed)
    return FMSketch.for_value(value, repetitions, rng, num_bits=num_bits)


def estimate_count(sketches: Iterable[FMSketch]) -> float:
    """OR together per-element sketches and estimate their distinct count."""
    merged: Optional[FMSketch] = None
    for sketch in sketches:
        merged = sketch if merged is None else merged.merge(sketch)
    if merged is None:
        return 0.0
    return merged.estimate()


def relative_error(estimate: float, truth: float) -> float:
    """The paper's relative-error validity metric ``|estimate/truth - 1|``."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate / truth - 1.0)


def required_repetitions(error_factor: float) -> int:
    """Repetitions needed so Pr[1/c <= est/true <= c] >= 1 - 2/c (Lemma 5.1).

    Given a target multiplicative error factor ``c`` this simply returns the
    smallest integer ``c`` satisfying the lemma's premise (c > 2); it exists
    to make the guarantee explicit in code and tests.
    """
    if error_factor <= 2:
        raise ValueError("the FM guarantee requires an error factor greater than 2")
    import math

    return int(math.ceil(error_factor))
