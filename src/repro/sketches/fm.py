"""Flajolet-Martin probabilistic counting sketches.

An :class:`FMSketch` holds ``c`` bit vectors.  Inserting a (conceptually
distinct) element samples, for each vector, a geometrically distributed bit
index -- the position of the last Tail before the first Head in a fair coin
toss sequence -- and sets that bit.  Two sketches are merged with bitwise OR,
which is idempotent, commutative and associative: exactly the properties the
WILDFIRE protocol needs from its combine function.

The number of distinct elements is estimated from the average position of
the lowest zero bit across the ``c`` vectors:  ``2 ** z_bar / 0.77351``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

#: The Flajolet-Martin bias correction constant phi; E[2^z] ~= phi * n.
FM_CORRECTION = 0.77351

#: Default number of bits per vector; 32 bits supports networks well beyond
#: the paper's scale (the paper suggests the same default).
DEFAULT_NUM_BITS = 32


def _geometric_bit_index(rng: random.Random, num_bits: int) -> int:
    """Sample the bit index set by one simulated fair-coin-toss sequence.

    Half the elements map to bit 0, a quarter to bit 1, an eighth to bit 2,
    and so on; the index is clamped to the vector width.
    """
    index = 0
    while rng.random() < 0.5 and index < num_bits - 1:
        index += 1
    return index


@dataclass(frozen=True)
class FMSketch:
    """An immutable FM sketch: ``c`` bit vectors stored as Python ints.

    Attributes:
        vectors: one integer bitmask per repetition.
        num_bits: width of each bit vector.
    """

    vectors: Tuple[int, ...]
    num_bits: int = DEFAULT_NUM_BITS

    def __post_init__(self) -> None:
        if not self.vectors:
            raise ValueError("an FM sketch needs at least one vector")
        if self.num_bits < 1:
            raise ValueError("num_bits must be positive")
        limit = 1 << self.num_bits
        for vector in self.vectors:
            if vector < 0 or vector >= limit:
                raise ValueError("bit vector out of range for num_bits")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, repetitions: int, num_bits: int = DEFAULT_NUM_BITS) -> "FMSketch":
        """A sketch representing the empty set."""
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        return cls(vectors=tuple([0] * repetitions), num_bits=num_bits)

    @classmethod
    def for_new_element(
        cls,
        repetitions: int,
        rng: random.Random,
        num_bits: int = DEFAULT_NUM_BITS,
    ) -> "FMSketch":
        """Sketch of a single element distinct from every other element.

        This is the per-host initialisation of the distributed count
        operator: the host "pretends to have an element distinct from other
        hosts" by sampling fresh coin-toss sequences.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        vectors = tuple(
            1 << _geometric_bit_index(rng, num_bits) for _ in range(repetitions)
        )
        return cls(vectors=vectors, num_bits=num_bits)

    @classmethod
    def for_value(
        cls,
        value: int,
        repetitions: int,
        rng: random.Random,
        num_bits: int = DEFAULT_NUM_BITS,
    ) -> "FMSketch":
        """Sketch representing ``value`` distinct elements (the SUM operator).

        The host pretends to hold ``value`` distinct elements and ORs their
        single-element sketches locally before any communication, exactly as
        in Section 5.2.
        """
        if value < 0:
            raise ValueError("sum sketches require non-negative values")
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        vectors = [0] * repetitions
        for _ in range(int(value)):
            for i in range(repetitions):
                vectors[i] |= 1 << _geometric_bit_index(rng, num_bits)
        return cls(vectors=tuple(vectors), num_bits=num_bits)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    @property
    def repetitions(self) -> int:
        return len(self.vectors)

    def merge(self, other: "FMSketch") -> "FMSketch":
        """OR-combine two sketches (duplicate-insensitive union)."""
        if self.repetitions != other.repetitions:
            raise ValueError("cannot merge sketches with different repetitions")
        if self.num_bits != other.num_bits:
            raise ValueError("cannot merge sketches with different widths")
        vectors = tuple(a | b for a, b in zip(self.vectors, other.vectors))
        return FMSketch(vectors=vectors, num_bits=self.num_bits)

    def __or__(self, other: "FMSketch") -> "FMSketch":
        return self.merge(other)

    def is_empty(self) -> bool:
        return all(vector == 0 for vector in self.vectors)

    def lowest_zero_bits(self) -> Tuple[int, ...]:
        """The index of the lowest unset bit in each vector."""
        result = []
        for vector in self.vectors:
            index = 0
            while index < self.num_bits and (vector >> index) & 1:
                index += 1
            result.append(index)
        return tuple(result)

    def estimate(self) -> float:
        """Estimate of the number of distinct elements represented."""
        if self.is_empty():
            return 0.0
        zeros = self.lowest_zero_bits()
        z_bar = sum(zeros) / len(zeros)
        return (2.0 ** z_bar) / FM_CORRECTION

    def describe(self) -> str:
        """Readable rendering of the bit vectors (for debugging)."""
        rows = [format(vector, f"0{self.num_bits}b")[::-1] for vector in self.vectors]
        return "\n".join(rows)


# ----------------------------------------------------------------------
# Convenience functions used by the accuracy experiments (Figure 6)
# ----------------------------------------------------------------------
def sketch_for_new_element(
    repetitions: int,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    num_bits: int = DEFAULT_NUM_BITS,
) -> FMSketch:
    """Standalone wrapper around :meth:`FMSketch.for_new_element`."""
    rng = rng if rng is not None else random.Random(seed)
    return FMSketch.for_new_element(repetitions, rng, num_bits=num_bits)


def sketch_for_value(
    value: int,
    repetitions: int,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    num_bits: int = DEFAULT_NUM_BITS,
) -> FMSketch:
    """Standalone wrapper around :meth:`FMSketch.for_value`."""
    rng = rng if rng is not None else random.Random(seed)
    return FMSketch.for_value(value, repetitions, rng, num_bits=num_bits)


def estimate_count(sketches: Iterable[FMSketch]) -> float:
    """OR together per-element sketches and estimate their distinct count."""
    merged: Optional[FMSketch] = None
    for sketch in sketches:
        merged = sketch if merged is None else merged.merge(sketch)
    if merged is None:
        return 0.0
    return merged.estimate()


def relative_error(estimate: float, truth: float) -> float:
    """The paper's relative-error validity metric ``|estimate/truth - 1|``."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate / truth - 1.0)


def required_repetitions(error_factor: float) -> int:
    """Repetitions needed so Pr[1/c <= est/true <= c] >= 1 - 2/c (Lemma 5.1).

    Given a target multiplicative error factor ``c`` this simply returns the
    smallest integer ``c`` satisfying the lemma's premise (c > 2); it exists
    to make the guarantee explicit in code and tests.
    """
    if error_factor <= 2:
        raise ValueError("the FM guarantee requires an error factor greater than 2")
    import math

    return int(math.ceil(error_factor))
