"""Duplicate-insensitive aggregation sketches and combine functions.

Section 5.2 of the paper adapts the Flajolet-Martin (FM) probabilistic
counting sketch into duplicate-insensitive COUNT and SUM operators whose
combine function is a bitwise OR, which lets the WILDFIRE protocol aggregate
them without worrying about a value being folded in more than once.
"""

from repro.sketches.fm import (
    FM_CORRECTION,
    FMSketch,
    estimate_count,
    sketch_for_new_element,
    sketch_for_value,
)
from repro.sketches.combiners import (
    AverageState,
    Combiner,
    ExactAverageCombiner,
    ExactCountCombiner,
    ExactSumCombiner,
    FMAverageCombiner,
    FMCountCombiner,
    FMSumCombiner,
    MaxCombiner,
    MinCombiner,
    combiner_for_query,
)

__all__ = [
    "FMSketch",
    "FM_CORRECTION",
    "sketch_for_new_element",
    "sketch_for_value",
    "estimate_count",
    "Combiner",
    "MinCombiner",
    "MaxCombiner",
    "ExactCountCombiner",
    "ExactSumCombiner",
    "ExactAverageCombiner",
    "FMCountCombiner",
    "FMSumCombiner",
    "FMAverageCombiner",
    "AverageState",
    "combiner_for_query",
]
