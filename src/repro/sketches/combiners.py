"""Combine functions ("combiners") for in-network aggregation.

A combiner encapsulates everything a protocol needs to know about a query's
aggregation semantics:

* how a host turns its local attribute value into an initial partial
  aggregate (``initial``),
* how two partial aggregates are merged (``combine``),
* how the querying host turns its final partial aggregate into the declared
  answer (``finalize``), and
* whether the merge is *duplicate-insensitive*, i.e. whether folding the
  same partial aggregate in twice changes the result.

WILDFIRE floods partial aggregates along every path, so it requires a
duplicate-insensitive combiner (min, max, or the FM sketch operators);
tree-based protocols can also use the exact, duplicate-sensitive ones.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Any, Generic, Optional, TypeVar

from repro.sketches.fm import DEFAULT_NUM_BITS, FMSketch

State = TypeVar("State")


def _sketch_absorbs(a: FMSketch, b: FMSketch) -> bool:
    """Whether merging ``b`` into ``a`` would change nothing.

    Shares :meth:`FMSketch.merge`'s shape guard so mismatched sketches
    stay an error rather than silent corruption, but tests containment on
    the packed masks without allocating a merged sketch.
    """
    if a.repetitions != b.repetitions or a.num_bits != b.num_bits:
        raise ValueError("cannot merge sketches with different shapes")
    return (a.packed | b.packed) == a.packed


class Combiner(abc.ABC, Generic[State]):
    """Interface for query-specific combine functions."""

    #: True when combine(a, a) == a for all states (safe for WILDFIRE).
    duplicate_insensitive: bool = False

    #: True when ``initial`` consumes randomness (the FM sketch family),
    #: i.e. when the declared answer depends on the run seed.  The
    #: service's shared-flood cache keys on this: seed-insensitive runs
    #: (exact combiners under fixed delay) produce bit-identical results
    #: regardless of seed, so their computation keys omit the seed.
    stochastic: bool = False

    #: Short name used in reports and experiment tables.
    name: str = "combiner"

    @abc.abstractmethod
    def initial(self, value: float, rng: random.Random) -> State:
        """Partial aggregate representing a single host holding ``value``."""

    @abc.abstractmethod
    def combine(self, a: State, b: State) -> State:
        """Merge two partial aggregates."""

    def finalize(self, state: State) -> float:
        """Turn the final partial aggregate into the declared answer."""
        return float(state)  # type: ignore[arg-type]

    def states_equal(self, a: State, b: State) -> bool:
        """Whether two partial aggregates are equal (controls re-sending)."""
        return a == b

    def absorbs(self, a: State, b: State) -> bool:
        """Whether folding ``b`` into ``a`` would leave ``a`` unchanged.

        Equivalent to ``states_equal(combine(a, b), a)``; combiners with a
        cheap containment test override this so the simulation hot path can
        skip allocating a merged state that would be discarded.
        """
        return self.states_equal(self.combine(a, b), a)


# ----------------------------------------------------------------------
# Order statistics: duplicate-insensitive by nature
# ----------------------------------------------------------------------
class MinCombiner(Combiner[float]):
    """Minimum: the combine function is ``min`` itself."""

    duplicate_insensitive = True
    name = "min"

    def initial(self, value: float, rng: random.Random) -> float:
        return float(value)

    def combine(self, a: float, b: float) -> float:
        return a if a <= b else b

    def absorbs(self, a: float, b: float) -> bool:
        return a <= b


class MaxCombiner(Combiner[float]):
    """Maximum: the combine function is ``max`` itself."""

    duplicate_insensitive = True
    name = "max"

    def initial(self, value: float, rng: random.Random) -> float:
        return float(value)

    def combine(self, a: float, b: float) -> float:
        return a if a >= b else b

    def absorbs(self, a: float, b: float) -> bool:
        return a >= b


# ----------------------------------------------------------------------
# Exact (duplicate-sensitive) combiners for tree-structured protocols
# ----------------------------------------------------------------------
class ExactCountCombiner(Combiner[float]):
    """Exact count: every host contributes 1; combine is addition."""

    duplicate_insensitive = False
    name = "count-exact"

    def initial(self, value: float, rng: random.Random) -> float:
        return 1.0

    def combine(self, a: float, b: float) -> float:
        return a + b


class ExactSumCombiner(Combiner[float]):
    """Exact sum: combine is addition of attribute values."""

    duplicate_insensitive = False
    name = "sum-exact"

    def initial(self, value: float, rng: random.Random) -> float:
        return float(value)

    def combine(self, a: float, b: float) -> float:
        return a + b


@dataclass(frozen=True)
class AverageState:
    """Partial state for average queries: a (sum, count) pair."""

    total: float
    count: float

    def value(self) -> float:
        return self.total / self.count if self.count else 0.0


class ExactAverageCombiner(Combiner[AverageState]):
    """Exact average via (sum, count) pairs."""

    duplicate_insensitive = False
    name = "avg-exact"

    def initial(self, value: float, rng: random.Random) -> AverageState:
        return AverageState(total=float(value), count=1.0)

    def combine(self, a: AverageState, b: AverageState) -> AverageState:
        return AverageState(total=a.total + b.total, count=a.count + b.count)

    def finalize(self, state: AverageState) -> float:
        return state.value()


# ----------------------------------------------------------------------
# Duplicate-insensitive FM combiners (Section 5.2)
# ----------------------------------------------------------------------
class FMCountCombiner(Combiner[FMSketch]):
    """Duplicate-insensitive count using Flajolet-Martin sketches."""

    duplicate_insensitive = True
    stochastic = True
    name = "count-fm"
    #: State is a single packed bitmask int (enables protocol fast paths).
    packed_state = True

    def __init__(self, repetitions: int = 8, num_bits: int = DEFAULT_NUM_BITS) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        self.repetitions = repetitions
        self.num_bits = num_bits

    def initial(self, value: float, rng: random.Random) -> FMSketch:
        return FMSketch.for_new_element(self.repetitions, rng, num_bits=self.num_bits)

    def combine(self, a: FMSketch, b: FMSketch) -> FMSketch:
        return a.merge(b)

    def states_equal(self, a: FMSketch, b: FMSketch) -> bool:
        return a.packed == b.packed

    def absorbs(self, a: FMSketch, b: FMSketch) -> bool:
        return _sketch_absorbs(a, b)

    def finalize(self, state: FMSketch) -> float:
        return state.estimate()


class FMSumCombiner(Combiner[FMSketch]):
    """Duplicate-insensitive sum: each host contributes ``value`` elements."""

    duplicate_insensitive = True
    stochastic = True
    name = "sum-fm"
    #: State is a single packed bitmask int (enables protocol fast paths).
    packed_state = True

    def __init__(self, repetitions: int = 8, num_bits: int = DEFAULT_NUM_BITS) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        self.repetitions = repetitions
        self.num_bits = num_bits

    def initial(self, value: float, rng: random.Random) -> FMSketch:
        return FMSketch.for_value(int(value), self.repetitions, rng,
                                  num_bits=self.num_bits)

    def combine(self, a: FMSketch, b: FMSketch) -> FMSketch:
        return a.merge(b)

    def states_equal(self, a: FMSketch, b: FMSketch) -> bool:
        return a.packed == b.packed

    def absorbs(self, a: FMSketch, b: FMSketch) -> bool:
        return _sketch_absorbs(a, b)

    def finalize(self, state: FMSketch) -> float:
        return state.estimate()


@dataclass(frozen=True)
class _FMAverageState:
    """Partial state for the FM average: a (sum sketch, count sketch) pair."""

    sum_sketch: FMSketch
    count_sketch: FMSketch


class FMAverageCombiner(Combiner[_FMAverageState]):
    """Duplicate-insensitive average as the ratio of FM sum and FM count."""

    duplicate_insensitive = True
    stochastic = True
    name = "avg-fm"

    def __init__(self, repetitions: int = 8, num_bits: int = DEFAULT_NUM_BITS) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        self.repetitions = repetitions
        self.num_bits = num_bits

    def initial(self, value: float, rng: random.Random) -> _FMAverageState:
        return _FMAverageState(
            sum_sketch=FMSketch.for_value(int(value), self.repetitions, rng,
                                          num_bits=self.num_bits),
            count_sketch=FMSketch.for_new_element(self.repetitions, rng,
                                                  num_bits=self.num_bits),
        )

    def combine(self, a: _FMAverageState, b: _FMAverageState) -> _FMAverageState:
        return _FMAverageState(
            sum_sketch=a.sum_sketch.merge(b.sum_sketch),
            count_sketch=a.count_sketch.merge(b.count_sketch),
        )

    def absorbs(self, a: _FMAverageState, b: _FMAverageState) -> bool:
        # Short-circuit order matches combine(): both components must be
        # contained for the state to be unchanged.
        return (_sketch_absorbs(a.sum_sketch, b.sum_sketch)
                and _sketch_absorbs(a.count_sketch, b.count_sketch))

    def finalize(self, state: _FMAverageState) -> float:
        count = state.count_sketch.estimate()
        if count == 0:
            return 0.0
        return state.sum_sketch.estimate() / count


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
def combiner_for_query(
    kind: str,
    exact: bool = False,
    repetitions: int = 8,
    num_bits: int = DEFAULT_NUM_BITS,
) -> Combiner[Any]:
    """Build the right combiner for a query kind.

    Args:
        kind: one of ``min``, ``max``, ``count``, ``sum``, ``avg``.
        exact: when True, return the exact (duplicate-sensitive) combiner for
            count/sum/avg -- usable only by tree-structured protocols.
        repetitions: FM repetitions ``c`` for the sketch-based combiners.
        num_bits: bit-vector width for the sketch-based combiners.
    """
    normalized = kind.lower()
    if normalized in ("min", "minimum"):
        return MinCombiner()
    if normalized in ("max", "maximum"):
        return MaxCombiner()
    if normalized == "count":
        if exact:
            return ExactCountCombiner()
        return FMCountCombiner(repetitions=repetitions, num_bits=num_bits)
    if normalized == "sum":
        if exact:
            return ExactSumCombiner()
        return FMSumCombiner(repetitions=repetitions, num_bits=num_bits)
    if normalized in ("avg", "average", "mean"):
        if exact:
            return ExactAverageCombiner()
        return FMAverageCombiner(repetitions=repetitions, num_bits=num_bits)
    raise ValueError(f"unknown query kind: {kind!r}")
