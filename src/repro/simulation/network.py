"""Dynamic network graph on a packed-memory (CSR) core.

The network is the undirected graph ``G = (H, E)`` of the paper.  Hosts may
fail (leave) or join at any simulated instant; the adjacency structure and
the set of alive hosts are updated accordingly, and every change is recorded
in an event log so that the :class:`~repro.semantics.oracle.Oracle` can
reconstruct the exact host sets ``H_I``, ``H_U`` and ``H_C`` after a run.

The graph carries *connectivity* only; link timing lives in the engine's
:class:`~repro.simulation.delay.DelayModel` (the per-edge model derives
each edge's latency from the endpoint pair, so it needs no storage here).

Memory layout
-------------

Million-host runs made the previous per-host ``set`` adjacency the dominant
RSS cost (hundreds of bytes of hash-table overhead per 3-4 neighbor row),
so the storage is a compact CSR-style core:

* the *base* topology -- immutable after construction -- lives in two
  ``array('I')`` buffers: ``_base_offsets[h] : _base_offsets[h+1]`` spans
  host ``h``'s neighbor ids in ``_base_targets``, each row sorted
  ascending (4 bytes per directed edge instead of a boxed int in a set);
* alive-ness is a ``bytearray`` bitmap (``_alive``) plus a maintained
  ``_alive_count``, so ``is_alive``/``num_alive`` are O(1) and the
  engines' hot loops index the bitmap directly;
* churn-induced edge *additions* (host joins) go to a small per-host
  overflow table ``_overflow: {host: [new ids...]}``.  Join ids are
  assigned in increasing order and each overflow list starts sorted, so
  every ``base row + overflow row`` concatenation is already ascending;
* failures remove nothing: an edge is *current* iff both endpoints are
  alive, so the alive-filter applied at view time reproduces the eager
  edge-removal semantics of the old mutable-set implementation exactly.

The protocol-facing views -- the alive-neighbor frozenset queried per
unicast and the ascending tuple driving every multicast -- are lazily
materialised straight off the packed arrays and cached per host,
invalidated only for the hosts a failure or join actually touches.  The
ascending order is the same order the old implementation served (and the
golden snapshots pin); the set-based executable specification is retained
in :mod:`repro.simulation.network_reference` and the differential suite
``tests/simulation/test_network_packed.py`` holds this class to it.
"""

from __future__ import annotations

import enum
from array import array
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)


class NetworkEventKind(enum.Enum):
    """Kinds of topology changes recorded in the network event log."""

    FAIL = "fail"
    JOIN = "join"


@dataclass(frozen=True)
class NetworkEvent:
    """A single topology change: a host failing or joining at ``time``."""

    time: float
    kind: NetworkEventKind
    host: int
    neighbors: Tuple[int, ...] = ()


class DynamicNetwork:
    """An undirected graph of hosts supporting failures and joins.

    Host identifiers are consecutive integers starting at zero.  The class
    keeps the *current* adjacency (reflecting failures so far) as well as the
    *initial* adjacency, and an append-only log of topology changes.

    Args:
        adjacency: initial neighbor lists; ``adjacency[h]`` is an iterable of
            the neighbors of host ``h``.  The relation must be symmetric.
        validate: when True (default) the adjacency is checked for symmetry
            and self-loops; disable only for very large trusted inputs.
        copy: kept for API compatibility.  The CSR build reads the input
            exactly once and never aliases it, so construction is always
            safe regardless of who else holds the neighbor collections.
    """

    __slots__ = (
        "_base_n",
        "_base_offsets",
        "_base_targets",
        "_alive",
        "_alive_count",
        "_overflow",
        "_events",
        "_alive_neighbors",
        "_alive_sorted",
    )

    def __init__(
        self,
        adjacency: Sequence[Iterable[int]],
        validate: bool = True,
        copy: bool = True,
    ) -> None:
        if validate:
            sets = [
                neigh if isinstance(neigh, (set, frozenset)) else set(neigh)
                for neigh in adjacency
            ]
            self._validate(sets, len(sets))
            rows: List[List[int]] = [sorted(s) for s in sets]
        else:
            # Match the old implementation's normalisation exactly: every
            # row passes through set() unless it already is one, so a
            # duplicated neighbor entry in a trusted input cannot reach
            # the CSR buffers (it would double-count degree/num_edges and
            # double-deliver multicasts).  The set is transient; packed
            # Topology rows pay one C-speed copy during the build only.
            rows = [
                sorted(neigh) if isinstance(neigh, (set, frozenset))
                else sorted(set(neigh))
                for neigh in adjacency
            ]
        n = len(rows)
        offsets = array("I", [0])
        targets = array("I")
        push_offset = offsets.append
        extend_targets = targets.extend
        for row in rows:
            extend_targets(row)
            push_offset(len(targets))
        # Base CSR core: immutable once built (joins go to the overflow
        # table, failures only flip the alive bitmap).
        self._base_n = n
        self._base_offsets = offsets
        self._base_targets = targets
        self._alive = bytearray(b"\x01") * n
        self._alive_count = n
        self._overflow: Dict[int, List[int]] = {}
        self._events: List[NetworkEvent] = []
        # Per-host caches of the alive-neighbor views; invalidated only for
        # the hosts an individual failure or join touches.
        self._alive_neighbors: List[Optional[FrozenSet[int]]] = [None] * n
        self._alive_sorted: List[Optional[Tuple[int, ...]]] = [None] * n

    @staticmethod
    def _validate(adjacency: Sequence[Set[int]], n: int) -> None:
        for host, neighbors in enumerate(adjacency):
            for other in neighbors:
                if other == host:
                    raise ValueError(f"host {host} has a self-loop")
                if not 0 <= other < n:
                    raise ValueError(
                        f"host {host} lists unknown neighbor {other} (n={n})"
                    )
                if host not in adjacency[other]:
                    raise ValueError(
                        f"asymmetric edge: {host} lists {other} but not vice versa"
                    )

    # ------------------------------------------------------------------
    # Packed-core helpers
    # ------------------------------------------------------------------
    def _structural_neighbors(self, host: int) -> Iterator[int]:
        """All base + overflow neighbor ids of ``host``, alive or not."""
        if host < self._base_n:
            offsets = self._base_offsets
            yield from self._base_targets[offsets[host]:offsets[host + 1]]
        extra = self._overflow.get(host)
        if extra:
            yield from extra

    def _alive_row(self, host: int) -> List[int]:
        """Current alive neighbors of ``host``, ascending (uncached)."""
        alive = self._alive
        if not alive[host]:
            return []
        if host < self._base_n:
            offsets = self._base_offsets
            row = [
                t
                for t in self._base_targets[offsets[host]:offsets[host + 1]]
                if alive[t]
            ]
        else:
            row = []
        extra = self._overflow.get(host)
        if extra:
            # Overflow ids are assigned in increasing order and start above
            # every base id, so the concatenation stays ascending.
            row.extend(t for t in extra if alive[t])
        return row

    def _has_structural_edge(self, a: int, b: int) -> bool:
        if a < self._base_n:
            offsets = self._base_offsets
            targets = self._base_targets
            lo, hi = offsets[a], offsets[a + 1]
            i = bisect_left(targets, b, lo, hi)
            if i < hi and targets[i] == b:
                return True
        extra = self._overflow.get(a)
        return extra is not None and b in extra

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._alive)

    @property
    def num_hosts(self) -> int:
        """Total number of host slots ever allocated (alive or failed)."""
        return len(self._alive)

    @property
    def alive_hosts(self) -> List[int]:
        """Host ids that are currently alive (one pass over the bitmap)."""
        return [h for h, alive in enumerate(self._alive) if alive]

    @property
    def num_alive(self) -> int:
        """Number of alive hosts, served O(1) from the maintained count."""
        return self._alive_count

    @property
    def events(self) -> List[NetworkEvent]:
        """The append-only log of topology changes."""
        return list(self._events)

    @property
    def ever_alive(self) -> Set[int]:
        """Hosts that were alive at some instant (the upper bound set H_U).

        Every host slot ever allocated was alive when it was created (the
        initial hosts at time 0, joined hosts at their join instant), so
        this is exactly ``range(num_hosts)`` -- no per-host set is stored.
        """
        return set(range(len(self._alive)))

    def is_alive(self, host: int) -> bool:
        return bool(self._alive[host])

    def neighbors(self, host: int) -> FrozenSet[int]:
        """Current *alive* neighbors of ``host`` (cached; do not mutate)."""
        cached = self._alive_neighbors[host]
        if cached is None:
            # Built from the sorted view so the two caches share their id
            # objects (one boxed int per (host, neighbor) pair, not two).
            cached = frozenset(self.alive_neighbors_sorted(host))
            self._alive_neighbors[host] = cached
        return cached

    def alive_neighbors_sorted(self, host: int) -> Tuple[int, ...]:
        """Current alive neighbors of ``host`` in ascending id order (cached)."""
        cached = self._alive_sorted[host]
        if cached is None:
            cached = tuple(self._alive_row(host))
            self._alive_sorted[host] = cached
        return cached

    def has_alive_edge(self, sender: int, dest: int) -> bool:
        """Whether ``dest`` is an alive current neighbor of ``sender``."""
        alive = self._alive
        if not alive[sender]:
            return False
        if not 0 <= dest < len(alive) or not alive[dest]:
            return False
        return self._has_structural_edge(sender, dest)

    def all_neighbors(self, host: int) -> Set[int]:
        """Current neighbors of ``host`` regardless of liveness.

        Failed hosts shed their edges the instant they fail (the old
        implementation removed them eagerly; the packed core filters them
        at view time), so the current adjacency only ever contains alive
        endpoints and this equals ``set(neighbors(host))``.
        """
        return set(self._alive_row(host))

    def initial_neighbors(self, host: int) -> Set[int]:
        """Neighbors of ``host`` in the initial topology."""
        if host < self._base_n:
            offsets = self._base_offsets
            return set(self._base_targets[offsets[host]:offsets[host + 1]])
        if not 0 <= host < len(self._alive):
            raise IndexError(f"unknown host {host}")
        return set()  # joined mid-run: not part of the initial topology

    def has_edge(self, a: int, b: int) -> bool:
        alive = self._alive
        if not alive[a] or not 0 <= b < len(alive) or not alive[b]:
            return False
        return self._has_structural_edge(a, b)

    def degree(self, host: int) -> int:
        return len(self.alive_neighbors_sorted(host))

    def num_edges(self) -> int:
        """Number of undirected edges in the current graph."""
        alive = self._alive
        total = 0
        offsets = self._base_offsets
        targets = self._base_targets
        for host in range(self._base_n):
            if alive[host]:
                for t in targets[offsets[host]:offsets[host + 1]]:
                    if alive[t]:
                        total += 1
        for host, extra in self._overflow.items():
            if alive[host]:
                for t in extra:
                    if alive[t]:
                        total += 1
        return total // 2

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges (a < b) of the current graph."""
        alive = self._alive
        for a in range(len(alive)):
            if not alive[a]:
                continue
            for b in self._structural_neighbors(a):
                if a < b and alive[b]:
                    yield a, b

    # ------------------------------------------------------------------
    # Dynamism
    # ------------------------------------------------------------------
    def _invalidate(self, host: int) -> None:
        self._alive_neighbors[host] = None
        self._alive_sorted[host] = None

    def fail_host(self, host: int, time: float) -> None:
        """Remove ``host`` from the network at simulation time ``time``.

        A failed host stops participating in any protocol; its edges drop
        out of every current view (edges require both endpoints alive).
        Failing an already failed host is an error (it indicates a buggy
        churn schedule).
        """
        if not self._alive[host]:
            raise ValueError(f"host {host} is already failed")
        # Snapshot the alive neighbors for the event log *before* flipping
        # the bitmap (the view is already ascending, as the log requires).
        neighbors = self.alive_neighbors_sorted(host)
        self._alive[host] = 0
        self._alive_count -= 1
        alive_neighbors = self._alive_neighbors
        alive_sorted = self._alive_sorted
        for other in self._structural_neighbors(host):
            alive_neighbors[other] = None
            alive_sorted[other] = None
        alive_neighbors[host] = None
        alive_sorted[host] = None
        self._events.append(
            NetworkEvent(time=time, kind=NetworkEventKind.FAIL, host=host,
                         neighbors=neighbors)
        )

    def join_host(self, neighbors: Iterable[int], time: float) -> int:
        """Add a new host connected to ``neighbors`` and return its id."""
        alive = self._alive
        new_id = len(alive)
        neighbor_set = set(neighbors)
        for other in neighbor_set:
            if not 0 <= other < new_id:
                raise ValueError(f"unknown neighbor {other}")
            if not alive[other]:
                raise ValueError(f"cannot join at failed host {other}")
        ordered = sorted(neighbor_set)
        alive.append(1)
        self._alive_count += 1
        self._alive_neighbors.append(None)
        self._alive_sorted.append(None)
        overflow = self._overflow
        overflow[new_id] = list(ordered)
        alive_neighbors = self._alive_neighbors
        alive_sorted = self._alive_sorted
        for other in ordered:
            row = overflow.get(other)
            if row is None:
                overflow[other] = [new_id]
            else:
                # ``new_id`` exceeds every existing id, so appending keeps
                # the overflow row sorted.
                row.append(new_id)
            alive_neighbors[other] = None
            alive_sorted[other] = None
        self._events.append(
            NetworkEvent(time=time, kind=NetworkEventKind.JOIN, host=new_id,
                         neighbors=tuple(ordered))
        )
        return new_id

    def partition_bounds(self, shards: int) -> List[int]:
        """Contiguous host-range boundaries for ``shards`` workers.

        Returns ``[0, b1, ..., num_hosts]`` (``shards + 1`` entries) such
        that shard ``k`` owns hosts ``[bounds[k], bounds[k+1])``.  Cut
        points are chosen so every shard carries roughly the same number
        of *base CSR edges* (host count alone skews badly on power-law
        topologies: the hub-heavy prefix would dwarf the tail shards).
        Ranges may be empty when ``shards > num_hosts``.  Partitioning a
        network that has grown past its base table (joined hosts) is
        refused -- overflow rows are not range-partitionable.
        """
        if shards < 1:
            raise ValueError("shards must be at least 1")
        n = self._base_n
        if n != len(self._alive) or self._overflow:
            raise ValueError(
                "cannot range-partition a network with joined hosts")
        offsets = self._base_offsets
        total = offsets[n]
        bounds = [0]
        for k in range(1, shards):
            cut = bisect_left(offsets, total * k // shards)
            if cut > n:
                cut = n
            if cut < bounds[-1]:
                cut = bounds[-1]
            bounds.append(cut)
        bounds.append(n)
        return bounds

    def apply_failures(self, failures: Iterable[Tuple[float, int]]) -> int:
        """Apply a batch of ``(time, host)`` failures in batch order.

        Already-failed hosts are skipped (the engine's FAIL handler
        guards with ``is_alive`` the same way); returns how many hosts
        actually failed.  Used by the sharded lane to replicate the churn
        schedule onto every worker's network copy and to bring the
        parent's network up to date after a forked run.
        """
        applied = 0
        alive = self._alive
        for time, host in failures:
            if alive[host]:
                self.fail_host(host, time)
                applied += 1
        return applied

    # ------------------------------------------------------------------
    # Graph algorithms
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int, alive_only: bool = True) -> Dict[int, int]:
        """Hop distances from ``source`` to every reachable host.

        Args:
            source: starting host.
            alive_only: when True, only traverse hosts that are currently
                alive (the usual case).  A failed host's current adjacency
                is empty either way, so the only difference is whether a
                failed *source* maps to ``{}`` or ``{source: 0}``.
        """
        alive = self._alive
        if not alive[source]:
            return {} if alive_only else {source: 0}
        distances = {source: 0}
        frontier = deque([source])
        offsets = self._base_offsets
        targets = self._base_targets
        overflow = self._overflow
        base_n = self._base_n
        while frontier:
            host = frontier.popleft()
            next_dist = distances[host] + 1
            if host < base_n:
                row: Iterable[int] = targets[offsets[host]:offsets[host + 1]]
            else:
                row = ()
            extra = overflow.get(host)
            if extra:
                row = list(row) + extra
            for other in row:
                if not alive[other]:
                    continue
                if other not in distances:
                    distances[other] = next_dist
                    frontier.append(other)
        return distances

    def reachable_from(self, source: int) -> Set[int]:
        """Alive hosts reachable from ``source`` over alive hosts."""
        return set(self.bfs_distances(source, alive_only=True))

    def diameter_estimate(self, samples: int = 8, seed: int = 0) -> int:
        """Estimate the diameter by double-sweep BFS from a few sources.

        The estimate is a lower bound on the true diameter but is exact on
        trees and very tight on the topologies used in the paper; the paper
        itself only requires a reasonable overestimate of the stable
        diameter, which callers obtain by padding this value.
        """
        import random

        alive = self.alive_hosts
        if not alive:
            return 0
        rng = random.Random(seed)
        best = 0
        for _ in range(max(1, samples)):
            start = rng.choice(alive)
            dist = self.bfs_distances(start)
            if not dist:
                continue
            # Tie-break equally-far hosts by smallest id: BFS dict insertion
            # order differs between the packed CSR rows and the reference's
            # adjacency sets, so a bare max() over items would pick
            # different second-sweep sources on the two implementations.
            far_host, far_dist = max(dist.items(),
                                     key=lambda kv: (kv[1], -kv[0]))
            best = max(best, far_dist)
            dist2 = self.bfs_distances(far_host)
            if dist2:
                best = max(best, max(dist2.values()))
        return best

    def is_connected(self) -> bool:
        """True when every alive host is reachable from every other."""
        alive = self.alive_hosts
        if not alive:
            return True
        return len(self.reachable_from(alive[0])) == len(alive)

    def snapshot_adjacency(self) -> List[Set[int]]:
        """A deep copy of the current adjacency (for oracles and tests)."""
        return [set(self._alive_row(host)) for host in range(len(self._alive))]

    def copy(self) -> "DynamicNetwork":
        """An independent copy of the current network state.

        The base CSR buffers are immutable after construction, so clones
        share them; only the alive bitmap, overflow table, event log and
        view caches are private.
        """
        clone = DynamicNetwork.__new__(DynamicNetwork)
        clone._base_n = self._base_n
        clone._base_offsets = self._base_offsets
        clone._base_targets = self._base_targets
        clone._alive = bytearray(self._alive)
        clone._alive_count = self._alive_count
        clone._overflow = {h: list(row) for h, row in self._overflow.items()}
        clone._events = list(self._events)
        n = len(clone._alive)
        clone._alive_neighbors = [None] * n
        clone._alive_sorted = [None] * n
        return clone

    @classmethod
    def from_edges(cls, num_hosts: int, edges: Iterable[Tuple[int, int]]) -> "DynamicNetwork":
        """Build a network from an edge list."""
        adjacency: List[Set[int]] = [set() for _ in range(num_hosts)]
        for a, b in edges:
            if a == b:
                raise ValueError(f"self-loop on host {a}")
            adjacency[a].add(b)
            adjacency[b].add(a)
        return cls(adjacency, validate=False, copy=False)
