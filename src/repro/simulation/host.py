"""Protocol host interface.

Protocols are written as per-host state machines.  Each host reacts to three
stimuli -- the local query start (only at the querying host), the receipt of
a message, and the expiry of a local timer -- and may respond by sending
messages to neighbors or setting further timers.  The simulator mediates all
interaction through a :class:`HostContext`, which also enforces the network
model (messages only travel along alive edges, one hop per ``delta``).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Set

from repro.simulation.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.simulation.engine import Simulator


class HostContext:
    """The simulator-facing API available to a protocol host.

    A fresh context is handed to the host for every stimulus; it is bound to
    the host id, the current simulation time, and the causal chain depth of
    the triggering event so that the time-cost metric can be computed
    without protocol cooperation.
    """

    def __init__(
        self,
        simulator: "Simulator",
        host: int,
        now: float,
        chain_depth: int,
    ) -> None:
        self._simulator = simulator
        self._host = host
        self._now = now
        self._chain_depth = chain_depth

    @property
    def host_id(self) -> int:
        """The id of the host this context is bound to."""
        return self._host

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def delta(self) -> float:
        """The per-hop message delay of the network model."""
        return self._simulator.delta

    def neighbors(self) -> Set[int]:
        """Currently alive neighbors of this host.

        Protocol code may use this to address messages; the paper's model
        allows hosts to monitor neighbors via heartbeats, so knowledge of
        which neighbors are alive (within one heartbeat period) is fair.
        """
        return self._simulator.network.neighbors(self._host)

    def send(self, dest: int, kind: str, payload: Mapping[str, Any]) -> bool:
        """Send one message to neighbor ``dest``.

        Returns True if the message was handed to the network (the
        destination may still fail before delivery), False if ``dest`` is not
        an alive neighbor at send time.
        """
        return self._simulator.submit_message(
            sender=self._host,
            dest=dest,
            kind=kind,
            payload=payload,
            time=self._now,
            chain_depth=self._chain_depth + 1,
        )

    def send_to_neighbors(
        self,
        kind: str,
        payload: Mapping[str, Any],
        exclude: Optional[Iterable[int]] = None,
    ) -> int:
        """Send the same message to every alive neighbor.

        On a wireless broadcast medium (``SimulationConfig.wireless``) the
        whole batch is accounted as a single transmission, matching the
        paper's Grid experiments.  Returns the number of neighbors addressed.
        """
        excluded = set(exclude) if exclude is not None else set()
        targets = sorted(self.neighbors() - excluded)
        if not targets:
            return 0
        self._simulator.submit_multicast(
            sender=self._host,
            dests=targets,
            kind=kind,
            payload=payload,
            time=self._now,
            chain_depth=self._chain_depth + 1,
        )
        return len(targets)

    def set_timer(self, delay: float, name: str, data: Any = None) -> None:
        """Schedule a timer for this host ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        self._simulator.schedule_timer(
            host=self._host,
            time=self._now + delay,
            name=name,
            data=data,
            chain_depth=self._chain_depth,
        )


class ProtocolHost(abc.ABC):
    """Base class for per-host protocol state machines.

    Subclasses hold all per-host protocol state (activity flag, partial
    aggregate, parent pointers, ...) as instance attributes and implement
    the three reaction hooks.
    """

    def __init__(self, host_id: int, value: float) -> None:
        self.host_id = host_id
        self.value = value

    @abc.abstractmethod
    def on_query_start(self, ctx: HostContext) -> None:
        """Called once, at the querying host, when the query is issued."""

    @abc.abstractmethod
    def on_message(self, message: Message, ctx: HostContext) -> None:
        """Called when a message addressed to this host is delivered."""

    def on_timer(self, name: str, data: Any, ctx: HostContext) -> None:
        """Called when one of this host's timers expires.

        The default implementation ignores timers; protocols that use them
        override this hook.
        """

    def on_fail(self, time: float) -> None:
        """Called when this host fails (for protocols that track state)."""

    def local_result(self) -> Any:
        """The value this host would report if asked right now.

        Only meaningful at the querying host after the protocol terminates;
        other hosts may return partial state for debugging.
        """
        return None
