"""Protocol host interface.

Protocols are written as per-host state machines.  Each host reacts to three
stimuli -- the local query start (only at the querying host), the receipt of
a message, and the expiry of a local timer -- and may respond by sending
messages to neighbors or setting further timers.  The simulator mediates all
interaction through a :class:`HostContext`, which also enforces the network
model (messages only travel along alive edges, each hop taking at most
``delta`` -- the realised delay comes from the engine's
:class:`~repro.simulation.delay.DelayModel`).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence, Set

from repro.simulation.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.simulation.engine import Simulator


class HostContext:
    """The simulator-facing API available to a protocol host.

    The context handed to the host for a stimulus is bound to the host id,
    the current simulation time, and the causal chain depth of the
    triggering event so that the time-cost metric can be computed without
    protocol cooperation.  The simulator may *reuse* one context object
    across stimuli (rebinding it between handler calls), so protocol code
    must not retain a context past the handler invocation it was passed to.
    """

    __slots__ = ("_simulator", "host_id", "now", "_chain_depth")

    def __init__(
        self,
        simulator: "Simulator",
        host: int,
        now: float,
        chain_depth: int,
    ) -> None:
        self._simulator = simulator
        #: The id of the host this context is bound to.
        self.host_id = host
        #: Current simulation time.
        self.now = now
        self._chain_depth = chain_depth

    @property
    def delta(self) -> float:
        """The per-hop message delay *bound* of the network model.

        Protocol timer math (deadlines, participation windows,
        termination times) must be computed from this bound, never from
        observed message timings: the paper's Single-Site Validity
        arguments hold for any realised delay in ``(0, delta]``, and the
        engine may be running a variable
        :class:`~repro.simulation.delay.DelayModel` underneath.
        """
        return self._simulator.delta

    def neighbors(self) -> Set[int]:
        """Currently alive neighbors of this host.

        Protocol code may use this to address messages; the paper's model
        allows hosts to monitor neighbors via heartbeats, so knowledge of
        which neighbors are alive (within one heartbeat period) is fair.
        """
        return self._simulator.network.neighbors(self.host_id)

    def neighbors_sorted(self) -> Sequence[int]:
        """Alive neighbors in ascending id order (the packed cached view).

        Equal, element for element, to ``sorted(ctx.neighbors())`` --
        prefer it when iterating or sampling deterministically: it is
        served straight off the network's packed adjacency without
        materialising a set.  Treat the returned tuple as read-only.
        """
        return self._simulator.network.alive_neighbors_sorted(self.host_id)

    def send(self, dest: int, kind: str, payload: Mapping[str, Any]) -> bool:
        """Send one message to neighbor ``dest``.

        Returns True if the message was handed to the network (the
        destination may still fail before delivery), False if ``dest`` is not
        an alive neighbor at send time.
        """
        return self._simulator.submit_message(
            sender=self.host_id,
            dest=dest,
            kind=kind,
            payload=payload,
            time=self.now,
            chain_depth=self._chain_depth + 1,
        )

    def send_to_neighbors(
        self,
        kind: str,
        payload: Mapping[str, Any],
        exclude: Optional[Iterable[int]] = None,
    ) -> int:
        """Send the same message to every alive neighbor.

        On a wireless broadcast medium (``SimulationConfig.wireless``) the
        whole batch is accounted as a single transmission, matching the
        paper's Grid experiments.  Returns the number of neighbors addressed.
        """
        targets: Sequence[int] = self._simulator.network.alive_neighbors_sorted(
            self.host_id
        )
        if exclude is not None:
            excluded = set(exclude)
            if excluded:
                targets = [t for t in targets if t not in excluded]
        if not targets:
            return 0
        # ``targets`` was just derived from the network's alive-neighbor
        # view, so the multicast can skip re-checking each destination
        # (positional call: this is the kernel's hottest send path).
        self._simulator.submit_multicast(
            self.host_id, targets, kind, payload, self.now,
            self._chain_depth + 1, True,
        )
        return len(targets)

    def set_timer(self, delay: float, name: str, data: Any = None) -> None:
        """Schedule a timer for this host ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        # Equivalent to Simulator.schedule_timer, via the queue's timer
        # fast path (zero-delay flush timers fire once per host-instant).
        self._simulator._queue.push_timer(
            self.now + delay, self.host_id, name,
            (data, self._chain_depth),
        )


class ProtocolHost(abc.ABC):
    """Base class for per-host protocol state machines.

    Subclasses hold all per-host protocol state (activity flag, partial
    aggregate, parent pointers, ...) as instance attributes and implement
    the three reaction hooks.

    One state machine exists per network host, so at million-host scale
    the per-instance footprint is a first-order memory cost: the base
    class and every in-tree protocol host declare ``__slots__``, which
    drops the per-instance ``__dict__``.  New protocols should follow the
    convention (declare every attribute the ``__init__`` assigns in
    ``__slots__``); a subclass that skips it merely reintroduces a dict
    for its own attributes -- nothing breaks, it just costs memory.
    """

    __slots__ = ("host_id", "value")

    def __init__(self, host_id: int, value: float) -> None:
        self.host_id = host_id
        self.value = value

    @abc.abstractmethod
    def on_query_start(self, ctx: HostContext) -> None:
        """Called once, at the querying host, when the query is issued."""

    @abc.abstractmethod
    def on_message(self, message: Message, ctx: HostContext) -> None:
        """Called when a message addressed to this host is delivered."""

    def on_timer(self, name: str, data: Any, ctx: HostContext) -> None:
        """Called when one of this host's timers expires.

        The default implementation ignores timers; protocols that use them
        override this hook.
        """

    def on_fail(self, time: float) -> None:
        """Called when this host fails (for protocols that track state)."""

    def local_result(self) -> Any:
        """The value this host would report if asked right now.

        Only meaningful at the querying host after the protocol terminates;
        other hosts may return partial state for debugging.
        """
        return None
