"""The vectorized per-tick kernel lane (opt-in fast path).

Under the fixed-delay model every delivery of a tick shares one calendar
slot, so the spec engine's one-Python-iteration-per-message drain can be
replaced by *instant-at-a-time* processing: the lane keeps its own
per-instant rings -- one for deliveries, one for timers -- and hands each
instant's batch to a protocol adapter (currently
:class:`~repro.protocols.wildfire.WildfireVectorAdapter`) that runs the
protocol's hot receive and flush branches inlined over the whole batch.
Per delivery this costs a couple of index operations and an int (or
float) comparison instead of a calendar-queue round trip, a
:class:`~repro.simulation.messages.Message` allocation, a context rebind
and a method-dispatch chain; receive-side cost accounting is accumulated
in flat per-host count vectors and replayed into the stats sink in bulk
at the end of the run.  Only deliveries with irreducibly stateful
effects (activation, which draws from the shared RNG and floods the
query onward) run the unmodified per-message hook.

The lane is locked bit-identical to the spec path by construction plus
harness:

* deliveries are processed in the exact global FIFO order of the spec
  loop (records in send order, destinations ascending within a record,
  instants in time order, deliveries before timers before failures),
  and every inlined branch reads live host state, so the sequence of
  state transitions is the spec loop's, step for step;
* activations, query starts and foreign timers execute the unmodified
  ``on_message``/``on_query_start``/``on_timer`` hooks with a real
  (subclassed) :class:`~repro.simulation.host.HostContext`, so RNG
  consumption order, send order, payload contents and declaration times
  are those of the spec engine;
* sends are filed with the same liveness checks and ``time + delta``
  arrival arithmetic as the engine's
  ``submit_message``/``submit_multicast`` (payload snapshots are shared
  rather than copied -- payloads are immutable by repo-wide convention,
  so sharing is observationally identical), and both cost-accounting
  sides -- per-(tick, kind) send totals and per-host receive counts,
  all commutative sums -- are replayed into the same
  :class:`~repro.simulation.stats.StatsSink` at the end of the run, so
  ``costs.fingerprint()`` matches;
* the golden matrix and the python-vs-vector differential axis in
  ``tests/integration/test_protocol_matrix.py`` pin value, fingerprint
  and declaration time across topologies, churn and combiners.

Engagement is conservative: the lane runs only when delay is fixed, no
tracer is attached, churn has no joins, nothing unexpected is
pre-queued, and the host table is supported by a protocol adapter.
Anything else falls back to the spec loop -- ``Simulator.lane_used``
records which lane actually ran, and this module's ``engagements`` /
``last_fallback_reason`` expose the decision to the differential tests
so a silent fallback cannot masquerade as a passing bit-identity check.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence

from repro.simulation.events import Event, EventKind
from repro.simulation.host import HostContext

#: Lane names understood by the engine and every CLI/config surface.
LANES = ("python", "vector", "sharded")

#: Number of times the vector lane actually engaged (for tests: assert
#: the differential harness exercised the lane, not a silent fallback).
engagements = 0

#: Why the most recent ``maybe_run`` declined to engage (None = engaged).
#: Deprecated alias: a module global is clobbered by any other run in the
#: process; prefer ``SimulationResult.fallback_reason``, which carries the
#: decision on the run it belongs to.
last_fallback_reason: Optional[str] = None


def validate_lane(lane: str) -> str:
    """Check that ``lane`` names a known kernel lane; returns it."""
    if lane not in LANES:
        raise ValueError(
            f"unknown kernel lane {lane!r}; known: {', '.join(LANES)}"
        )
    return lane


class _LaneContext(HostContext):
    """A :class:`HostContext` whose sends and timers go to the lane rings.

    The redirected methods reproduce the engine paths they stand in for
    (same liveness checks, same cost-recording calls, same arrival
    arithmetic); they exist so a whole instant's sends land in one lane
    ring bucket instead of round-tripping through the calendar queue.
    """

    __slots__ = ("_lane",)

    def __init__(self, lane: "_VectorLane", simulator) -> None:
        super().__init__(simulator, 0, 0.0, 0)
        self._lane = lane

    def send(self, dest, kind, payload) -> bool:
        # Lane records carry the two payload fields the WILDFIRE
        # message handlers read (flat, no per-send dict); unknown kinds
        # never have their payload inspected at delivery.
        return self._lane.submit_single(
            self.host_id, dest, kind, payload.get("agg"),
            payload.get("dist"), self.now, self._chain_depth + 1)

    def send_to_neighbors(self, kind, payload, exclude=None) -> int:
        targets: Sequence[int] = self._simulator.network.alive_neighbors_sorted(
            self.host_id)
        if exclude is not None:
            excluded = set(exclude)
            if excluded:
                targets = [t for t in targets if t not in excluded]
        if not targets:
            return 0
        self._lane.submit_multi(self.host_id, targets, kind,
                                payload.get("agg"), payload.get("dist"),
                                self.now, self._chain_depth + 1)
        return len(targets)

    def set_timer(self, delay: float, name: str, data: Any = None) -> None:
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        self._lane.register_timer(self.now + delay, self.host_id, name,
                                  data, self._chain_depth)


def _unsupported_reason(simulator, allow_tracer: bool = False
                        ) -> Optional[str]:
    """Why this run cannot use the vector lane (None = it can).

    The sharded lane shares these checks but traces per worker and
    merges rings in its coordinator, so it passes ``allow_tracer=True``
    (and applies its own tracer-type gate); the vector lane itself still
    rejects any attached tracer.
    """
    if simulator.delay_model is not None:
        return "variable delay model"
    if simulator.tracer is not None and not allow_tracer:
        return "tracer attached"
    if simulator._churn.joins:
        return "join churn scheduled"
    # The queue was just primed by run(): churn failures plus the query
    # start.  Anything else (pre-pushed timers, custom events, external
    # deliveries) belongs to a driver the lane does not know about.
    for entry, _weight in simulator._queue.iter_pending():
        if entry.__class__ is not Event or entry.kind not in (
                EventKind.QUERY_START, EventKind.FAIL):
            return "unexpected pre-queued events"
    return None


def maybe_run(simulator, horizon: float):
    """Run the simulation on the vector lane, or return ``None`` to fall
    back to the spec loop.

    Called by :meth:`Simulator.run` after churn and the query start are
    queued; on fallback nothing has been consumed, so the spec loop
    proceeds as if the lane had never been consulted.
    """
    global engagements, last_fallback_reason
    reason = _unsupported_reason(simulator)
    if reason is None:
        from repro.protocols.wildfire import WildfireVectorAdapter

        adapter = WildfireVectorAdapter.try_build(
            simulator.hosts, simulator.network.num_hosts,
            simulator.querying_host)
        if adapter is None:
            reason = "unsupported protocol hosts or combiner"
    if reason is not None:
        last_fallback_reason = reason
        return None
    last_fallback_reason = None
    engagements += 1
    return _VectorLane(simulator, adapter, horizon).run()


class _VectorLane:
    """One engaged vector-lane run (see the module docstring)."""

    def __init__(self, simulator, adapter, horizon: float) -> None:
        self.sim = simulator
        self.adapter = adapter
        self.horizon = horizon
        network = simulator.network
        n = network.num_hosts
        self.num_hosts = n
        self.hosts = simulator.hosts
        self.network = network
        self.costs = simulator.costs
        self.delta = simulator.delta
        self.wireless = simulator.wireless
        #: The network's own packed alive bitmap (one byte per host);
        #: failures the lane applies show through immediately.
        self.alive_bytes = network._alive
        # Receive-side accounting, accumulated flat and replayed into
        # the stats sink at the end of the run (send-side counters stay
        # incremental through the submit paths below).
        self.counts: List[int] = [0] * n
        self.dropped = 0
        self.max_depth = 0
        # Send-side accounting, also accumulated flat: per (time, kind)
        # totals -- the sink counters these feed are commutative sums,
        # so a handful of end-of-run ``record_send_batch`` calls rebuild
        # exactly what per-send recording would have.
        self._send_acc: Dict[tuple, int] = defaultdict(int)
        self._wireless_groups = 0
        # Lane rings: fire/delivery time -> FIFO bucket, plus a heap of
        # times per ring (dict-guarded, so no duplicates).  Same-instant
        # ordering inside a bucket is append order, which is exactly the
        # calendar queue's same-instant seq order.
        self._timers: Dict[float, List[tuple]] = {}
        self._timer_heap: List[float] = []
        self._deliveries: Dict[float, List[tuple]] = {}
        self._delivery_heap: List[float] = []
        #: alive-neighbor lists memoised per host (``None`` = not yet
        #: computed); liveness only changes at FAIL events, which reset
        #: the whole cache.
        self.nbr_cache: List[Optional[list]] = [None] * n
        self.ctx = _LaneContext(self, simulator)

    # ------------------------------------------------------------------
    # Ring registries (the LaneContext / adapter submit targets)
    # ------------------------------------------------------------------
    def register_timer(self, time: float, host: int, name: str,
                       data: Any, chain_depth: int) -> None:
        bucket = self._timers.get(time)
        if bucket is None:
            self._timers[time] = bucket = []
            heapq.heappush(self._timer_heap, time)
        bucket.append((host, name, data, chain_depth))

    def submit_single(self, sender: int, dest: int, kind: str, agg,
                      dist, time: float, chain_depth: int) -> bool:
        """Lane twin of ``Simulator.submit_message`` (alive sender).

        The sender is the host a hook is currently running for, so only
        the edge liveness check remains; a failed check records nothing,
        exactly like the engine path.
        """
        if not self.network.has_alive_edge(sender, dest):
            return False
        self._send_acc[(time, kind)] += 1
        deliver_at = time + self.delta
        bucket = self._deliveries.get(deliver_at)
        if bucket is None:
            self._deliveries[deliver_at] = bucket = []
            heapq.heappush(self._delivery_heap, deliver_at)
        bucket.append((sender, (dest,), kind, agg, dist, chain_depth))
        return True

    def submit_multi(self, sender: int, dests: Sequence[int], kind: str,
                     agg, dist, time: float, chain_depth: int) -> None:
        """Lane twin of ``Simulator.submit_multicast`` (trusted dests).

        ``dests`` comes from the network's own alive-neighbor view (the
        ``send_to_neighbors`` contract), so no per-destination liveness
        re-check happens -- destinations that die before the delivery
        instant are dropped at delivery time, as in the spec path.
        """
        acc = self._send_acc
        if self.wireless:
            # One over-the-air transmission for the whole batch.
            acc[(time, kind)] += 1
            self._wireless_groups += len(dests) - 1
        else:
            acc[(time, kind)] += len(dests)
        deliver_at = time + self.delta
        bucket = self._deliveries.get(deliver_at)
        if bucket is None:
            self._deliveries[deliver_at] = bucket = []
            heapq.heappush(self._delivery_heap, deliver_at)
        bucket.append((sender, dests, kind, agg, dist, chain_depth))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self):
        from repro.simulation.engine import SimulationResult

        sim = self.sim
        queue = sim._queue
        clock = sim.clock
        horizon = self.horizon
        timer_heap = self._timer_heap
        delivery_heap = self._delivery_heap
        adapter = self.adapter
        import gc

        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while not sim._stopped:
                now = queue.peek_time()
                if delivery_heap and (now is None or delivery_heap[0] < now):
                    now = delivery_heap[0]
                if timer_heap and (now is None or timer_heap[0] < now):
                    now = timer_heap[0]
                if now is None or now > horizon:
                    break
                clock._now = now
                fails: List[Event] = []
                if queue.peek_time() == now:
                    _, buckets = queue.pop_tick()
                    if buckets[1] or buckets[2] or buckets[3] or buckets[4]:
                        # JOIN/CUSTOM/raw DELIVER/raw TIMER are excluded
                        # at engagement time and never arise in a lane
                        # run; if one shows up the run cannot be
                        # continued bit-identically, so fail loud,
                        # never wrong.
                        raise RuntimeError(
                            "vector lane encountered unsupported events")
                    for event in buckets[0]:
                        self._handle_query_start(event, now)
                    fails = buckets[5]
                if delivery_heap and delivery_heap[0] == now:
                    heapq.heappop(delivery_heap)
                    adapter.process_instant(
                        now, self._deliveries.pop(now), self)
                self._fire_timers(now)
                for event in fails:
                    self._handle_fail(event, now)
        finally:
            if gc_was_enabled:
                gc.enable()

        self._replay_accounting()
        return SimulationResult(
            value=self.hosts[sim.querying_host].local_result(),
            costs=sim.costs,
            finished_at=clock.now,
            querying_host=sim.querying_host,
        )

    # ------------------------------------------------------------------
    # Instant processing
    # ------------------------------------------------------------------
    def _handle_query_start(self, event: Event, now: float) -> None:
        host = event.host
        if host is None or not self.sim.network.is_alive(host):
            return
        ctx = self.ctx
        ctx.host_id = host
        ctx.now = now
        ctx._chain_depth = 0
        self.hosts[host].on_query_start(ctx)
        self.adapter.refresh_host(host)

    def _fire_timers(self, now: float) -> None:
        # Looked up at fire time, not peek time: deliveries of this
        # instant may have just scheduled zero-delay flush timers.
        bucket = self._timers.get(now)
        if bucket is not None:
            self.adapter.process_timer_bucket(now, bucket, self)
            del self._timers[now]
        if self._timer_heap and self._timer_heap[0] == now:
            heapq.heappop(self._timer_heap)

    def run_foreign_timer(self, now: float, host: int, name: str,
                          data: Any, chain_depth: int) -> None:
        """Dispatch one non-adapter timer through the real hook."""
        ctx = self.ctx
        ctx.host_id = host
        ctx.now = now
        ctx._chain_depth = chain_depth
        self.hosts[host].on_timer(name, data, ctx)
        self.adapter.refresh_host(host)

    def _handle_fail(self, event: Event, now: float) -> None:
        host = event.host
        sim = self.sim
        if host is None or not sim.network.is_alive(host):
            return
        sim.network.fail_host(host, now)
        self.nbr_cache = [None] * self.num_hosts
        self.hosts[host].on_fail(now)
        for callback in sim._fail_callbacks:
            callback(host, now)

    # ------------------------------------------------------------------
    # End-of-run accounting replay
    # ------------------------------------------------------------------
    def _replay_accounting(self) -> None:
        """Fold the lane's flat counters into the stats sink.

        Everything the batch path bypassed commutes -- per-host and
        per-(tick, kind) sums, a running max, scalars -- so replaying
        the totals at the end produces counter-for-counter the state
        the spec loop's per-send / per-delivery recording would have
        built.
        """
        costs = self.sim.costs
        for (time, kind), count in self._send_acc.items():
            costs.record_send_batch(kind, time, count)
        if self._wireless_groups:
            costs.record_wireless_group(self._wireless_groups)
        if self.dropped:
            costs.dropped_messages += self.dropped
        if self.max_depth > costs.max_chain_depth:
            costs.max_chain_depth = self.max_depth
        costs.record_processed_bulk(
            (host, count)
            for host, count in enumerate(self.counts) if count)
