"""The discrete-event simulation engine.

The :class:`Simulator` drives a set of :class:`~repro.simulation.host.ProtocolHost`
state machines over a :class:`~repro.simulation.network.DynamicNetwork`,
delivering messages within the per-hop delay bound ``delta`` (realised
delays come from a pluggable :class:`~repro.simulation.delay.DelayModel`;
the default is the paper's worst case of exactly ``delta`` per hop),
executing a churn schedule, and accounting costs through a pluggable
:class:`~repro.simulation.stats.StatsSink` as defined in the paper's
Section 6.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.simulation.churn import ChurnSchedule
from repro.simulation.clock import SimulationClock
from repro.simulation.delay import DelayModel, delay_model_from_spec
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.host import HostContext, ProtocolHost
from repro.simulation.messages import Message
from repro.simulation.network import DynamicNetwork
from repro.simulation.stats import CostAccounting, StatsSink, make_stats_sink
from repro.obs.trace import Tracer, default_tracer


@dataclass
class SimulationResult:
    """Outcome of one simulated protocol run.

    Attributes:
        value: the value declared at the querying host (protocol specific;
            ``None`` if the protocol never produced one).
        costs: the message/computation/time cost accounting for the run.
        finished_at: simulation time when the run stopped.
        querying_host: id of the host that issued the query.
        extra: protocol- or experiment-specific extras (e.g. tree depth).
        fallback_reason: when an opt-in lane (``vector``/``sharded``) was
            requested but declined to engage, why -- carried on the result
            itself so concurrent or subsequent runs cannot clobber it
            (the module-global ``vector_lane.last_fallback_reason`` is a
            deprecated alias).  ``None`` when the requested lane ran.
    """

    value: Any
    costs: StatsSink
    finished_at: float
    querying_host: int
    extra: Dict[str, Any] = field(default_factory=dict)
    fallback_reason: Optional[str] = None


class Simulator:
    """Event-driven executor for aggregation protocols on dynamic networks.

    Args:
        network: the (mutable) dynamic network the protocol runs on.
        hosts: one protocol state machine per host id; the list is indexed
            by host id and must cover every host in the network.
        querying_host: the host at which the query is issued at time 0.
        delta: maximum per-hop message delay (the paper's ``delta``).
            This is the *bound* every protocol's timer math relies on;
            realised delays are drawn from ``delay_model`` and never
            exceed it.
        churn: schedule of host failures/joins to apply during the run.
        wireless: when True, a multicast to all neighbors of a host counts
            as one transmission (the sensor-network broadcast medium).
        max_time: hard stop for the simulation clock; runs longer than this
            raise, which catches protocols that fail to terminate.
        delay_model: realised per-message delay policy (see
            :mod:`repro.simulation.delay`); ``None`` or a spec string
            resolving to ``fixed`` selects the historical exact-``delta``
            fast path.  A model instance must carry ``bound == delta``.
        stats: cost accounting sink -- ``"full"``, ``"streaming"`` for
            the bounded-memory accumulator, a ready-made
            :class:`~repro.simulation.stats.StatsSink`, or ``None`` for
            the process-wide default mode (``"full"`` unless changed).
        tracer: structured trace sink (see :mod:`repro.obs.trace`);
            ``None`` resolves the process-wide default *once* here.  With
            no tracer bound the run loop performs a single pointer check
            per event and nothing else -- tracing observes, it never
            perturbs RNG streams, event ordering, or cost accounting.
        lane: kernel lane -- ``"python"`` (default) drains one event per
            iteration and is the executable spec; ``"vector"`` opts into
            the per-tick vectorized lane
            (:mod:`~repro.simulation.vector_lane`), which engages when
            the run is supported (fixed delay, no joins, no tracer,
            adapter-supported hosts) and silently falls back to the spec
            loop otherwise.  ``"sharded"`` opts into the multiprocess
            epoch-synchronous lane (:mod:`~repro.simulation.sharded`),
            which partitions the host range across ``shards`` worker
            processes.  ``lane_used`` records, after :meth:`run`, which
            lane actually executed.
        shards: worker-process count for the sharded lane (ignored by the
            other lanes); ``1`` runs the sharded protocol in-process.
    """

    def __init__(
        self,
        network: DynamicNetwork,
        hosts: Sequence[ProtocolHost],
        querying_host: int,
        delta: float = 1.0,
        churn: Optional[ChurnSchedule] = None,
        wireless: bool = False,
        max_time: float = 1_000_000.0,
        delay_model: Union[DelayModel, str, None] = None,
        stats: Union[StatsSink, str, None] = None,
        tracer: Optional[Tracer] = None,
        lane: str = "python",
        shards: int = 1,
    ) -> None:
        if len(hosts) < network.num_hosts:
            raise ValueError(
                f"expected at least {network.num_hosts} protocol hosts, got {len(hosts)}"
            )
        if not network.is_alive(querying_host):
            raise ValueError("the querying host must be alive at time 0")
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.network = network
        self.hosts: List[ProtocolHost] = list(hosts)
        self.querying_host = querying_host
        self.delta = float(delta)
        self.wireless = wireless
        self.max_time = float(max_time)
        self.clock = SimulationClock()
        self.costs = make_stats_sink(stats, num_hosts=network.num_hosts,
                                     tick_width=self.delta)
        # ``None`` marks the fixed-delay fast path: deliveries land exactly
        # ``delta`` after their send and multicasts share one ring slot.
        self.delay_model = delay_model_from_spec(delay_model, self.delta)
        self._sample_delay = (
            None if self.delay_model is None else self.delay_model.sample
        )
        self._queue = EventQueue(width=self.delta)
        self._churn = churn or ChurnSchedule.empty()
        self._stopped = False
        self._fail_callbacks: List[Callable[[int, float], None]] = []
        self.tracer = tracer if tracer is not None else default_tracer()
        from repro.simulation.vector_lane import validate_lane

        self.lane = validate_lane(lane)
        if int(shards) < 1:
            raise ValueError("shards must be at least 1")
        self.shards = int(shards)
        #: Which lane :meth:`run` actually executed (``None`` before it).
        self.lane_used: Optional[str] = None

    # ------------------------------------------------------------------
    # Scheduling API used by HostContext
    # ------------------------------------------------------------------
    def submit_message(
        self,
        sender: int,
        dest: int,
        kind: str,
        payload: Mapping[str, Any],
        time: float,
        chain_depth: int,
    ) -> bool:
        """Queue a unicast message for delivery within ``delta`` time."""
        network = self.network
        if not network.is_alive(sender):
            return False
        if not network.has_alive_edge(sender, dest):
            return False
        message = Message(
            sender=sender,
            dest=dest,
            kind=kind,
            payload=dict(payload),
            sent_at=time,
            chain_depth=chain_depth,
        )
        self.costs.record_send(kind, time)
        tracer = self.tracer
        if tracer is not None:
            tracer.send(time, sender, dest, kind)
        sample = self._sample_delay
        delay = self.delta if sample is None else sample(sender, dest, time)
        self._queue.push_deliver(time + delay, message)
        return True

    def submit_multicast(
        self,
        sender: int,
        dests: Sequence[int],
        kind: str,
        payload: Mapping[str, Any],
        time: float,
        chain_depth: int,
        trusted_dests: bool = False,
    ) -> None:
        """Queue the same message to several neighbors.

        On a wireless medium the whole batch counts as one transmission; on
        a point-to-point medium each destination is a separate message.
        The delivered messages share one payload snapshot (receivers treat
        payloads as read-only), and the cost counters are bumped once per
        batch rather than once per destination.

        Args:
            trusted_dests: set when ``dests`` was just derived from the
                network's own alive-neighbor view (the
                :meth:`~repro.simulation.host.HostContext.send_to_neighbors`
                path), allowing the per-destination liveness re-check to be
                skipped.
        """
        network = self.network
        if not network.is_alive(sender):
            return
        if not trusted_dests:
            neighbors = network.neighbors(sender)
            dests = [dest for dest in dests if dest in neighbors]
        if not dests:
            return
        shared_payload = dict(payload)
        wireless = self.wireless
        sample = self._sample_delay
        if sample is None:
            # Fixed delay: the whole multicast shares one delivery instant
            # and lands in the ring as a single lazily expanded batch (no
            # per-destination Message exists until its delivery pops).
            self._queue.push_multicast(time + self.delta, sender, dests,
                                       kind, shared_payload, time,
                                       chain_depth, wireless)
        else:
            # Variable delay: each destination gets its own realised delay
            # (still at most ``delta``), so messages are filed one by one.
            push_deliver = self._queue.push_deliver
            for dest in dests:
                push_deliver(
                    time + sample(sender, dest, time),
                    Message(sender, dest, kind, shared_payload, time,
                            chain_depth, wireless))
        if wireless:
            # The whole batch is one over-the-air transmission; follow-on
            # group members are tracked separately for the summary.
            self.costs.record_send(kind, time)
            self.costs.record_wireless_group(len(dests) - 1)
        else:
            self.costs.record_send_batch(kind, time, len(dests))
        tracer = self.tracer
        if tracer is not None:
            tracer.send(time, sender, -1, kind, count=len(dests))

    def schedule_timer(
        self,
        host: int,
        time: float,
        name: str,
        data: Any,
        chain_depth: int,
    ) -> None:
        """Schedule a timer event for ``host`` at absolute ``time``."""
        self._queue.push(
            time,
            EventKind.TIMER,
            host=host,
            timer_name=name,
            data=(data, chain_depth),
        )

    def on_host_failure(self, callback: Callable[[int, float], None]) -> None:
        """Register an observer invoked as ``callback(host, time)`` on failures."""
        self._fail_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Execute the protocol and return the querying host's result.

        Args:
            until: optional simulation-time horizon; when omitted the run
                continues until the event queue drains (all protocols in
                this repository terminate via timers, so the queue always
                drains).
        """
        horizon = min(until, self.max_time) if until is not None else self.max_time
        self._schedule_churn(horizon)
        self._queue.push(0.0, EventKind.QUERY_START, host=self.querying_host)

        fallback_reason: Optional[str] = None
        if self.lane == "vector":
            # Opt-in vectorized per-tick lane; returns None (consuming
            # nothing) when the run is unsupported, in which case the
            # spec loop below proceeds untouched.
            from repro.simulation import vector_lane

            result = vector_lane.maybe_run(self, horizon)
            if result is not None:
                self.lane_used = "vector"
                return result
            fallback_reason = vector_lane.last_fallback_reason
        elif self.lane == "sharded":
            # Opt-in multiprocess epoch-synchronous lane; same contract.
            from repro.simulation import sharded

            result = sharded.maybe_run(self, horizon)
            if result is not None:
                self.lane_used = "sharded"
                return result
            fallback_reason = sharded.last_fallback_reason
        self.lane_used = "python"

        # The run loop handles the two hot event kinds (message deliveries
        # and timers, >99% of traffic) inline and routes everything else
        # through ``_dispatch``; semantics are identical to dispatching all
        # kinds, this just removes two function-call hops per event.  One
        # HostContext is reused across stimuli (no protocol retains it past
        # the handler call), the clock is advanced by direct assignment
        # (the ring pops in non-decreasing time order by construction), and
        # the cyclic garbage collector is paused for the duration of the
        # loop -- simulation objects are acyclic, so the periodic gen-0
        # scans triggered by the allocation rate are pure overhead.
        import gc

        queue = self._queue
        pop_due = queue.pop_due
        clock = self.clock
        network = self.network
        # The network's packed alive bitmap (a bytearray: one byte per
        # host, appended in place on joins, so the binding stays valid).
        alive_flags = network._alive
        hosts = self.hosts
        costs = self.costs
        # The default full accounting keeps its per-host Counter inlined in
        # the loop (one dict bump per message); any other sink goes through
        # its record_processed hook, which streaming sinks keep O(1).
        if type(costs) is CostAccounting:
            processed = costs.messages_processed
            record_processed = None
        else:
            processed = None
            record_processed = costs.record_processed
        timer = EventKind.TIMER
        tracer = self.tracer
        ctx = HostContext(self, 0, 0.0, 0)
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while not self._stopped:
                front = pop_due(horizon)
                if front is None:
                    break
                time, entry = front
                clock._now = time
                if entry.__class__ is Message:
                    dest = entry.dest
                    # Messages to hosts that failed in flight are lost.
                    if not alive_flags[dest]:
                        costs.dropped_messages += 1
                        if tracer is not None:
                            tracer.drop(time, dest)
                        continue
                    chain_depth = entry.chain_depth
                    if processed is not None:
                        processed[dest] += 1
                        if chain_depth > costs.max_chain_depth:
                            costs.max_chain_depth = chain_depth
                    else:
                        record_processed(dest, chain_depth)
                    if tracer is not None:
                        tracer.deliver(time, entry.sender, dest, entry.kind,
                                       chain_depth, entry.sent_at)
                    ctx.host_id = dest
                    ctx.now = time
                    ctx._chain_depth = chain_depth
                    hosts[dest].on_message(entry, ctx)
                elif entry.kind is timer:
                    host = entry.host
                    if not alive_flags[host]:
                        continue
                    info = entry.data
                    if info is not None:
                        data, chain_depth = info
                    else:
                        data = None
                        chain_depth = 0
                    if tracer is not None:
                        tracer.timer(time, host, entry.timer_name or "")
                    ctx.host_id = host
                    ctx.now = time
                    ctx._chain_depth = chain_depth
                    hosts[host].on_timer(entry.timer_name or "", data, ctx)
                else:
                    self._dispatch(entry)
        finally:
            if gc_was_enabled:
                gc.enable()

        finished = self.clock.now
        value = self.hosts[self.querying_host].local_result()
        return SimulationResult(
            value=value,
            costs=self.costs,
            finished_at=finished,
            querying_host=self.querying_host,
            fallback_reason=fallback_reason,
        )

    def stop(self) -> None:
        """Stop the run after the current event (used by custom handlers)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _schedule_churn(self, horizon: float) -> None:
        for time, host in self._churn.failures:
            if time <= horizon:
                self._queue.push(time, EventKind.FAIL, host=host)
        for join in self._churn.joins:
            if join.time <= horizon:
                self._queue.push(
                    join.time, EventKind.JOIN, data=tuple(join.neighbors)
                )

    def _dispatch(self, event: Event) -> None:
        if event.kind is EventKind.QUERY_START:
            self._handle_query_start(event)
        elif event.kind is EventKind.DELIVER:
            self._handle_deliver(event)
        elif event.kind is EventKind.TIMER:
            self._handle_timer(event)
        elif event.kind is EventKind.FAIL:
            self._handle_fail(event)
        elif event.kind is EventKind.JOIN:
            self._handle_join(event)
        elif event.kind is EventKind.CUSTOM:
            handler = event.data
            if callable(handler):
                handler(self)

    def _handle_query_start(self, event: Event) -> None:
        host = event.host
        assert host is not None
        if not self.network.is_alive(host):
            return
        ctx = HostContext(self, host, self.clock.now, chain_depth=0)
        self.hosts[host].on_query_start(ctx)

    def _handle_deliver(self, event: Event) -> None:
        message = event.message
        assert message is not None
        dest = message.dest
        # Messages to hosts that failed while the message was in flight are
        # lost; the sender may detect this via heartbeats but the base model
        # simply drops them.
        if not self.network.is_alive(dest):
            self.costs.record_dropped()
            if self.tracer is not None:
                self.tracer.drop(self.clock.now, dest)
            return
        self.costs.record_processed(dest, message.chain_depth)
        if self.tracer is not None:
            self.tracer.deliver(self.clock.now, message.sender, dest,
                                message.kind, message.chain_depth,
                                message.sent_at)
        ctx = HostContext(self, dest, self.clock.now, chain_depth=message.chain_depth)
        self.hosts[dest].on_message(message, ctx)

    def _handle_timer(self, event: Event) -> None:
        host = event.host
        assert host is not None
        if not self.network.is_alive(host):
            return
        info = event.data
        data, chain_depth = info if info is not None else (None, 0)
        ctx = HostContext(self, host, self.clock.now, chain_depth=chain_depth)
        self.hosts[host].on_timer(event.timer_name or "", data, ctx)

    def _handle_fail(self, event: Event) -> None:
        host = event.host
        assert host is not None
        if not self.network.is_alive(host):
            return
        self.network.fail_host(host, self.clock.now)
        if self.tracer is not None:
            self.tracer.fail(self.clock.now, host)
        self.hosts[host].on_fail(self.clock.now)
        for callback in self._fail_callbacks:
            callback(host, self.clock.now)

    def _handle_join(self, event: Event) -> None:
        neighbors = [
            h for h in (event.data or ()) if self.network.is_alive(h)
        ]
        if not neighbors:
            return
        new_id = self.network.join_host(neighbors, self.clock.now)
        if self.tracer is not None:
            self.tracer.join(self.clock.now, new_id)
        # Joining hosts get a default protocol state cloned from the factory
        # attached by the experiment driver; if none was provided the host
        # silently ignores all traffic.
        factory = getattr(self, "join_host_factory", None)
        if factory is not None:
            self.hosts.append(factory(new_id))
        else:
            self.hosts.append(InertHost(new_id))


class InertHost(ProtocolHost):
    """A host that ignores every stimulus.

    Used as the placeholder state machine for hosts that join mid-run
    without a ``join_host_factory``, and by the query service to pad a
    session's host table for network hosts that exist but do not
    participate in that query (e.g. hosts that joined before the query
    launched)."""

    __slots__ = ()

    def __init__(self, host_id: int) -> None:
        super().__init__(host_id, value=0.0)

    def on_query_start(self, ctx: HostContext) -> None:  # pragma: no cover
        return

    def on_message(self, message: Message, ctx: HostContext) -> None:
        return


#: Backwards-compatible alias (the class was module-private before the
#: service layer started sharing it).
_InertHost = InertHost
