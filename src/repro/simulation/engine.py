"""The discrete-event simulation engine.

The :class:`Simulator` drives a set of :class:`~repro.simulation.host.ProtocolHost`
state machines over a :class:`~repro.simulation.network.DynamicNetwork`,
delivering messages with a fixed per-hop delay ``delta``, executing a churn
schedule, and accounting costs as defined in the paper's Section 6.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.simulation.churn import ChurnSchedule
from repro.simulation.clock import SimulationClock
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.host import HostContext, ProtocolHost
from repro.simulation.messages import Message
from repro.simulation.network import DynamicNetwork
from repro.simulation.stats import CostAccounting


@dataclass
class SimulationResult:
    """Outcome of one simulated protocol run.

    Attributes:
        value: the value declared at the querying host (protocol specific;
            ``None`` if the protocol never produced one).
        costs: the message/computation/time cost accounting for the run.
        finished_at: simulation time when the run stopped.
        querying_host: id of the host that issued the query.
        extra: protocol- or experiment-specific extras (e.g. tree depth).
    """

    value: Any
    costs: CostAccounting
    finished_at: float
    querying_host: int
    extra: Dict[str, Any] = field(default_factory=dict)


class Simulator:
    """Event-driven executor for aggregation protocols on dynamic networks.

    Args:
        network: the (mutable) dynamic network the protocol runs on.
        hosts: one protocol state machine per host id; the list is indexed
            by host id and must cover every host in the network.
        querying_host: the host at which the query is issued at time 0.
        delta: maximum per-hop message delay (the paper's ``delta``); the
            simulator delivers every message after exactly this delay, which
            is the adversarially slowest behaviour allowed by the model.
        churn: schedule of host failures/joins to apply during the run.
        wireless: when True, a multicast to all neighbors of a host counts
            as one transmission (the sensor-network broadcast medium).
        max_time: hard stop for the simulation clock; runs longer than this
            raise, which catches protocols that fail to terminate.
    """

    def __init__(
        self,
        network: DynamicNetwork,
        hosts: Sequence[ProtocolHost],
        querying_host: int,
        delta: float = 1.0,
        churn: Optional[ChurnSchedule] = None,
        wireless: bool = False,
        max_time: float = 1_000_000.0,
    ) -> None:
        if len(hosts) < network.num_hosts:
            raise ValueError(
                f"expected at least {network.num_hosts} protocol hosts, got {len(hosts)}"
            )
        if not network.is_alive(querying_host):
            raise ValueError("the querying host must be alive at time 0")
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.network = network
        self.hosts: List[ProtocolHost] = list(hosts)
        self.querying_host = querying_host
        self.delta = float(delta)
        self.wireless = wireless
        self.max_time = float(max_time)
        self.clock = SimulationClock()
        self.costs = CostAccounting()
        self._queue = EventQueue()
        self._churn = churn or ChurnSchedule.empty()
        self._stopped = False
        self._fail_callbacks: List[Callable[[int, float], None]] = []

    # ------------------------------------------------------------------
    # Scheduling API used by HostContext
    # ------------------------------------------------------------------
    def submit_message(
        self,
        sender: int,
        dest: int,
        kind: str,
        payload: Mapping[str, Any],
        time: float,
        chain_depth: int,
    ) -> bool:
        """Queue a unicast message for delivery after ``delta`` time."""
        if not self.network.is_alive(sender):
            return False
        if dest not in self.network.neighbors(sender):
            return False
        message = Message(
            sender=sender,
            dest=dest,
            kind=kind,
            payload=dict(payload),
            sent_at=time,
            chain_depth=chain_depth,
        )
        self.costs.record_send(kind, time)
        self._queue.push(time + self.delta, EventKind.DELIVER, message=message)
        return True

    def submit_multicast(
        self,
        sender: int,
        dests: Sequence[int],
        kind: str,
        payload: Mapping[str, Any],
        time: float,
        chain_depth: int,
    ) -> None:
        """Queue the same message to several neighbors.

        On a wireless medium the whole batch counts as one transmission; on
        a point-to-point medium each destination is a separate message.
        """
        if not self.network.is_alive(sender):
            return
        neighbors = self.network.neighbors(sender)
        first = True
        for dest in dests:
            if dest not in neighbors:
                continue
            message = Message(
                sender=sender,
                dest=dest,
                kind=kind,
                payload=dict(payload),
                sent_at=time,
                chain_depth=chain_depth,
                wireless=self.wireless,
            )
            if self.wireless:
                self.costs.record_send(kind, time, wireless_group=not first)
            else:
                self.costs.record_send(kind, time)
            first = False
            self._queue.push(time + self.delta, EventKind.DELIVER, message=message)

    def schedule_timer(
        self,
        host: int,
        time: float,
        name: str,
        data: Any,
        chain_depth: int,
    ) -> None:
        """Schedule a timer event for ``host`` at absolute ``time``."""
        self._queue.push(
            time,
            EventKind.TIMER,
            host=host,
            timer_name=name,
            data={"data": data, "chain_depth": chain_depth},
        )

    def on_host_failure(self, callback: Callable[[int, float], None]) -> None:
        """Register an observer invoked as ``callback(host, time)`` on failures."""
        self._fail_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Execute the protocol and return the querying host's result.

        Args:
            until: optional simulation-time horizon; when omitted the run
                continues until the event queue drains (all protocols in
                this repository terminate via timers, so the queue always
                drains).
        """
        horizon = min(until, self.max_time) if until is not None else self.max_time
        self._schedule_churn(horizon)
        self._queue.push(0.0, EventKind.QUERY_START, host=self.querying_host)

        while self._queue and not self._stopped:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > horizon:
                break
            event = self._queue.pop()
            self.clock.advance_to(event.time)
            self._dispatch(event)

        finished = self.clock.now
        value = self.hosts[self.querying_host].local_result()
        return SimulationResult(
            value=value,
            costs=self.costs,
            finished_at=finished,
            querying_host=self.querying_host,
        )

    def stop(self) -> None:
        """Stop the run after the current event (used by custom handlers)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _schedule_churn(self, horizon: float) -> None:
        for time, host in self._churn.failures:
            if time <= horizon:
                self._queue.push(time, EventKind.FAIL, host=host)
        for join in self._churn.joins:
            if join.time <= horizon:
                self._queue.push(
                    join.time, EventKind.JOIN, data=tuple(join.neighbors)
                )

    def _dispatch(self, event: Event) -> None:
        if event.kind is EventKind.QUERY_START:
            self._handle_query_start(event)
        elif event.kind is EventKind.DELIVER:
            self._handle_deliver(event)
        elif event.kind is EventKind.TIMER:
            self._handle_timer(event)
        elif event.kind is EventKind.FAIL:
            self._handle_fail(event)
        elif event.kind is EventKind.JOIN:
            self._handle_join(event)
        elif event.kind is EventKind.CUSTOM:
            handler = event.data
            if callable(handler):
                handler(self)

    def _handle_query_start(self, event: Event) -> None:
        host = event.host
        assert host is not None
        if not self.network.is_alive(host):
            return
        ctx = HostContext(self, host, self.clock.now, chain_depth=0)
        self.hosts[host].on_query_start(ctx)

    def _handle_deliver(self, event: Event) -> None:
        message = event.message
        assert message is not None
        dest = message.dest
        # Messages to hosts that failed while the message was in flight are
        # lost; the sender may detect this via heartbeats but the base model
        # simply drops them.
        if not self.network.is_alive(dest):
            self.costs.record_dropped()
            return
        self.costs.record_processed(dest, message.chain_depth)
        ctx = HostContext(self, dest, self.clock.now, chain_depth=message.chain_depth)
        self.hosts[dest].on_message(message, ctx)

    def _handle_timer(self, event: Event) -> None:
        host = event.host
        assert host is not None
        if not self.network.is_alive(host):
            return
        info = event.data or {}
        chain_depth = info.get("chain_depth", 0)
        ctx = HostContext(self, host, self.clock.now, chain_depth=chain_depth)
        self.hosts[host].on_timer(event.timer_name or "", info.get("data"), ctx)

    def _handle_fail(self, event: Event) -> None:
        host = event.host
        assert host is not None
        if not self.network.is_alive(host):
            return
        self.network.fail_host(host, self.clock.now)
        self.hosts[host].on_fail(self.clock.now)
        for callback in self._fail_callbacks:
            callback(host, self.clock.now)

    def _handle_join(self, event: Event) -> None:
        neighbors = [
            h for h in (event.data or ()) if self.network.is_alive(h)
        ]
        if not neighbors:
            return
        new_id = self.network.join_host(neighbors, self.clock.now)
        # Joining hosts get a default protocol state cloned from the factory
        # attached by the experiment driver; if none was provided the host
        # silently ignores all traffic.
        factory = getattr(self, "join_host_factory", None)
        if factory is not None:
            self.hosts.append(factory(new_id))
        else:
            self.hosts.append(_InertHost(new_id))


class _InertHost(ProtocolHost):
    """A host that ignores every stimulus (placeholder for joined hosts)."""

    def __init__(self, host_id: int) -> None:
        super().__init__(host_id, value=0.0)

    def on_query_start(self, ctx: HostContext) -> None:  # pragma: no cover
        return

    def on_message(self, message: Message, ctx: HostContext) -> None:
        return
