"""Simulated clock.

The paper's relaxed asynchronous model assumes known bounds on processing
speed, transmission delay and clock drift, all folded into a single maximum
per-hop delay ``delta``.  The simulator therefore keeps one global virtual
clock; protocol code never reads wall-clock time.

One ``delta`` is the natural *tick* of that clock: costs and histograms
are bucketed per tick (:func:`tick_index` / :func:`tick_time`), which
keeps per-instant measures well-defined when a variable
:mod:`~repro.simulation.delay` model spreads events over arbitrary float
timestamps.  Under the fixed-delay model every event already lands on a
tick boundary, so bucketing is the identity there.
"""

from __future__ import annotations

#: Relative slack absorbed when mapping a float timestamp onto the tick
#: grid, so accumulated floating-point drift just below a boundary (e.g.
#: 2.9999999996 with width 1.0) still lands in the intended bucket.
_TICK_EPSILON = 1e-9


def tick_index(time: float, width: float) -> int:
    """The zero-based clock tick containing ``time`` (bucket ``width``)."""
    return int(time / width + _TICK_EPSILON)


def tick_time(time: float, width: float) -> float:
    """The start time of the tick containing ``time``.

    This is the canonical histogram key for per-instant measures: under
    the fixed-delay model it equals ``time`` exactly for every event the
    simulator schedules, so tick-bucketed histograms are bit-identical
    to the historical raw-float keying there.
    """
    return tick_index(time, width) * width


class SimulationClock:
    """Monotonic virtual clock measured in multiples of the hop delay."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("simulation time cannot start negative")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises:
            ValueError: if ``time`` is earlier than the current time, which
                would indicate a scheduling bug in the event queue.
        """
        if time < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now}, requested={time}"
            )
        self._now = float(time)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock, e.g. between independent simulation runs."""
        if start < 0:
            raise ValueError("simulation time cannot start negative")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now={self._now})"
