"""Simulated clock.

The paper's relaxed asynchronous model assumes known bounds on processing
speed, transmission delay and clock drift, all folded into a single maximum
per-hop delay ``delta``.  The simulator therefore keeps one global virtual
clock; protocol code never reads wall-clock time.
"""

from __future__ import annotations


class SimulationClock:
    """Monotonic virtual clock measured in multiples of the hop delay."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("simulation time cannot start negative")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises:
            ValueError: if ``time`` is earlier than the current time, which
                would indicate a scheduling bug in the event queue.
        """
        if time < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now}, requested={time}"
            )
        self._now = float(time)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock, e.g. between independent simulation runs."""
        if start < 0:
            raise ValueError("simulation time cannot start negative")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now={self._now})"
