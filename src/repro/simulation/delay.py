"""Pluggable link-delay models.

The paper's network model (Section 3) only *bounds* the per-hop message
delay: every message sent over an alive edge arrives within ``delta``.
All of the protocols' validity guarantees are stated for arbitrary
realised delays in ``(0, delta]`` -- the fixed worst-case delay the
simulator historically used is just the adversarially slowest point of
that scenario space.  A :class:`DelayModel` makes the realised delay a
pluggable policy so experiments can explore the rest of the space:

* :class:`FixedDelay` -- every message takes exactly ``delta`` (the
  pre-existing semantics, and still the default).  Draws no randomness,
  so seeded runs under it are bit-identical to the fixed-delay kernel.
* :class:`UniformDelay` -- each message independently takes a uniform
  fraction of the bound in ``[lo, hi]``.
* :class:`PerEdgeDelay` -- each undirected edge has one fixed latency
  (drawn deterministically from the model seed and the edge endpoints),
  modelling heterogeneous links; both directions share it.
* :class:`HeavyTailDelay` -- a truncated-Pareto fraction of the bound:
  most messages are fast, a heavy tail of stragglers approaches the
  bound (the classic long-tail behaviour of overlay links).

Every sample lies in ``(0, bound]``; protocols must keep computing their
timer deadlines from the *bound* (``ctx.delta``), never from realised
delays, which is exactly what keeps the Single-Site Validity claims
honest under any model here.

Models are addressable by compact spec strings (``"fixed"``,
``"uniform"``, ``"uniform:0.25,1.0"``, ``"per_edge"``,
``"heavy_tail:1.2"``) via :func:`delay_model_from_spec`, which is how the
configuration layer and the CLI select them.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, Optional, Tuple

__all__ = [
    "DelayModel",
    "FixedDelay",
    "UniformDelay",
    "PerEdgeDelay",
    "HeavyTailDelay",
    "DELAY_MODELS",
    "delay_model_from_spec",
]

#: Smallest fraction of the bound a sample may take; keeps every realised
#: delay strictly positive (a zero delay would deliver a message at its own
#: send instant, which the event-ordering model does not allow).
_MIN_FRACTION = 1e-9


class DelayModel(abc.ABC):
    """Per-message link-delay policy bounded by the paper's ``delta``.

    Attributes:
        bound: the maximum per-hop delay ``delta``; every sample lies in
            ``(0, bound]``.
        stochastic: whether the model consumes randomness.  The engine
            reseeds stochastic models from the run RNG
            (:meth:`reseed`); :class:`FixedDelay` draws nothing, which
            keeps seeded fixed-delay runs bit-identical to the
            pre-delay-model kernel.
    """

    #: Spec-string name of the model (also the registry key).
    name: str = "delay"
    stochastic: bool = True
    #: True when a host's sample sequence depends only on the seed and the
    #: message endpoints, never on which other hosts shared the RNG -- the
    #: property a range-partitioned (sharded) run needs so sampling is
    #: identical no matter where the partition cuts fall.  Models drawing
    #: from one shared stream are *not* partition independent.
    partition_independent: bool = False

    def __init__(self, bound: float) -> None:
        if bound <= 0:
            raise ValueError("delay bound (delta) must be positive")
        self.bound = float(bound)

    @abc.abstractmethod
    def sample(self, sender: int, dest: int, now: float) -> float:
        """The realised delay of one message, in ``(0, bound]``."""

    def reseed(self, seed: int) -> None:
        """Re-derive the model's private RNG stream (no-op if none)."""

    def spec(self) -> Dict[str, object]:
        """JSON-friendly description for experiment reports."""
        return {"model": self.name, "bound": self.bound}

    def _clamp(self, fraction: float) -> float:
        """Map a fraction of the bound into the legal ``(0, bound]``."""
        if fraction > 1.0:
            fraction = 1.0
        elif fraction < _MIN_FRACTION:
            fraction = _MIN_FRACTION
        return fraction * self.bound

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(bound={self.bound})"


class FixedDelay(DelayModel):
    """Every message takes exactly the bound (the paper's cost model).

    This reproduces the pre-delay-model kernel bit-identically: the
    engine's fixed fast path never calls :meth:`sample`, and the model
    consumes no randomness.
    """

    name = "fixed"
    stochastic = False
    partition_independent = True

    def sample(self, sender: int, dest: int, now: float) -> float:
        return self.bound


class UniformDelay(DelayModel):
    """Independent per-message delays, uniform in ``[lo, hi] * bound``.

    Args:
        bound: the delay bound ``delta``.
        lo: lower fraction of the bound (must be positive).
        hi: upper fraction of the bound (at most 1).
        seed: seed of the model's private RNG stream.
        per_host: draw each sender's delays from its own seed-derived
            stream instead of one shared stream.  The distribution is
            unchanged, but a host's sample sequence then depends only on
            ``(seed, sender)`` and the order of *its own* sends, so the
            model is partition independent -- any contiguous sharding of
            the host range sees identical samples.  Off by default: the
            shared stream is the historical draw order the golden runs
            were recorded under.
    """

    name = "uniform"

    def __init__(self, bound: float, lo: float = 0.25, hi: float = 1.0,
                 seed: int = 0, per_host: bool = False) -> None:
        super().__init__(bound)
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError(
                f"uniform delay fractions must satisfy 0 < lo <= hi <= 1, "
                f"got lo={lo}, hi={hi}"
            )
        self.lo = float(lo)
        self.hi = float(hi)
        self._seed = int(seed)
        self._rng = random.Random(seed)
        self.per_host = bool(per_host)
        if self.per_host:
            self.partition_independent = True
        self._host_rngs: Dict[int, random.Random] = {}

    def reseed(self, seed: int) -> None:
        self._seed = int(seed)
        self._rng = random.Random(seed)
        self._host_rngs.clear()

    def _host_rng(self, sender: int) -> random.Random:
        rng = self._host_rngs.get(sender)
        if rng is None:
            # String seeding hashes with SHA-512, so nearby host ids get
            # uncorrelated streams.
            rng = random.Random(f"{self._seed}:host:{sender}")
            self._host_rngs[sender] = rng
        return rng

    def sample(self, sender: int, dest: int, now: float) -> float:
        rng = self._host_rng(sender) if self.per_host else self._rng
        lo, hi = self.lo, self.hi
        return self._clamp(lo + (hi - lo) * rng.random())

    def spec(self) -> Dict[str, object]:
        spec: Dict[str, object] = {"model": self.name, "bound": self.bound,
                                   "lo": self.lo, "hi": self.hi}
        if self.per_host:
            spec["per_host"] = True
        return spec


class PerEdgeDelay(DelayModel):
    """One fixed latency per undirected edge, heterogeneous across links.

    The latency of edge ``{a, b}`` is a uniform fraction of the bound in
    ``[lo, hi]``, derived deterministically from the model seed and the
    (order-independent) endpoint pair -- both directions share it, and
    the value does not depend on traffic order, so two protocols run on
    the same network see the same link map.  Latencies are materialised
    lazily and cached, which keeps million-host runs from paying for
    edges no message ever crosses.
    """

    name = "per_edge"
    #: Each edge's latency depends only on (seed, endpoints) -- already
    #: independent of any host-range partition.
    partition_independent = True

    def __init__(self, bound: float, lo: float = 0.1, hi: float = 1.0,
                 seed: int = 0) -> None:
        super().__init__(bound)
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError(
                f"per-edge delay fractions must satisfy 0 < lo <= hi <= 1, "
                f"got lo={lo}, hi={hi}"
            )
        self.lo = float(lo)
        self.hi = float(hi)
        self._seed = int(seed)
        self._edge_delays: Dict[Tuple[int, int], float] = {}

    def reseed(self, seed: int) -> None:
        self._seed = int(seed)
        self._edge_delays.clear()

    def sample(self, sender: int, dest: int, now: float) -> float:
        key = (sender, dest) if sender < dest else (dest, sender)
        delay = self._edge_delays.get(key)
        if delay is None:
            # String seeding hashes with SHA-512 under the hood, giving a
            # stable, version-independent per-edge draw.
            draw = random.Random(f"{self._seed}:{key[0]}:{key[1]}").random()
            delay = self._clamp(self.lo + (self.hi - self.lo) * draw)
            self._edge_delays[key] = delay
        return delay

    def spec(self) -> Dict[str, object]:
        return {"model": self.name, "bound": self.bound,
                "lo": self.lo, "hi": self.hi}


class HeavyTailDelay(DelayModel):
    """Truncated-Pareto delays: mostly fast links, a heavy straggler tail.

    The delay fraction is ``xm / u^(1/alpha)`` for uniform ``u``,
    truncated at the bound -- a Pareto(``alpha``) tail starting at
    ``xm * bound``.  Smaller ``alpha`` makes stragglers (deliveries near
    the bound) more common; ``P(fraction > t) = (xm / t)^alpha``.

    Args:
        bound: the delay bound ``delta``.
        alpha: Pareto tail index (must be positive; default 1.2).
        xm: scale, the minimum delay fraction (default 0.05).
        seed: seed of the model's private RNG stream.
        per_host: draw each sender's delays from its own seed-derived
            stream (see :class:`UniformDelay`); makes the model
            partition independent.
    """

    name = "heavy_tail"

    def __init__(self, bound: float, alpha: float = 1.2, xm: float = 0.05,
                 seed: int = 0, per_host: bool = False) -> None:
        super().__init__(bound)
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 0.0 < xm <= 1.0:
            raise ValueError("xm must be in (0, 1]")
        self.alpha = float(alpha)
        self.xm = float(xm)
        self._seed = int(seed)
        self._rng = random.Random(seed)
        self.per_host = bool(per_host)
        if self.per_host:
            self.partition_independent = True
        self._host_rngs: Dict[int, random.Random] = {}

    def reseed(self, seed: int) -> None:
        self._seed = int(seed)
        self._rng = random.Random(seed)
        self._host_rngs.clear()

    def _host_rng(self, sender: int) -> random.Random:
        rng = self._host_rngs.get(sender)
        if rng is None:
            rng = random.Random(f"{self._seed}:host:{sender}")
            self._host_rngs[sender] = rng
        return rng

    def sample(self, sender: int, dest: int, now: float) -> float:
        # 1 - random() lies in (0, 1]; the Pareto inverse CDF maps it to
        # [xm, inf), truncated to the bound by _clamp.
        rng = self._host_rng(sender) if self.per_host else self._rng
        u = 1.0 - rng.random()
        return self._clamp(self.xm * u ** (-1.0 / self.alpha))

    def spec(self) -> Dict[str, object]:
        spec: Dict[str, object] = {"model": self.name, "bound": self.bound,
                                   "alpha": self.alpha, "xm": self.xm}
        if self.per_host:
            spec["per_host"] = True
        return spec


#: Registry of spec-string names to model classes.
DELAY_MODELS = {
    FixedDelay.name: FixedDelay,
    UniformDelay.name: UniformDelay,
    PerEdgeDelay.name: PerEdgeDelay,
    HeavyTailDelay.name: HeavyTailDelay,
}


def delay_model_from_spec(
    spec: "str | DelayModel | None",
    bound: float,
    seed: int = 0,
) -> Optional[DelayModel]:
    """Build a delay model from a compact spec string.

    ``None`` and ``"fixed"`` return ``None`` -- the engine's fixed fast
    path, which is semantically :class:`FixedDelay` without the
    indirection.  A ready-made :class:`DelayModel` passes through
    unchanged (its bound must match).  Strings take an optional
    colon-separated argument list::

        "uniform"            -> UniformDelay(bound)
        "uniform:0.25,1.0"   -> UniformDelay(bound, lo=0.25, hi=1.0)
        "per_edge:0.1,0.9"   -> PerEdgeDelay(bound, lo=0.1, hi=0.9)
        "heavy_tail:1.5"     -> HeavyTailDelay(bound, alpha=1.5)
        "heavy_tail:1.5,0.1" -> HeavyTailDelay(bound, alpha=1.5, xm=0.1)
    """
    if spec is None:
        return None
    if isinstance(spec, DelayModel):
        if abs(spec.bound - bound) > 1e-12:
            raise ValueError(
                f"delay model bound {spec.bound} does not match the "
                f"simulation delta {bound}"
            )
        return None if isinstance(spec, FixedDelay) else spec
    name, _, arg_text = str(spec).partition(":")
    name = name.strip().lower().replace("-", "_")
    if name == "fixed":
        return None
    if name not in DELAY_MODELS:
        raise ValueError(
            f"unknown delay model {name!r}; known: {sorted(DELAY_MODELS)}"
        )
    try:
        args = [float(a) for a in arg_text.split(",") if a.strip()]
    except ValueError:
        raise ValueError(
            f"malformed delay model arguments {arg_text!r} in {spec!r}"
        ) from None
    try:
        return DELAY_MODELS[name](bound, *args, seed=seed)
    except TypeError:
        # Too many positional arguments for the model; surface it like
        # every other malformed spec instead of leaking a TypeError.
        raise ValueError(
            f"too many arguments for delay model {name!r} in {spec!r}"
        ) from None
