"""Cost accounting.

The paper evaluates protocols on three measures (Section 6.3):

* **Communication cost** -- total number of messages sent between host
  pairs.  On a wireless broadcast medium a message addressed to all
  neighbors of a host counts once.
* **Computation cost** -- the maximum, over hosts, of the number of messages
  *processed* at a host.
* **Time cost** -- the length of the longest causal chain of messages,
  starting with the query initiation at the querying host.

:class:`CostAccounting` tracks all three during a simulation, plus a
per-time-instant message histogram used by Figure 13(b).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping


@dataclass
class CostAccounting:
    """Mutable accumulator of the paper's three cost measures."""

    messages_sent: int = 0
    wireless_transmissions: int = 0
    messages_processed: Counter = field(default_factory=Counter)
    max_chain_depth: int = 0
    messages_by_time: Counter = field(default_factory=Counter)
    messages_by_kind: Counter = field(default_factory=Counter)
    dropped_messages: int = 0

    def record_send(self, kind: str, time: float, wireless_group: bool = False) -> None:
        """Record one message transmission.

        Args:
            kind: protocol message kind (for per-kind breakdowns).
            time: simulation time of the send.
            wireless_group: True when this send is part of a wireless
                broadcast that was already counted; only the first message of
                the group should be recorded with ``wireless_group=False``.
        """
        if not wireless_group:
            self.messages_sent += 1
            self.messages_by_time[time] += 1
            self.messages_by_kind[kind] += 1
        else:
            self.wireless_transmissions += 1

    def record_send_batch(self, kind: str, time: float, count: int) -> None:
        """Record ``count`` point-to-point transmissions of one multicast.

        Equivalent to ``count`` calls to :meth:`record_send` with
        ``wireless_group=False`` -- same counters, one bump each.
        """
        if count <= 0:
            return
        self.messages_sent += count
        self.messages_by_time[time] += count
        self.messages_by_kind[kind] += count

    def record_wireless_group(self, count: int) -> None:
        """Record ``count`` follow-on members of one wireless broadcast."""
        self.wireless_transmissions += count

    def record_processed(self, host: int, chain_depth: int) -> None:
        """Record that ``host`` processed a message with given chain depth."""
        self.messages_processed[host] += 1
        if chain_depth > self.max_chain_depth:
            self.max_chain_depth = chain_depth

    def record_dropped(self) -> None:
        """Record a message dropped because its destination failed."""
        self.dropped_messages += 1

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------
    @property
    def communication_cost(self) -> int:
        """Total messages sent (the paper's communication cost)."""
        return self.messages_sent

    @property
    def computation_cost(self) -> int:
        """Maximum number of messages processed by any single host."""
        if not self.messages_processed:
            return 0
        return max(self.messages_processed.values())

    @property
    def time_cost(self) -> int:
        """Length of the longest causal message chain."""
        return self.max_chain_depth

    def computation_histogram(self) -> Dict[int, int]:
        """Map ``cost -> number of hosts`` that processed exactly that many
        messages (the Figure 12 distribution)."""
        histogram: Dict[int, int] = defaultdict(int)
        for count in self.messages_processed.values():
            histogram[count] += 1
        return dict(histogram)

    def messages_per_instant(self) -> Dict[float, int]:
        """Messages sent at each time instant (the Figure 13(b) series)."""
        return dict(self.messages_by_time)

    def summary(self) -> Mapping[str, int]:
        """A compact summary used by the experiment reports."""
        return {
            "communication_cost": self.communication_cost,
            "computation_cost": self.computation_cost,
            "time_cost": self.time_cost,
            "wireless_transmissions": self.wireless_transmissions,
            "dropped_messages": self.dropped_messages,
        }

    def merge(self, other: "CostAccounting") -> None:
        """Fold another accounting object into this one (for phased runs)."""
        self.messages_sent += other.messages_sent
        self.wireless_transmissions += other.wireless_transmissions
        self.messages_processed.update(other.messages_processed)
        self.max_chain_depth = max(self.max_chain_depth, other.max_chain_depth)
        self.messages_by_time.update(other.messages_by_time)
        self.messages_by_kind.update(other.messages_by_kind)
        self.dropped_messages += other.dropped_messages
