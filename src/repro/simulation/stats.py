"""Cost accounting behind a pluggable :class:`StatsSink` interface.

The paper evaluates protocols on three measures (Section 6.3):

* **Communication cost** -- total number of messages sent between host
  pairs.  On a wireless broadcast medium a message addressed to all
  neighbors of a host counts once.
* **Computation cost** -- the maximum, over hosts, of the number of messages
  *processed* at a host.
* **Time cost** -- the length of the longest causal chain of messages,
  starting with the query initiation at the querying host.

Two sinks implement the interface:

* :class:`CostAccounting` -- the full accumulator: per-host processed
  ``Counter``, per-kind counters, and the per-tick message histogram used
  by Figure 13(b).  This is the default and what the golden seeded
  snapshots pin.
* :class:`StreamingCostAccounting` -- the bounded-memory accumulator for
  million-host runs.  Every cost measure stays *exact*; what changes is
  the representation: the per-host ``Counter`` (a hash map of boxed ints,
  ~90 bytes per host) becomes a packed ``array('I')`` (4 bytes per host)
  updated with a running maximum, and the per-instant float-keyed
  ``Counter`` becomes a fixed-width per-tick ``array('q')`` whose length
  is bounded by the run's duration in ticks, not by traffic or host
  count.  Per-message work is O(1) with no allocation.

Both sinks bucket per-instant message counts by clock tick
(:func:`~repro.simulation.clock.tick_time`), so the Figure 13(b)
histogram stays well-defined when a variable delay model spreads sends
over arbitrary float timestamps; under the fixed-delay model tick
bucketing is the identity and keying is unchanged.
"""

from __future__ import annotations

import abc
import sys
from array import array
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.simulation.clock import _TICK_EPSILON, tick_index

__all__ = [
    "StatsSink",
    "CostAccounting",
    "StreamingCostAccounting",
    "STATS_MODES",
    "make_stats_sink",
]


class StatsSink(abc.ABC):
    """Interface between the simulation engine and cost measurement.

    The engine reports raw events (sends, processed deliveries, drops);
    a sink turns them into the paper's cost measures.  Implementations
    must expose ``messages_sent``, ``wireless_transmissions``,
    ``dropped_messages`` and ``max_chain_depth`` as plain attributes --
    the engine's inline hot loop updates chain depth directly.
    """

    messages_sent: int
    wireless_transmissions: int
    dropped_messages: int
    max_chain_depth: int

    @abc.abstractmethod
    def record_send(self, kind: str, time: float, wireless_group: bool = False) -> None:
        """Record one message transmission (see :class:`CostAccounting`)."""

    @abc.abstractmethod
    def record_send_batch(self, kind: str, time: float, count: int) -> None:
        """Record ``count`` point-to-point transmissions of one multicast."""

    @abc.abstractmethod
    def record_wireless_group(self, count: int) -> None:
        """Record ``count`` follow-on members of one wireless broadcast."""

    @abc.abstractmethod
    def record_processed(self, host: int, chain_depth: int) -> None:
        """Record that ``host`` processed a message with given chain depth."""

    @abc.abstractmethod
    def record_dropped(self) -> None:
        """Record a message dropped because its destination failed."""

    def record_processed_bulk(self, host_counts) -> None:
        """Fold many per-host processed-count increments in at once.

        ``host_counts`` yields ``(host, count)`` pairs with ``count >= 1``.
        Equivalent to ``count`` calls to :meth:`record_processed` per pair
        except that chain depths are **not** folded here -- the caller
        (the vector lane's end-of-run replay) updates the
        ``max_chain_depth`` attribute directly, exactly like the engine's
        inline hot loop does.  Concrete sinks override this with an O(1)-
        per-pair implementation; the default loops for third-party sinks.
        """
        record = self.record_processed
        for host, count in host_counts:
            for _ in range(count):
                record(host, 0)

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------
    @property
    def communication_cost(self) -> int:
        """Total messages sent (the paper's communication cost)."""
        return self.messages_sent

    @property
    @abc.abstractmethod
    def computation_cost(self) -> int:
        """Maximum number of messages processed by any single host."""

    @property
    def time_cost(self) -> int:
        """Length of the longest causal message chain."""
        return self.max_chain_depth

    @abc.abstractmethod
    def computation_histogram(self) -> Dict[int, int]:
        """Map ``cost -> number of hosts`` that processed exactly that many
        messages (the Figure 12 distribution)."""

    @abc.abstractmethod
    def messages_per_instant(self) -> Dict[float, int]:
        """Messages sent in each clock tick, keyed by the tick's start time
        (the Figure 13(b) series)."""

    @abc.abstractmethod
    def footprint_bytes(self) -> int:
        """Approximate resident size of the accounting structures."""

    def summary(self) -> Mapping[str, int]:
        """A compact summary used by the experiment reports."""
        return {
            "communication_cost": self.communication_cost,
            "computation_cost": self.computation_cost,
            "time_cost": self.time_cost,
            "wireless_transmissions": self.wireless_transmissions,
            "dropped_messages": self.dropped_messages,
        }

    def fingerprint(self) -> str:
        """A stable hex digest of every measure this sink reports.

        Two sinks fingerprint identically iff they agree on the summary
        measures, the per-kind send counts, the computation histogram and
        the per-tick send histogram -- regardless of representation, so a
        full and a streaming sink that accounted the same run match.  The
        multi-tenant query service uses this to assert that a query's cost
        attribution is bit-identical across re-runs and to a solo run.
        """
        import hashlib
        import json

        by_kind = getattr(self, "messages_by_kind", {})
        payload = json.dumps(
            {
                "summary": dict(self.summary()),
                "by_kind": {k: by_kind[k] for k in sorted(by_kind)},
                "computation_histogram": sorted(
                    self.computation_histogram().items()),
                "per_instant": sorted(self.messages_per_instant().items()),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CostAccounting(StatsSink):
    """Full accumulator of the paper's three cost measures.

    ``tick_width`` is the per-instant histogram's bucket width (the
    engine passes the delay bound ``delta``); under the fixed-delay
    model every send already lands on a tick boundary, so the keys of
    ``messages_by_time`` are unchanged from the historical raw-float
    keying.
    """

    messages_sent: int = 0
    wireless_transmissions: int = 0
    messages_processed: Counter = field(default_factory=Counter)
    max_chain_depth: int = 0
    messages_by_time: Counter = field(default_factory=Counter)
    messages_by_kind: Counter = field(default_factory=Counter)
    dropped_messages: int = 0
    tick_width: float = 1.0

    def record_send(self, kind: str, time: float, wireless_group: bool = False) -> None:
        """Record one message transmission.

        Args:
            kind: protocol message kind (for per-kind breakdowns).
            time: simulation time of the send.
            wireless_group: True when this send is part of a wireless
                broadcast that was already counted; only the first message of
                the group should be recorded with ``wireless_group=False``.
        """
        if not wireless_group:
            self.messages_sent += 1
            # Inline tick_time(): this runs once per send on the kernel's
            # hottest accounting path.
            width = self.tick_width
            self.messages_by_time[
                int(time / width + _TICK_EPSILON) * width] += 1
            self.messages_by_kind[kind] += 1
        else:
            self.wireless_transmissions += 1

    def record_send_batch(self, kind: str, time: float, count: int) -> None:
        """Record ``count`` point-to-point transmissions of one multicast.

        Equivalent to ``count`` calls to :meth:`record_send` with
        ``wireless_group=False`` -- same counters, one bump each.
        """
        if count <= 0:
            return
        self.messages_sent += count
        width = self.tick_width
        self.messages_by_time[
            int(time / width + _TICK_EPSILON) * width] += count
        self.messages_by_kind[kind] += count

    def record_wireless_group(self, count: int) -> None:
        """Record ``count`` follow-on members of one wireless broadcast."""
        self.wireless_transmissions += count

    def record_processed(self, host: int, chain_depth: int) -> None:
        """Record that ``host`` processed a message with given chain depth."""
        self.messages_processed[host] += 1
        if chain_depth > self.max_chain_depth:
            self.max_chain_depth = chain_depth

    def record_dropped(self) -> None:
        """Record a message dropped because its destination failed."""
        self.dropped_messages += 1

    def record_processed_bulk(self, host_counts) -> None:
        """Fold ``(host, count)`` processed increments in one dict bump each."""
        processed = self.messages_processed
        for host, count in host_counts:
            processed[host] += count

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------
    @property
    def computation_cost(self) -> int:
        """Maximum number of messages processed by any single host."""
        if not self.messages_processed:
            return 0
        return max(self.messages_processed.values())

    def computation_histogram(self) -> Dict[int, int]:
        """Map ``cost -> number of hosts`` that processed exactly that many
        messages (the Figure 12 distribution)."""
        histogram: Dict[int, int] = defaultdict(int)
        for count in self.messages_processed.values():
            histogram[count] += 1
        return dict(histogram)

    def messages_per_instant(self) -> Dict[float, int]:
        """Messages sent in each clock tick (the Figure 13(b) series)."""
        return dict(self.messages_by_time)

    def footprint_bytes(self) -> int:
        """Approximate resident size of the accounting counters."""
        total = 0
        for counter in (self.messages_processed, self.messages_by_time,
                        self.messages_by_kind):
            total += sys.getsizeof(counter)
            for key, value in counter.items():
                total += sys.getsizeof(key) + sys.getsizeof(value)
        return total

    def merge(self, other: "CostAccounting") -> None:
        """Fold another accounting object into this one (for phased runs).

        Both sides must use the same ``tick_width`` for the per-tick
        histogram to stay meaningful.
        """
        self.messages_sent += other.messages_sent
        self.wireless_transmissions += other.wireless_transmissions
        self.messages_processed.update(other.messages_processed)
        self.max_chain_depth = max(self.max_chain_depth, other.max_chain_depth)
        self.messages_by_time.update(other.messages_by_time)
        self.messages_by_kind.update(other.messages_by_kind)
        self.dropped_messages += other.dropped_messages


class StreamingCostAccounting(StatsSink):
    """Bounded-memory cost accounting for million-host runs.

    Every measure the full :class:`CostAccounting` reports is computed
    exactly; only the representation changes:

    * per-host processed counts live in a packed ``array('I')`` (4 bytes
      per host, vs ~90 bytes per ``Counter`` entry) and the computation
      cost is maintained as a running maximum instead of a final
      ``max()`` scan;
    * the per-instant message histogram is an ``array('q')`` indexed by
      clock tick, whose length is bounded by the run's duration in ticks
      (~``2 * D_hat`` for the paper's protocols) rather than by the
      number of distinct float send times.

    What is *not* available is the ``messages_processed`` mapping itself
    -- callers that need per-host attribution (none of the figure
    drivers do; Figure 12 only needs the histogram) must use the full
    sink.

    Args:
        num_hosts: number of host slots to pre-size the processed-count
            array for; hosts joining later grow it on demand.
        tick_width: per-instant histogram bucket width (the engine
            passes the delay bound ``delta``).
    """

    def __init__(self, num_hosts: int = 0, tick_width: float = 1.0) -> None:
        if num_hosts < 0:
            raise ValueError("num_hosts cannot be negative")
        if tick_width <= 0:
            raise ValueError("tick_width must be positive")
        self.tick_width = float(tick_width)
        self.messages_sent = 0
        self.wireless_transmissions = 0
        self.dropped_messages = 0
        self.max_chain_depth = 0
        self._max_processed = 0
        # bytes(4 * n) zero-fills without materialising a Python int list.
        self._processed = array("I", bytes(4 * num_hosts))
        self._by_tick = array("q")
        self.messages_by_kind: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _bump_tick(self, time: float, count: int) -> None:
        index = tick_index(time, self.tick_width)
        ticks = self._by_tick
        if index >= len(ticks):
            # frombytes appends zero-filled *elements* (extend would treat
            # the bytes as an iterable and append one element per byte).
            ticks.frombytes(bytes(ticks.itemsize * (index + 1 - len(ticks))))
        ticks[index] += count

    def record_send(self, kind: str, time: float, wireless_group: bool = False) -> None:
        if wireless_group:
            self.wireless_transmissions += 1
            return
        self.messages_sent += 1
        self._bump_tick(time, 1)
        kinds = self.messages_by_kind
        kinds[kind] = kinds.get(kind, 0) + 1

    def record_send_batch(self, kind: str, time: float, count: int) -> None:
        if count <= 0:
            return
        self.messages_sent += count
        self._bump_tick(time, count)
        kinds = self.messages_by_kind
        kinds[kind] = kinds.get(kind, 0) + count

    def record_wireless_group(self, count: int) -> None:
        self.wireless_transmissions += count

    def record_processed(self, host: int, chain_depth: int) -> None:
        processed = self._processed
        if host >= len(processed):  # a host joined after construction
            processed.frombytes(
                bytes(processed.itemsize * (host + 1 - len(processed))))
        count = processed[host] + 1
        processed[host] = count
        if count > self._max_processed:
            self._max_processed = count
        if chain_depth > self.max_chain_depth:
            self.max_chain_depth = chain_depth

    def record_dropped(self) -> None:
        self.dropped_messages += 1

    def record_processed_bulk(self, host_counts) -> None:
        """Fold ``(host, count)`` processed increments, tracking the max."""
        processed = self._processed
        max_processed = self._max_processed
        for host, count in host_counts:
            if host >= len(processed):  # a host joined after construction
                processed.frombytes(
                    bytes(processed.itemsize * (host + 1 - len(processed))))
            total = processed[host] + count
            processed[host] = total
            if total > max_processed:
                max_processed = total
        self._max_processed = max_processed

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------
    @property
    def computation_cost(self) -> int:
        return self._max_processed

    def computation_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = defaultdict(int)
        for count in self._processed:
            if count:
                histogram[count] += 1
        return dict(histogram)

    def messages_per_instant(self) -> Dict[float, int]:
        width = self.tick_width
        return {index * width: count
                for index, count in enumerate(self._by_tick) if count}

    def footprint_bytes(self) -> int:
        total = (sys.getsizeof(self._processed)
                 + sys.getsizeof(self._by_tick)
                 + sys.getsizeof(self.messages_by_kind))
        for key, value in self.messages_by_kind.items():
            total += sys.getsizeof(key) + sys.getsizeof(value)
        return total


#: Stats-sink modes understood by :func:`make_stats_sink` and the CLI.
STATS_MODES = ("full", "streaming")


def validate_stats_mode(mode: str) -> str:
    """Check that ``mode`` names a known sink; returns it for chaining."""
    if mode not in STATS_MODES:
        raise ValueError(
            f"unknown stats mode {mode!r}; known: {', '.join(STATS_MODES)}"
        )
    return mode

#: Process-wide default mode used when a run does not pick one explicitly.
#: ``repro run --stats streaming`` flips this so every simulation of a
#: figure matrix uses the bounded-memory sink without threading a
#: parameter through each driver.  In-process only: worker processes
#: spawned by the orchestration pool start back at ``"full"``.
_default_mode = "full"


def default_stats_mode() -> str:
    return _default_mode


def set_default_stats_mode(mode: str) -> str:
    """Set the process-wide default mode; returns the previous one."""
    global _default_mode
    validate_stats_mode(mode)
    previous = _default_mode
    _default_mode = mode
    return previous


def make_stats_sink(
    mode: "str | StatsSink | None" = None,
    num_hosts: int = 0,
    tick_width: float = 1.0,
) -> StatsSink:
    """Build the stats sink for one run.

    Args:
        mode: ``"full"``, ``"streaming"``, a ready-made sink (passed
            through unchanged), or ``None`` for the process-wide default
            (see :func:`set_default_stats_mode`).
        num_hosts: host count used to pre-size the streaming sink.
        tick_width: per-instant histogram bucket width.
    """
    if isinstance(mode, StatsSink):
        return mode
    if mode is None:
        mode = _default_mode
    validate_stats_mode(mode)
    if mode == "full":
        return CostAccounting(tick_width=tick_width)
    return StreamingCostAccounting(num_hosts=num_hosts,
                                   tick_width=tick_width)
