"""Event queue for the discrete-event simulator.

Events are ordered by (time, sequence number) so that ties are broken
deterministically in insertion order, which keeps simulations reproducible
for a fixed random seed.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.simulation.messages import Message


class EventKind(enum.Enum):
    """The kinds of events the simulator understands."""

    DELIVER = "deliver"  # deliver a message to its destination host
    TIMER = "timer"      # a host timer expires
    FAIL = "fail"        # a host leaves the network
    JOIN = "join"        # a host joins the network
    QUERY_START = "query_start"  # the querying host initiates the protocol
    CUSTOM = "custom"    # extension hook for experiment drivers


#: Tie-breaking priority for events scheduled at the same instant.  Message
#: deliveries are processed before timers so that a report arriving exactly
#: at a host's deadline is still folded in (the deadline-based convergecast
#: of the tree protocols relies on this); failures are applied last so a
#: host processes everything addressed to it "up to" its failure instant.
_KIND_PRIORITY = {
    EventKind.QUERY_START: 0,
    EventKind.JOIN: 1,
    EventKind.DELIVER: 2,
    EventKind.CUSTOM: 3,
    EventKind.TIMER: 4,
    EventKind.FAIL: 5,
}


@dataclass(order=True)
class Event:
    """A scheduled simulation event.

    The dataclass ordering is (time, priority, seq); the payload fields are
    excluded from comparison.
    """

    time: float
    priority: int
    seq: int
    kind: EventKind = field(compare=False)
    host: Optional[int] = field(compare=False, default=None)
    message: Optional[Message] = field(compare=False, default=None)
    timer_name: Optional[str] = field(compare=False, default=None)
    data: Any = field(compare=False, default=None)


class EventQueue:
    """A priority queue of :class:`Event` objects.

    Supports lazy cancellation: cancelled events stay in the heap but are
    skipped when popped.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def push(
        self,
        time: float,
        kind: EventKind,
        host: Optional[int] = None,
        message: Optional[Message] = None,
        timer_name: Optional[str] = None,
        data: Any = None,
    ) -> Event:
        """Schedule a new event and return it (its ``seq`` can cancel it)."""
        if time < 0:
            raise ValueError("events cannot be scheduled at negative times")
        event = Event(
            time=time,
            priority=_KIND_PRIORITY[kind],
            seq=next(self._counter),
            kind=kind,
            host=host,
            message=message,
            timer_name=timer_name,
            data=data,
        )
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        self._cancelled.add(event.seq)

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            IndexError: if the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.seq in self._cancelled:
                self._cancelled.discard(event.seq)
                continue
            return event
        raise IndexError("pop from empty event queue")

    def peek_time(self) -> Optional[float]:
        """Return the time of the next event without removing it."""
        while self._heap:
            event = self._heap[0]
            if event.seq in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(event.seq)
                continue
            return event.time
        return None

    def drain(self) -> Iterator[Event]:
        """Yield remaining events in order (mainly for tests)."""
        while self:
            yield self.pop()
