"""Event queue for the discrete-event simulator.

Events are ordered by ``(time, kind priority, sequence number)`` so that
ties are broken deterministically in insertion order, which keeps
simulations reproducible for a fixed random seed.

The queue is implemented as a *calendar queue* over batched delivery
slots rather than a single binary heap of events:

* each distinct timestamp owns one *slot* -- six FIFO lists, one per
  :data:`_KIND_PRIORITY` level -- and pushing an event is a dict lookup
  plus a list append (no per-event heap sift, no event comparisons);
* slots are grouped into calendar *days* of configurable ``width``
  (the engine uses the delay bound ``delta``): a small heap of day
  indices orders the days, and a per-day heap of bare floats orders the
  timestamps within one day.  Under the fixed-delay model nearly all
  pending events share a handful of distinct timestamps (``t + delta``
  for messages, a few timer deadlines, the churn schedule), so each day
  holds one or two slots and the structure degenerates to the original
  batched ring.  Under variable-delay models almost every delivery gets
  a unique timestamp; the calendar keeps each heap bounded by one
  bound-window of traffic instead of the whole simulation's future;
* within a slot, events drain in priority order and, within a priority, in
  insertion order -- exactly the ``(time, priority, seq)`` total order the
  original heap implementation produced, including events appended to the
  slot *while it is draining* (a zero-delay timer scheduled at the current
  instant still runs after the instant's remaining deliveries, and a
  delivery appended mid-drain still precedes the instant's timers).

Because day indices are a monotone function of time and timestamps heap
within a day, the drain order is identical to a single global heap of
timestamps for every ``width`` -- the calendar only changes how much
heap work each push and pop performs.

The public API (``push`` / ``pop`` / ``peek_time`` / ``cancel`` /
``drain``) is unchanged from the heap implementation.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.simulation.messages import Message


class EventKind(enum.Enum):
    """The kinds of events the simulator understands."""

    DELIVER = "deliver"  # deliver a message to its destination host
    TIMER = "timer"      # a host timer expires
    FAIL = "fail"        # a host leaves the network
    JOIN = "join"        # a host joins the network
    QUERY_START = "query_start"  # the querying host initiates the protocol
    CUSTOM = "custom"    # extension hook for experiment drivers


#: Tie-breaking priority for events scheduled at the same instant.  Message
#: deliveries are processed before timers so that a report arriving exactly
#: at a host's deadline is still folded in (the deadline-based convergecast
#: of the tree protocols relies on this); failures are applied last so a
#: host processes everything addressed to it "up to" its failure instant.
_KIND_PRIORITY = {
    EventKind.QUERY_START: 0,
    EventKind.JOIN: 1,
    EventKind.DELIVER: 2,
    EventKind.CUSTOM: 3,
    EventKind.TIMER: 4,
    EventKind.FAIL: 5,
}

_NUM_PRIORITIES = 6
_DELIVER_PRIORITY = _KIND_PRIORITY[EventKind.DELIVER]
_TIMER_PRIORITY = _KIND_PRIORITY[EventKind.TIMER]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled simulation event.

    The dataclass ordering is (time, priority, seq); the payload fields are
    excluded from comparison.  ``queued``/``cancelled`` are queue-internal
    lifecycle markers: ``queued`` holds the owning :class:`EventQueue`
    exactly while the event sits unconsumed in it (``None`` otherwise), and
    ``cancelled`` marks a lazy cancellation the drain has not yet
    discarded.  Keeping them on the event (rather than in a queue-side seq
    set) makes cancelling a consumed, foreign, or never-scheduled event a
    natural no-op.
    """

    time: float
    priority: int
    seq: int
    kind: EventKind = field(compare=False)
    host: Optional[int] = field(compare=False, default=None)
    message: Optional[Message] = field(compare=False, default=None)
    timer_name: Optional[str] = field(compare=False, default=None)
    data: Any = field(compare=False, default=None)
    queued: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)


class _DeliverBatch:
    """One multicast's deliveries, expanded lazily at pop time.

    A multicast to ``d`` neighbors used to materialise ``d`` Message
    objects up front; at 100k+ hosts one flood wave keeps hundreds of
    thousands of them alive in the ring at once, dominating peak RSS.
    The batch stores the shared fields once (the destination tuple is the
    network's cached packed view, so it is not even copied) and the pop
    path mints each per-destination :class:`Message` only at its delivery
    instant, so at most one exists at a time.  FIFO position in the slot
    bucket encodes the exact (time, priority, seq) order the materialised
    list produced, so drain order -- and therefore every golden snapshot
    -- is unchanged.  Batches cannot be cancelled (deliveries never are).
    """

    __slots__ = ("sender", "dests", "kind", "payload", "sent_at",
                 "chain_depth", "wireless", "query_id", "vtime", "pos")

    def __init__(self, sender, dests, kind, payload, sent_at, chain_depth,
                 wireless, query_id, vtime):
        self.sender = sender
        self.dests = dests
        self.kind = kind
        self.payload = payload
        self.sent_at = sent_at
        self.chain_depth = chain_depth
        self.wireless = wireless
        self.query_id = query_id
        self.vtime = vtime
        self.pos = 0


class _Slot:
    """All events scheduled at one instant: six priority-ordered FIFOs.

    ``cursors[p]`` is the index of the next undrained event in
    ``buckets[p]``; appends during draining land beyond the cursor and are
    therefore picked up before the slot is released.  ``min_pri`` is a
    lower bound on the smallest priority level with pending events, so the
    drain scan can skip the (usually empty) levels below it; pushes lower
    it when they schedule below the current bound.
    """

    __slots__ = ("buckets", "cursors", "min_pri")

    def __init__(self) -> None:
        self.buckets: List[List[Event]] = [[] for _ in range(_NUM_PRIORITIES)]
        self.cursors: List[int] = [0] * _NUM_PRIORITIES
        self.min_pri = _NUM_PRIORITIES


class EventQueue:
    """A calendar queue of :class:`Event` objects ordered by (time, prio, seq).

    Supports lazy cancellation: cancelled events stay in their slot but are
    skipped when popped.  Cancelling an event that was already consumed
    (or that was never scheduled on this queue) is a no-op, so ``len`` and
    ``occupancy()`` stay exact under any interleaving of push/pop/cancel.

    Time-validity contract: **every** scheduling entry point (``push``,
    ``push_deliver``, ``push_timer``, ``extend_delivers``,
    ``push_multicast``) rejects negative times with :class:`ValueError`.
    The check is performed inline on all five paths -- it is one float
    comparison per call, which is not measurable against the dict lookup
    and list append each push already performs, and it keeps the contract
    in one place instead of hoisting it to every caller.

    Args:
        width: calendar day width.  Purely a performance knob (drain order
            is width-independent); the engine passes the delay bound
            ``delta`` so one day covers one bound-window of traffic.
    """

    def __init__(self, width: float = 1.0) -> None:
        if width <= 0:
            raise ValueError("calendar day width must be positive")
        self._width = float(width)
        self._slots: Dict[float, _Slot] = {}
        self._days: Dict[int, List[float]] = {}  # day -> heap of timestamps
        self._day_heap: List[int] = []           # heap of day indices
        # Cache of the minimal non-empty day (index, timestamp heap): the
        # drain revisits it once per event, so resolving it through the
        # day heap every time would cost a peek plus a dict lookup on the
        # hottest path.  Invalidated when a day earlier than the cached
        # one appears or the cached day drains.
        self._front_day = -1
        self._front_times: Optional[List[float]] = None
        self._counter = itertools.count()
        self._num_cancelled = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size - self._num_cancelled

    def __bool__(self) -> bool:
        return len(self) > 0

    def _slot_at(self, time: float) -> _Slot:
        """The slot for ``time``, creating (and calendar-filing) it once."""
        slot = self._slots.get(time)
        if slot is None:
            slot = _Slot()
            self._slots[time] = slot
            day = int(time / self._width)
            bucket = self._days.get(day)
            if bucket is None:
                self._days[day] = bucket = []
                heapq.heappush(self._day_heap, day)
                if day < self._front_day:
                    self._front_times = None  # new earlier day: re-resolve
            heapq.heappush(bucket, time)
        return slot

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(
        self,
        time: float,
        kind: EventKind,
        host: Optional[int] = None,
        message: Optional[Message] = None,
        timer_name: Optional[str] = None,
        data: Any = None,
    ) -> Event:
        """Schedule a new event and return it (useful for ``cancel``)."""
        if time < 0:
            raise ValueError("events cannot be scheduled at negative times")
        priority = _KIND_PRIORITY[kind]
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            kind=kind,
            host=host,
            message=message,
            timer_name=timer_name,
            data=data,
            queued=self,
        )
        slot = self._slot_at(time)
        slot.buckets[priority].append(event)
        if priority < slot.min_pri:
            slot.min_pri = priority
        self._size += 1
        return event

    def push_deliver(self, time: float, message: Message) -> None:
        """Fast-path scheduling of a message delivery (the hot event kind).

        The bare :class:`Message` is stored in the slot's deliver bucket --
        FIFO position alone encodes its place in the (time, priority, seq)
        total order, so no :class:`Event` wrapper (and no sequence number)
        is allocated.  Ordering semantics are identical to
        ``push(time, EventKind.DELIVER, message=message)``; the only
        difference is that fast-path deliveries cannot be cancelled (the
        simulator never cancels deliveries).
        """
        if time < 0:
            raise ValueError("events cannot be scheduled at negative times")
        slot = self._slot_at(time)
        slot.buckets[_DELIVER_PRIORITY].append(message)
        if _DELIVER_PRIORITY < slot.min_pri:
            slot.min_pri = _DELIVER_PRIORITY
        self._size += 1

    def push_timer(self, time: float, host: int, name: str, info: Any) -> Event:
        """Fast-path scheduling of a host timer.

        Equivalent to ``push(time, EventKind.TIMER, host=host,
        timer_name=name, data=info)`` minus the keyword plumbing; the
        returned event carries a sequence number and can be cancelled like
        any other event.
        """
        if time < 0:
            raise ValueError("events cannot be scheduled at negative times")
        event = Event(time, _TIMER_PRIORITY, next(self._counter),
                      EventKind.TIMER, host, None, name, info, self)
        slot = self._slot_at(time)
        slot.buckets[_TIMER_PRIORITY].append(event)
        if _TIMER_PRIORITY < slot.min_pri:
            slot.min_pri = _TIMER_PRIORITY
        self._size += 1
        return event

    def extend_delivers(self, time: float, messages: List[Message]) -> None:
        """Bulk :meth:`push_deliver`: append one multicast's messages.

        All messages of a multicast share the delivery instant, so the
        whole batch lands in one slot bucket with a single call.
        """
        if time < 0:
            raise ValueError("events cannot be scheduled at negative times")
        slot = self._slot_at(time)
        slot.buckets[_DELIVER_PRIORITY].extend(messages)
        if _DELIVER_PRIORITY < slot.min_pri:
            slot.min_pri = _DELIVER_PRIORITY
        self._size += len(messages)

    def push_multicast(
        self,
        time: float,
        sender: int,
        dests: Sequence[int],
        kind: str,
        payload: Any,
        sent_at: float,
        chain_depth: int,
        wireless: bool = False,
        query_id: int = 0,
        vtime: float = 0.0,
    ) -> None:
        """Schedule one multicast's deliveries without materialising them.

        Drain-order-equivalent to building the per-destination
        :class:`Message` list and calling :meth:`extend_delivers`, but the
        ring holds one compact :class:`_DeliverBatch` record instead of
        ``len(dests)`` message objects; :meth:`pop_due` mints each message
        at its delivery instant.  This is the fixed-delay multicast fast
        path of both the solo and the multi-tenant engine.
        """
        if time < 0:
            raise ValueError("events cannot be scheduled at negative times")
        if not dests:
            return  # same no-op contract as extend_delivers([])
        slot = self._slot_at(time)
        slot.buckets[_DELIVER_PRIORITY].append(
            _DeliverBatch(sender, dests, kind, payload, sent_at,
                          chain_depth, wireless, query_id, vtime))
        if _DELIVER_PRIORITY < slot.min_pri:
            slot.min_pri = _DELIVER_PRIORITY
        self._size += len(dests)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal).

        Cancelling an event that was already consumed (popped or drained),
        already cancelled, or never scheduled here is a **no-op** -- the
        queue's ``len``/``occupancy`` bookkeeping only counts events that
        are actually still pending, so cancellation can never drive
        ``len(queue)`` negative or make it undercount.  An event pending
        on a *different* queue is likewise left untouched.
        """
        if (event.__class__ is Event and event.queued is self
                and not event.cancelled):
            event.cancelled = True
            self._num_cancelled += 1

    # ------------------------------------------------------------------
    # Introspection (pull-based; never touched by the drain hot path)
    # ------------------------------------------------------------------
    def occupancy(self) -> Dict[str, Any]:
        """Queue depth and calendar occupancy, computed on demand.

        Walks the day index (one entry per non-empty day) plus, for the
        ``horizon``/``current_epoch`` fields, the slot table (one entry
        per distinct timestamp, scanning each slot only until the first
        live entry) -- still far from touching every event, so a metrics
        snapshot stays safe to take mid-run at any scale.

        ``horizon`` is the latest timestamp that still has a live
        (non-cancelled, unconsumed) entry, ``current_epoch`` the calendar
        day index of the earliest such timestamp -- exactly the window the
        sharded lane's barrier scheduler reasons about.  Both are ``None``
        when no live entries remain; cancelled events and already-drained
        slot positions never count.
        """
        day_sizes = [len(bucket) for bucket in self._days.values()]
        total = sum(day_sizes)
        horizon: Optional[float] = None
        earliest: Optional[float] = None
        for time, slot in self._slots.items():
            if not self._slot_has_live(slot):
                continue
            if horizon is None or time > horizon:
                horizon = time
            if earliest is None or time < earliest:
                earliest = time
        return {
            "pending": len(self),
            "cancelled": self._num_cancelled,
            "slots": len(self._slots),
            "days": len(self._days),
            "max_day_occupancy": max(day_sizes, default=0),
            "mean_day_occupancy": (round(total / len(day_sizes), 2)
                                   if day_sizes else 0),
            "horizon": horizon,
            "current_epoch": (None if earliest is None
                              else int(earliest / self._width)),
        }

    @staticmethod
    def _slot_has_live(slot: _Slot) -> bool:
        """Whether any live entry remains in ``slot`` (non-mutating)."""
        buckets = slot.buckets
        cursors = slot.cursors
        for priority in range(_NUM_PRIORITIES):
            bucket = buckets[priority]
            for index in range(cursors[priority], len(bucket)):
                entry = bucket[index]
                if entry is None:
                    continue
                if entry.__class__ is Event and entry.cancelled:
                    continue
                return True
        return False

    def iter_pending(self) -> Iterator[Any]:
        """Yield ``(entry, weight)`` for every live queued entry.

        Non-destructive and unordered (slot-table order).  ``entry`` is
        a bare :class:`Message`, a :class:`_DeliverBatch` (``weight`` =
        destinations not yet delivered), or an :class:`Event`; cancelled
        events and already-popped positions are skipped.  Intended for
        metrics collectors, not for draining.
        """
        for slot in self._slots.values():
            buckets = slot.buckets
            cursors = slot.cursors
            for priority in range(_NUM_PRIORITIES):
                bucket = buckets[priority]
                for index in range(cursors[priority], len(bucket)):
                    entry = bucket[index]
                    if entry is None:
                        continue
                    if entry.__class__ is Event and entry.cancelled:
                        continue
                    if entry.__class__ is _DeliverBatch:
                        yield entry, len(entry.dests) - entry.pos
                    else:
                        yield entry, 1

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def _locate_front(self):
        """Advance past cancelled events and locate the earliest live one.

        Returns ``(time, slot, priority, index, entry)`` without consuming
        the entry, or ``None`` when the queue is empty.  Cancelled events
        encountered on the way are discarded, exhausted slots are released
        (their timestamp popped from their day's heap), and exhausted days
        are retired from the calendar, so the scan never revisits them.
        Both :meth:`pop_due` and :meth:`peek_time` share this scan, keeping
        the cursor/``min_pri``/``_size`` bookkeeping in exactly one place.
        """
        day_heap = self._day_heap
        days = self._days
        while True:
            times = self._front_times
            if not times:  # cached front day drained or invalidated
                while day_heap:
                    day = day_heap[0]
                    times = days.get(day)
                    if times:
                        self._front_day = day
                        self._front_times = times
                        break
                    # Day exhausted (or retired): leave the calendar.
                    heapq.heappop(day_heap)
                    days.pop(day, None)
                else:
                    self._front_times = None
                    return None
            time = times[0]
            slot = self._slots.get(time)
            if slot is None:  # released slot whose timestamp lingered
                heapq.heappop(times)
                continue
            buckets = slot.buckets
            cursors = slot.cursors
            priority = slot.min_pri
            while priority < _NUM_PRIORITIES:
                bucket = buckets[priority]
                index = cursors[priority]
                length = len(bucket)
                while index < length:
                    entry = bucket[index]
                    # Only Event wrappers can be cancelled (bare messages
                    # and multicast batches never are).
                    if entry.__class__ is Event and entry.cancelled:
                        entry.queued = None
                        self._num_cancelled -= 1
                        self._size -= 1
                        bucket[index] = None  # type: ignore[call-overload]
                        index += 1
                        continue
                    cursors[priority] = index
                    return time, slot, priority, index, entry
                cursors[priority] = index
                # Level drained; remember so future scans skip it (a later
                # push at a lower level lowers ``min_pri`` again).
                priority += 1
                slot.min_pri = priority
            # Every bucket drained: release the slot and its timestamp.
            del self._slots[time]
            heapq.heappop(times)
        return None

    def pop_due(self, horizon: Optional[float]):
        """Consume and return ``(time, entry)`` for the earliest live event.

        This is the kernel-facing drain API: it fuses the ``peek_time`` +
        ``pop`` pair into one traversal and skips the delivery ``Event``
        wrapper.  ``entry`` is a bare :class:`Message` for fast-path
        deliveries and an :class:`Event` for everything else.  When
        ``horizon`` is given, an event due after it is *not* consumed and
        ``None`` is returned; ``None`` consumes unconditionally.
        """
        front = self._locate_front()
        if front is None:
            return None
        time, slot, priority, index, entry = front
        if horizon is not None and time > horizon:
            return None
        self._size -= 1
        if entry.__class__ is _DeliverBatch:
            # Mint this pop's Message from the batch record; the batch
            # stays at the bucket cursor until its last destination pops,
            # preserving the contiguous FIFO order of the materialised
            # equivalent.
            pos = entry.pos
            message = Message(entry.sender, entry.dests[pos], entry.kind,
                              entry.payload, entry.sent_at,
                              entry.chain_depth, entry.wireless,
                              entry.query_id, entry.vtime)
            pos += 1
            if pos == len(entry.dests):
                slot.cursors[priority] = index + 1
                slot.buckets[priority][index] = None  # type: ignore[call-overload]
            else:
                entry.pos = pos
            return time, message
        slot.cursors[priority] = index + 1
        slot.buckets[priority][index] = None  # type: ignore[call-overload]
        if entry.__class__ is Event:
            entry.queued = None
        return time, entry

    def drain_until(self, horizon: Optional[float]) -> List[tuple]:
        """Pop every event due at or before ``horizon``, in drain order.

        This is the sharded lane's epoch entry point: the whole
        ``(time, priority, seq)``-ordered prefix of the queue is extracted
        in one call so a coordinator can re-plan it (and, via
        :meth:`ingest_events`, put it back untouched on fallback).  Each
        element is the ``(time, entry)`` pair :meth:`pop_due` would have
        returned -- a bare :class:`Message` for fast-path deliveries
        (multicast batches are expanded) and an :class:`Event` for
        everything else.  ``None`` drains unconditionally.  Events due
        after ``horizon`` stay queued.
        """
        drained: List[tuple] = []
        append = drained.append
        pop_due = self.pop_due
        while True:
            front = pop_due(horizon)
            if front is None:
                return drained
            append(front)

    def ingest_events(self, batch: Sequence[tuple]) -> None:
        """Re-schedule a batch of ``(time, entry)`` pairs in batch order.

        The inverse of :meth:`drain_until`: pushing the drained list back
        restores the exact drain order (same times, same relative order
        within an instant -- fresh sequence numbers preserve the original
        FIFO ranks because the batch is already (time, priority, seq)
        sorted).  Entries may be bare :class:`Message` objects or
        :class:`Event` wrappers; cancel handles on the originals are
        stale after a round trip (the originals were consumed), which
        matches the queue's cancel-after-consume no-op contract.
        """
        push = self.push
        push_deliver = self.push_deliver
        for time, entry in batch:
            if entry.__class__ is Event:
                push(time, entry.kind, host=entry.host,
                     message=entry.message, timer_name=entry.timer_name,
                     data=entry.data)
            else:
                push_deliver(time, entry)

    def pop_tick(self, horizon: Optional[float] = None):
        """Consume *every* event of the earliest instant in one call.

        This is the vector lane's batch drain: instead of one
        :meth:`pop_due` per message, the whole calendar slot is detached
        at once.  Returns ``(time, buckets)`` where ``buckets`` is a list
        of ``_NUM_PRIORITIES`` lists in priority order; each entry is a
        bare :class:`Message`, an *unexpanded* :class:`_DeliverBatch`
        (``entry.dests[entry.pos:]`` are its undelivered destinations, in
        FIFO/ascending order), or an :class:`Event`.  Cancelled events are
        discarded, consumed events are unqueued, and the slot is released,
        exactly as if the instant had been drained with ``pop_due`` --
        the per-entry order within each bucket is the (time, priority,
        seq) drain order.  When ``horizon`` is given, an instant due after
        it is left untouched and ``None`` is returned; an empty queue also
        returns ``None``.

        Unlike ``pop_due``, events appended to the instant *while the
        caller processes the returned buckets* land in a fresh slot and
        surface on the next call, so callers that schedule same-instant
        work (zero-delay timers) must drain the instant repeatedly or
        manage that work themselves -- the vector lane does the latter.
        """
        front = self._locate_front()
        if front is None:
            return None
        time = front[0]
        if horizon is not None and time > horizon:
            return None
        slot = self._slots[time]
        removed = 0
        buckets_out: List[List[Any]] = []
        for priority in range(_NUM_PRIORITIES):
            bucket = slot.buckets[priority]
            start = slot.cursors[priority]
            live: List[Any] = []
            for index in range(start, len(bucket)):
                entry = bucket[index]
                if entry is None:
                    continue
                cls = entry.__class__
                if cls is Event:
                    if entry.cancelled:
                        entry.queued = None
                        self._num_cancelled -= 1
                        removed += 1
                        continue
                    entry.queued = None
                    removed += 1
                elif cls is _DeliverBatch:
                    removed += len(entry.dests) - entry.pos
                else:
                    removed += 1
                live.append(entry)
            buckets_out.append(live)
        self._size -= removed
        # Release the slot and its timestamp ( _locate_front resolved the
        # front day, so the cached heap's head is exactly ``time``).
        del self._slots[time]
        heapq.heappop(self._front_times)
        return time, buckets_out

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            IndexError: if the queue is empty.
        """
        front = self.pop_due(None)
        if front is None:
            raise IndexError("pop from empty event queue")
        time, entry = front
        if entry.__class__ is Message:
            # Wrap fast-path deliveries for the generic Event API.
            return Event(
                time=time,
                priority=_DELIVER_PRIORITY,
                seq=next(self._counter),
                kind=EventKind.DELIVER,
                message=entry,
            )
        return entry

    def peek_time(self) -> Optional[float]:
        """Return the time of the next event without removing it."""
        front = self._locate_front()
        return None if front is None else front[0]

    def drain(self) -> Iterator[Event]:
        """Yield remaining events in order (mainly for tests)."""
        while self:
            yield self.pop()
