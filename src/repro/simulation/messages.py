"""Message model.

All protocols exchange small fixed-size messages (the paper's cost model is
message counts, not bytes).  A :class:`Message` records sender, destination,
payload, the time it was sent and the causal depth used to compute the
paper's *time cost* (length of the longest chain of messages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(slots=True)
class Message:
    """A single protocol message in flight.

    Treated as immutable by convention (the frozen-dataclass enforcement
    was dropped because its per-field ``object.__setattr__`` cost showed up
    on the kernel's per-message hot path); simulation code never mutates a
    message after construction.  A consequence of losing ``frozen=True``
    is that messages are no longer hashable -- use ``id(message)`` or a
    derived key for dedup structures.

    Attributes:
        sender: host id of the sending host.
        dest: host id of the destination host (a neighbor of the sender).
        kind: protocol-defined message kind (e.g. ``"broadcast"``).
        payload: protocol-defined immutable mapping of message fields.
        sent_at: simulation time at which the message was sent.
        chain_depth: 1 + the chain depth of the message whose receipt caused
            this one to be sent; used for the time-cost metric.
        wireless: True when the message was sent over a broadcast medium to
            all neighbors at once (counted once for communication cost).
    """

    sender: int
    dest: int
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    sent_at: float = 0.0
    chain_depth: int = 1
    wireless: bool = False

    def with_dest(self, dest: int) -> "Message":
        """Return a copy of this message addressed to a different host."""
        return Message(
            sender=self.sender,
            dest=dest,
            kind=self.kind,
            payload=self.payload,
            sent_at=self.sent_at,
            chain_depth=self.chain_depth,
            wireless=self.wireless,
        )

    def describe(self) -> str:
        """Human-readable one-line description, useful in logs and tests."""
        return (
            f"[{self.kind}] {self.sender} -> {self.dest} "
            f"at t={self.sent_at:g} depth={self.chain_depth}"
        )
