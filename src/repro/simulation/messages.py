"""Message model.

All protocols exchange small fixed-size messages (the paper's cost model is
message counts, not bytes).  A :class:`Message` records sender, destination,
payload, the time it was sent and the causal depth used to compute the
paper's *time cost* (length of the longest chain of messages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(slots=True)
class Message:
    """A single protocol message in flight.

    Treated as immutable by convention (the frozen-dataclass enforcement
    was dropped because its per-field ``object.__setattr__`` cost showed up
    on the kernel's per-message hot path); simulation code never mutates a
    message after construction.  A consequence of losing ``frozen=True``
    is that messages are no longer hashable -- use ``id(message)`` or a
    derived key for dedup structures.  The convention extends to payloads:
    a multicast shares ONE payload snapshot between all of its deliveries,
    so a receiver mutating a payload would corrupt its siblings'
    still-undelivered copies (``tests/simulation/test_messages.py`` pins
    this with read-only payload proxies across every protocol).

    Attributes:
        sender: host id of the sending host.
        dest: host id of the destination host (a neighbor of the sender).
        kind: protocol-defined message kind (e.g. ``"broadcast"``).
        payload: protocol-defined immutable mapping of message fields.
        sent_at: simulation time at which the message was sent.
        chain_depth: 1 + the chain depth of the message whose receipt caused
            this one to be sent; used for the time-cost metric.
        wireless: True when the message was sent over a broadcast medium to
            all neighbors at once (counted once for communication cost).
        query_id: identifier of the query session this message belongs to.
            Single-query simulations leave it at 0; the multi-tenant
            :mod:`repro.service` layer stamps every message with its
            session id so one shared event loop can demultiplex traffic
            from many concurrent queries back to the right per-query
            protocol instances.
        vtime: the *query-local* (virtual) delivery time, used only by
            the service demux.  A session launched at engine time ``t0``
            runs its protocol on a clock where the query starts at 0;
            carrying the virtual delivery instant explicitly (computed
            with the same arithmetic a solo run uses, rather than
            re-derived as ``engine_time - t0``) keeps per-query event
            timing exact in floating point, which the bit-identical
            solo-equivalence guarantee relies on.  Solo runs leave it 0.
    """

    sender: int
    dest: int
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    sent_at: float = 0.0
    chain_depth: int = 1
    wireless: bool = False
    query_id: int = 0
    vtime: float = 0.0

    def with_dest(self, dest: int) -> "Message":
        """Return a copy of this message addressed to a different host."""
        return Message(
            sender=self.sender,
            dest=dest,
            kind=self.kind,
            payload=self.payload,
            sent_at=self.sent_at,
            chain_depth=self.chain_depth,
            wireless=self.wireless,
            query_id=self.query_id,
            vtime=self.vtime,
        )

    def describe(self) -> str:
        """Human-readable one-line description, useful in logs and tests."""
        return (
            f"[{self.kind}] {self.sender} -> {self.dest} "
            f"at t={self.sent_at:g} depth={self.chain_depth}"
        )
