"""The retained set-based reference network (executable specification).

This is the pre-packed-core :class:`~repro.simulation.network.DynamicNetwork`
implementation, kept verbatim as the behavioural oracle for the CSR core:
per-host mutable ``set`` adjacency, eager edge removal on failure, and an
explicitly materialised pristine copy of the initial topology.  It is *not*
used by the simulation kernel -- it exists so that

* ``tests/simulation/test_network_packed.py`` can replay random
  churn/join/query sequences against both implementations and assert
  every observable (alive-neighbor views, edge predicates, alive
  accounting, event log, BFS/diameter) is identical at every step, and
* ``tests/integration/test_protocol_matrix.py`` can run whole seeded
  protocol executions on this reference substrate and require
  event-for-event equality with the packed core.

Keep its semantics frozen: when the two classes disagree, the packed core
is the one that is wrong (or the divergence is a deliberate, documented
behaviour change that must update both).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.simulation.network import NetworkEvent, NetworkEventKind


class ReferenceNetwork:
    """Set-based dynamic network: the executable spec for the packed core.

    API-compatible with :class:`~repro.simulation.network.DynamicNetwork`
    (the engines only touch the public surface plus the ``_alive``
    sequence, which is a list of bools here and a bytearray there).
    """

    def __init__(
        self,
        adjacency: Sequence[Iterable[int]],
        validate: bool = True,
        copy: bool = True,
    ) -> None:
        if copy:
            self._adjacency: List[Set[int]] = [set(neigh) for neigh in adjacency]
        else:
            self._adjacency = [
                neigh if isinstance(neigh, set) else set(neigh)
                for neigh in adjacency
            ]
        n = len(self._adjacency)
        if validate:
            self._validate(self._adjacency, n)
        # The pristine time-0 adjacency, materialised on the first topology
        # change (before that, the current adjacency *is* the initial one).
        self._pristine: Optional[List[Set[int]]] = None
        self._alive: List[bool] = [True] * n
        self._events: List[NetworkEvent] = []
        self._ever_alive: Set[int] = set(range(n))
        # Per-host caches of the alive-neighbor view; invalidated only for
        # the hosts an individual failure or join touches.
        self._alive_neighbors: List[Optional[FrozenSet[int]]] = [None] * n
        self._alive_sorted: List[Optional[Tuple[int, ...]]] = [None] * n

    @staticmethod
    def _validate(adjacency: List[Set[int]], n: int) -> None:
        for host, neighbors in enumerate(adjacency):
            for other in neighbors:
                if other == host:
                    raise ValueError(f"host {host} has a self-loop")
                if not 0 <= other < n:
                    raise ValueError(
                        f"host {host} lists unknown neighbor {other} (n={n})"
                    )
                if host not in adjacency[other]:
                    raise ValueError(
                        f"asymmetric edge: {host} lists {other} but not vice versa"
                    )

    def _ensure_pristine(self) -> List[Set[int]]:
        """Materialise the initial adjacency before the first mutation."""
        if self._pristine is None:
            self._pristine = [set(neigh) for neigh in self._adjacency]
        return self._pristine

    @property
    def _initial_adjacency(self) -> List[Set[int]]:
        """The time-0 adjacency (kept for compatibility and the oracle)."""
        if self._pristine is None:
            return self._adjacency
        return self._pristine

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._adjacency)

    @property
    def num_hosts(self) -> int:
        """Total number of host slots ever allocated (alive or failed)."""
        return len(self._adjacency)

    @property
    def alive_hosts(self) -> List[int]:
        """Host ids that are currently alive."""
        return [h for h, alive in enumerate(self._alive) if alive]

    @property
    def num_alive(self) -> int:
        return sum(self._alive)

    @property
    def events(self) -> List[NetworkEvent]:
        """The append-only log of topology changes."""
        return list(self._events)

    @property
    def ever_alive(self) -> Set[int]:
        """Hosts that were alive at some instant (the upper bound set H_U)."""
        return set(self._ever_alive)

    def is_alive(self, host: int) -> bool:
        return self._alive[host]

    def neighbors(self, host: int) -> FrozenSet[int]:
        """Current *alive* neighbors of ``host`` (cached; do not mutate)."""
        cached = self._alive_neighbors[host]
        if cached is None:
            alive = self._alive
            cached = frozenset(
                h for h in self._adjacency[host] if alive[h]
            )
            self._alive_neighbors[host] = cached
        return cached

    def alive_neighbors_sorted(self, host: int) -> Tuple[int, ...]:
        """Current alive neighbors of ``host`` in ascending id order (cached)."""
        cached = self._alive_sorted[host]
        if cached is None:
            cached = tuple(sorted(self.neighbors(host)))
            self._alive_sorted[host] = cached
        return cached

    def has_alive_edge(self, sender: int, dest: int) -> bool:
        """Whether ``dest`` is an alive current neighbor of ``sender``."""
        return dest in self._adjacency[sender] and self._alive[dest]

    def all_neighbors(self, host: int) -> Set[int]:
        """Current neighbors of ``host`` regardless of liveness."""
        return set(self._adjacency[host])

    def initial_neighbors(self, host: int) -> Set[int]:
        """Neighbors of ``host`` in the initial topology."""
        return set(self._initial_adjacency[host])

    def has_edge(self, a: int, b: int) -> bool:
        return b in self._adjacency[a]

    def degree(self, host: int) -> int:
        return len(self._adjacency[host])

    def num_edges(self) -> int:
        """Number of undirected edges in the current graph."""
        return sum(len(neigh) for neigh in self._adjacency) // 2

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges (a < b) of the current graph."""
        for a, neighbors in enumerate(self._adjacency):
            for b in neighbors:
                if a < b:
                    yield a, b

    # ------------------------------------------------------------------
    # Dynamism
    # ------------------------------------------------------------------
    def _invalidate(self, host: int) -> None:
        self._alive_neighbors[host] = None
        self._alive_sorted[host] = None

    def fail_host(self, host: int, time: float) -> None:
        """Remove ``host`` from the network at simulation time ``time``."""
        if not self._alive[host]:
            raise ValueError(f"host {host} is already failed")
        self._ensure_pristine()
        self._alive[host] = False
        neighbors = tuple(sorted(self._adjacency[host]))
        for other in self._adjacency[host]:
            self._adjacency[other].discard(host)
            self._invalidate(other)
        self._adjacency[host].clear()
        self._invalidate(host)
        self._events.append(
            NetworkEvent(time=time, kind=NetworkEventKind.FAIL, host=host,
                         neighbors=neighbors)
        )

    def join_host(self, neighbors: Iterable[int], time: float) -> int:
        """Add a new host connected to ``neighbors`` and return its id."""
        new_id = len(self._adjacency)
        neighbor_set = set(neighbors)
        for other in neighbor_set:
            if not 0 <= other < new_id:
                raise ValueError(f"unknown neighbor {other}")
            if not self._alive[other]:
                raise ValueError(f"cannot join at failed host {other}")
        self._ensure_pristine()
        self._adjacency.append(set(neighbor_set))
        self._pristine.append(set())
        self._alive.append(True)
        self._ever_alive.add(new_id)
        self._alive_neighbors.append(None)
        self._alive_sorted.append(None)
        for other in neighbor_set:
            self._adjacency[other].add(new_id)
            self._invalidate(other)
        self._events.append(
            NetworkEvent(time=time, kind=NetworkEventKind.JOIN, host=new_id,
                         neighbors=tuple(sorted(neighbor_set)))
        )
        return new_id

    # ------------------------------------------------------------------
    # Graph algorithms
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int, alive_only: bool = True) -> Dict[int, int]:
        """Hop distances from ``source`` to every reachable host."""
        if alive_only and not self._alive[source]:
            return {}
        distances = {source: 0}
        frontier = deque([source])
        while frontier:
            host = frontier.popleft()
            next_dist = distances[host] + 1
            for other in self._adjacency[host]:
                if alive_only and not self._alive[other]:
                    continue
                if other not in distances:
                    distances[other] = next_dist
                    frontier.append(other)
        return distances

    def reachable_from(self, source: int) -> Set[int]:
        """Alive hosts reachable from ``source`` over alive hosts."""
        return set(self.bfs_distances(source, alive_only=True))

    def diameter_estimate(self, samples: int = 8, seed: int = 0) -> int:
        """Estimate the diameter by double-sweep BFS from a few sources."""
        import random

        alive = self.alive_hosts
        if not alive:
            return 0
        rng = random.Random(seed)
        best = 0
        for _ in range(max(1, samples)):
            start = rng.choice(alive)
            dist = self.bfs_distances(start)
            if not dist:
                continue
            # Tie-break equally-far hosts by smallest id so the sweep source
            # does not depend on set iteration order (matches the packed core).
            far_host, far_dist = max(dist.items(),
                                     key=lambda kv: (kv[1], -kv[0]))
            best = max(best, far_dist)
            dist2 = self.bfs_distances(far_host)
            if dist2:
                best = max(best, max(dist2.values()))
        return best

    def is_connected(self) -> bool:
        """True when every alive host is reachable from every other."""
        alive = self.alive_hosts
        if not alive:
            return True
        return len(self.reachable_from(alive[0])) == len(alive)

    def snapshot_adjacency(self) -> List[Set[int]]:
        """A deep copy of the current adjacency (for oracles and tests)."""
        return [set(neigh) for neigh in self._adjacency]

    def copy(self) -> "ReferenceNetwork":
        """An independent copy of the current network state."""
        clone = ReferenceNetwork.__new__(ReferenceNetwork)
        clone._adjacency = [set(s) for s in self._adjacency]
        clone._pristine = (
            None if self._pristine is None
            else [set(s) for s in self._pristine]
        )
        clone._alive = list(self._alive)
        clone._events = list(self._events)
        clone._ever_alive = set(self._ever_alive)
        clone._alive_neighbors = [None] * len(clone._adjacency)
        clone._alive_sorted = [None] * len(clone._adjacency)
        return clone

    @classmethod
    def from_edges(cls, num_hosts: int, edges: Iterable[Tuple[int, int]]) -> "ReferenceNetwork":
        """Build a network from an edge list."""
        adjacency: List[Set[int]] = [set() for _ in range(num_hosts)]
        for a, b in edges:
            if a == b:
                raise ValueError(f"self-loop on host {a}")
            adjacency[a].add(b)
            adjacency[b].add(a)
        return cls(adjacency, validate=False, copy=False)
