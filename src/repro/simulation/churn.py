"""Churn (dynamism) schedules.

The paper models dynamism by removing ``R`` randomly selected hosts at a
uniform rate over the query-processing interval.  A :class:`ChurnSchedule`
is an explicit list of (time, host) failure pairs plus optional join events,
so experiments are reproducible and the oracle can reason about exactly the
same sequence of events the simulator executed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class JoinSpec:
    """A host join: at ``time`` a new host attaches to ``neighbors``."""

    time: float
    neighbors: Tuple[int, ...]


@dataclass
class ChurnSchedule:
    """An explicit schedule of host failures (and optionally joins).

    Attributes:
        failures: (time, host) pairs; each host appears at most once.
        joins: optional join specifications.
    """

    failures: List[Tuple[float, int]] = field(default_factory=list)
    joins: List[JoinSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen = set()
        for _, host in self.failures:
            if host in seen:
                raise ValueError(f"host {host} scheduled to fail more than once")
            seen.add(host)
        self.failures.sort(key=lambda pair: pair[0])
        self.joins.sort(key=lambda spec: spec.time)

    @property
    def num_failures(self) -> int:
        return len(self.failures)

    @property
    def failed_hosts(self) -> List[int]:
        return [host for _, host in self.failures]

    def failures_before(self, time: float) -> List[int]:
        """Hosts whose failure time is strictly before ``time``."""
        return [host for t, host in self.failures if t < time]

    def restricted_to(self, horizon: float) -> "ChurnSchedule":
        """A copy containing only events at or before ``horizon``."""
        return ChurnSchedule(
            failures=[(t, h) for t, h in self.failures if t <= horizon],
            joins=[j for j in self.joins if j.time <= horizon],
        )

    @staticmethod
    def empty() -> "ChurnSchedule":
        """A schedule with no churn (the failure-free baseline)."""
        return ChurnSchedule()


def uniform_failure_schedule(
    candidates: Sequence[int],
    num_failures: int,
    start: float,
    end: float,
    seed: int = 0,
    protect: Optional[Iterable[int]] = None,
) -> ChurnSchedule:
    """Fail ``num_failures`` random hosts at a uniform rate over [start, end].

    This is the dynamism model of Section 6.2: ``R`` randomly selected hosts
    are removed from ``G`` at a uniform rate during the query interval.

    Args:
        candidates: hosts eligible to fail (usually all hosts).
        num_failures: the paper's parameter ``R``.
        start: first failure instant.
        end: last failure instant.
        seed: RNG seed for reproducibility.
        protect: hosts that must never fail (e.g. the querying host, so the
            query itself survives, as in the paper's experiments).

    Raises:
        ValueError: if more failures are requested than eligible hosts.
    """
    if end < start:
        raise ValueError("end must not precede start")
    protected = set(protect) if protect is not None else set()
    eligible = [h for h in candidates if h not in protected]
    if num_failures > len(eligible):
        raise ValueError(
            f"cannot fail {num_failures} hosts: only {len(eligible)} eligible"
        )
    rng = random.Random(seed)
    victims = rng.sample(eligible, num_failures)
    if num_failures == 0:
        return ChurnSchedule()
    if num_failures == 1:
        times = [start + (end - start) / 2.0]
    else:
        step = (end - start) / (num_failures - 1)
        times = [start + i * step for i in range(num_failures)]
    failures = list(zip(times, victims))
    return ChurnSchedule(failures=failures)


def poisson_lifetime_schedule(
    candidates: Sequence[int],
    mean_lifetime: float,
    horizon: float,
    seed: int = 0,
    protect: Optional[Iterable[int]] = None,
) -> ChurnSchedule:
    """Fail hosts with exponentially distributed lifetimes.

    This models the "median session duration" style of churn observed in
    deployed P2P systems (each host leaves independently with a memoryless
    lifetime).  Hosts whose sampled lifetime exceeds ``horizon`` never fail
    during the run.
    """
    if mean_lifetime <= 0:
        raise ValueError("mean_lifetime must be positive")
    protected = set(protect) if protect is not None else set()
    rng = random.Random(seed)
    failures: List[Tuple[float, int]] = []
    for host in candidates:
        if host in protected:
            continue
        lifetime = rng.expovariate(1.0 / mean_lifetime)
        if lifetime <= horizon:
            failures.append((lifetime, host))
    return ChurnSchedule(failures=failures)
