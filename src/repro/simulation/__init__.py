"""Discrete-event simulation substrate for dynamic networks.

The simulator implements the paper's relaxed asynchronous model: messages
between alive neighbors are delivered reliably within a known maximum delay
``delta``, hosts may fail (churn) at arbitrary instants, and every message
is accounted for so that communication, computation and time costs can be
measured exactly as defined in Section 6.3 of the paper.

Two cross-cutting policies are pluggable:

* the *realised* per-message delay (always at most ``delta``) comes from a
  :class:`~repro.simulation.delay.DelayModel` -- the default
  :class:`~repro.simulation.delay.FixedDelay` reproduces the paper's
  worst case of exactly ``delta`` per hop;
* cost measurement goes through a :class:`~repro.simulation.stats.StatsSink`
  -- the default full :class:`~repro.simulation.stats.CostAccounting`, or
  the bounded-memory
  :class:`~repro.simulation.stats.StreamingCostAccounting` for
  million-host runs.
"""

from repro.simulation.clock import SimulationClock, tick_index, tick_time
from repro.simulation.delay import (
    DelayModel,
    FixedDelay,
    HeavyTailDelay,
    PerEdgeDelay,
    UniformDelay,
    delay_model_from_spec,
)
from repro.simulation.engine import Simulator, SimulationResult
from repro.simulation.events import (
    Event,
    EventKind,
    EventQueue,
)
from repro.simulation.host import HostContext, ProtocolHost
from repro.simulation.messages import Message
from repro.simulation.network import DynamicNetwork, NetworkEvent, NetworkEventKind
from repro.simulation.stats import (
    CostAccounting,
    StatsSink,
    StreamingCostAccounting,
    make_stats_sink,
)
from repro.simulation.churn import ChurnSchedule, uniform_failure_schedule

__all__ = [
    "SimulationClock",
    "tick_index",
    "tick_time",
    "Simulator",
    "SimulationResult",
    "Event",
    "EventKind",
    "EventQueue",
    "HostContext",
    "ProtocolHost",
    "Message",
    "DynamicNetwork",
    "NetworkEvent",
    "NetworkEventKind",
    "CostAccounting",
    "StatsSink",
    "StreamingCostAccounting",
    "make_stats_sink",
    "DelayModel",
    "FixedDelay",
    "UniformDelay",
    "PerEdgeDelay",
    "HeavyTailDelay",
    "delay_model_from_spec",
    "ChurnSchedule",
    "uniform_failure_schedule",
]
