"""Discrete-event simulation substrate for dynamic networks.

The simulator implements the paper's relaxed asynchronous model: messages
between alive neighbors are delivered reliably within a known maximum delay
``delta``, hosts may fail (churn) at arbitrary instants, and every message
is accounted for so that communication, computation and time costs can be
measured exactly as defined in Section 6.3 of the paper.
"""

from repro.simulation.clock import SimulationClock
from repro.simulation.engine import Simulator, SimulationResult
from repro.simulation.events import (
    Event,
    EventKind,
    EventQueue,
)
from repro.simulation.host import HostContext, ProtocolHost
from repro.simulation.messages import Message
from repro.simulation.network import DynamicNetwork, NetworkEvent, NetworkEventKind
from repro.simulation.stats import CostAccounting
from repro.simulation.churn import ChurnSchedule, uniform_failure_schedule

__all__ = [
    "SimulationClock",
    "Simulator",
    "SimulationResult",
    "Event",
    "EventKind",
    "EventQueue",
    "HostContext",
    "ProtocolHost",
    "Message",
    "DynamicNetwork",
    "NetworkEvent",
    "NetworkEventKind",
    "CostAccounting",
    "ChurnSchedule",
    "uniform_failure_schedule",
]
