"""WILDFIRE batch kernel for the sharded lane.

:class:`ShardWildfireAdapter` subclasses the vector lane's
:class:`~repro.protocols.wildfire.WildfireVectorAdapter` and replaces the
two batch entry points with shard-aware twins.  The protocol transitions
are the same inlined transcriptions of ``WildfireHost.on_message`` and
the FLUSH timer (``_activate_host`` -- the one stateful path, including
the RNG draw in ``combiner.initial`` -- is inherited **unmodified**); what
changes is the bookkeeping around them:

* every delivery record arrives with its dense **global rank** for the
  instant (assigned canonically by the epoch exchange), and the rank is
  carried onto any flush-timer registration it causes, so the timer
  bucket's emission order can be reconstructed globally;
* outgoing records are filed into the lane's epoch out-queue tagged with
  a canonical integer key that is a pure function of content-independent
  quantities (activation rank for Broadcast, ``(causing rank, host,
  seq)`` for flush emissions) -- identical keys on every shard count, so
  sorting by key reproduces the spec loop's global FIFO order exactly;
* flush timers are asserted to fire at their registration instant
  (``_next_flush`` can never be in the future under the fixed-delay
  model this lane is gated to), which is what lets the lane keep one
  flat per-instant bucket instead of a timer ring.

Any observation that would break the bit-identity contract (a future
flush, an unranked broadcaster) raises instead of degrading -- fail
loud, never wrong.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.protocols.wildfire import (
    BROADCAST,
    CONVERGECAST,
    FLUSH,
    WildfireVectorAdapter,
)

__all__ = ["ShardWildfireAdapter"]


class ShardWildfireAdapter(WildfireVectorAdapter):
    """Shard-aware batch kernel (see the module docstring)."""

    __slots__ = ()

    def process_instant(self, now: float, entries: Sequence[Any],
                        lane: Any) -> None:
        """Process one instant's ranked delivery records in rank order.

        ``entries`` is the epoch exchange's output: per record one
        ``(rank, sender, dests, kind, agg, dist, chain_depth)`` tuple in
        ascending global-rank order, with ``dests`` already restricted
        to this shard's host range (ascending).  The body is the vector
        adapter's ``process_instant`` with the timer registration
        re-targeted at the lane's flat epoch bucket, carrying the
        causing rank.
        """
        hosts = self.hosts
        alive = lane.alive_bytes
        counts = lane.counts
        deadlines = self.deadlines
        bucket = lane.timer_bucket
        gdl = self.global_deadline
        packed_mode = self.packed_mode
        dropped = 0
        max_depth = lane.max_depth
        # Per-worker tracing: one pointer check per delivery, exactly
        # the spec engine's zero-cost-when-disabled discipline.  Under
        # the fixed-delay gate every delivery was sent one delta ago.
        tracer = lane.tracer
        sent_at = now - lane.delta
        for rank, sender, dests, kind, incoming, dist, depth in entries:
            lane._current_rank = rank
            if kind != CONVERGECAST and kind != BROADCAST:
                # on_message ignores foreign kinds: deliveries count,
                # state never moves.
                delivered = False
                for dest in dests:
                    if alive[dest]:
                        counts[dest] += 1
                        delivered = True
                        if tracer is not None:
                            tracer.deliver(now, sender, dest, kind,
                                           depth, sent_at)
                    else:
                        dropped += 1
                        if tracer is not None:
                            tracer.drop(now, dest)
                if delivered and depth > max_depth:
                    max_depth = depth
                continue
            if packed_mode and incoming is not None:
                inc_packed = (incoming if type(incoming) is int
                              else incoming.packed)
            else:
                inc_packed = None
            delivered = False
            for dest in dests:
                if not alive[dest]:
                    dropped += 1
                    if tracer is not None:
                        tracer.drop(now, dest)
                    continue
                counts[dest] += 1
                delivered = True
                if tracer is not None:
                    # Recorded before the handler body runs, the spec
                    # loop's deliver-then-dispatch order.
                    tracer.deliver(now, sender, dest, kind, depth,
                                   sent_at)
                deadline = deadlines[dest]
                if deadline is None:  # inactive
                    if now >= gdl:
                        continue  # spec path: return untouched
                    self._activate_host(hosts[dest], dest, sender,
                                        incoming, inc_packed, dist,
                                        now, depth, lane)
                    continue
                if now > deadline:
                    continue  # spec path: return untouched
                if incoming is None:
                    continue
                host = hosts[dest]
                # -- inlined WildfireHost.on_message, active host ------
                if packed_mode:
                    packed = host._packed
                    merged = packed | inc_packed
                    if merged == packed:
                        if packed == inc_packed:
                            continue  # pure no-op
                        reply_to = host._reply_to
                        if reply_to is None:
                            host._reply_to = {sender}
                        else:
                            reply_to.add(sender)
                    else:
                        host._packed = merged
                        host._packed_stale = True
                        host.updates_observed += 1
                        host._dirty = True
                        host._skip_neighbor = (sender if merged == inc_packed
                                               else None)
                        if host._reply_to is not None:
                            host._reply_to.discard(sender)
                else:
                    partial = host.partial
                    if host._absorbs(partial, incoming):
                        if host._states_equal(partial, incoming):
                            continue  # pure no-op
                        reply_to = host._reply_to
                        if reply_to is None:
                            host._reply_to = {sender}
                        else:
                            reply_to.add(sender)
                    else:
                        host.partial = new_partial = host._combine(
                            partial, incoming)
                        host.updates_observed += 1
                        host._dirty = True
                        host._skip_neighbor = (
                            sender
                            if host._states_equal(new_partial, incoming)
                            else None)
                        if host._reply_to is not None:
                            host._reply_to.discard(sender)
                # inlined _schedule_flush: under fixed delay every
                # arrival instant is a flush boundary, so the timer
                # always fires *now* -- keep the epoch bucket flat.
                if not host._flush_pending:
                    host._flush_pending = True
                    if host._next_flush > now:
                        raise RuntimeError(
                            "sharded lane: flush scheduled in the future")
                    bucket.append((dest, depth, rank))
            if delivered and depth > max_depth:
                max_depth = depth
        lane.dropped += dropped
        lane.max_depth = max_depth

    def process_timer_bucket(self, now: float, bucket: List[tuple],
                             lane: Any) -> None:
        """Fire one instant's flush timers in canonical bucket order.

        Entries are ``(host_id, chain_depth, causing_rank)`` appended in
        (rank, destination) order -- exactly the spec loop's timer
        registration order restricted to this shard.  The FLUSH handler
        body is the vector adapter's transcription, with the outgoing
        sends filed into the epoch out-queue under phase-1 canonical
        keys ``((rank_bound + rank) * nh1 + host) * nh1 + seq`` instead
        of a local delivery ring: ``rank_bound`` (shared by all shards
        for the instant) places every flush emission after every
        Broadcast of the same instant, and ``(rank, host, seq)`` orders
        the emissions exactly as the spec's single global bucket would.
        """
        hosts = self.hosts
        alive = lane.alive_bytes
        network = lane.network
        has_alive_edge = network.has_alive_edge
        nbr_cache = lane.nbr_cache
        packed_mode = self.packed_mode
        wireless = lane.wireless
        out = lane.out_records
        nh1 = lane._nh1
        rank_bound = lane.rank_bound
        sent = 0
        wireless_extra = 0
        tracer = lane.tracer
        for host_id, depth, rank in bucket:
            if not alive[host_id]:
                continue  # dead hosts' timers expire silently
            if tracer is not None:
                # The spec loop records every fired timer on an alive
                # host before its handler runs.
                tracer.timer(now, host_id, FLUSH)
            # -- inlined WildfireHost.on_timer(FLUSH) ------------------
            host = hosts[host_id]
            host._flush_pending = False
            host._next_flush = now + host.delta
            if not host.active or now > host._deadline:
                host._dirty = False
                host._reply_to = None
                continue
            if host._dirty:
                targets = nbr_cache[host_id]
                if targets is None:
                    nbr_cache[host_id] = targets = \
                        network.alive_neighbors_sorted(host_id)
                skip = host._skip_neighbor
                if skip is not None:
                    targets = tuple(t for t in targets if t != skip)
                if targets:
                    if wireless:
                        # One over-the-air transmission for the batch.
                        sent += 1
                        wireless_extra += len(targets) - 1
                    else:
                        sent += len(targets)
                    if tracer is not None:
                        # submit_multicast's record: dest -1, width as
                        # the count.
                        tracer.send(now, host_id, -1, CONVERGECAST,
                                    len(targets))
                    out.append((
                        ((rank_bound + rank) * nh1 + host_id) * nh1,
                        host_id, targets, CONVERGECAST,
                        host._packed if packed_mode
                        else host._partial_obj,
                        host.distance, depth + 1))
                host._reply_to = None
            elif host._reply_to:
                agg = (host._packed if packed_mode
                       else host._partial_obj)
                distance = host.distance
                base = ((rank_bound + rank) * nh1 + host_id) * nh1
                seq = 0
                for neighbor in sorted(host._reply_to):
                    # The spec's unicast path re-checks edge liveness
                    # and records nothing when it fails.
                    if not has_alive_edge(host_id, neighbor):
                        continue
                    sent += 1
                    if tracer is not None:
                        tracer.send(now, host_id, neighbor, CONVERGECAST)
                    out.append((base + seq, host_id, (neighbor,),
                                CONVERGECAST, agg, distance, depth + 1))
                    seq += 1
                host._reply_to = None
            host._dirty = False
            host._skip_neighbor = None
        if sent:
            lane._send_acc[(now, CONVERGECAST)] += sent
        if wireless_extra:
            lane._wireless_groups += wireless_extra
