"""The epoch-synchronous sharded execution lane (``--lane sharded``).

Partitions the host range across ``K`` worker processes that advance in
lockstep ``delta``-wide epochs and exchange canonically keyed message
batches at each barrier -- bit-identical (value, cost fingerprint,
declaration time) to the single-process engine at any shard count,
including ``K=1``.  See :mod:`.coordinator` for the engagement gate and
protocol, :mod:`.worker` for the per-shard lane, and :mod:`.adapter`
for the WILDFIRE batch kernel.

Like the vector lane, engagement is conservative and observable:
``engagements`` counts actual sharded runs and ``last_fallback_reason``
records why the most recent :func:`maybe_run` declined (both exist so
differential tests can prove the lane ran; the per-run
``SimulationResult.fallback_reason`` field is the non-global way to
read the decision).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["maybe_run", "engagements", "last_fallback_reason"]

#: Number of times the sharded lane actually engaged.
engagements = 0

#: Why the most recent ``maybe_run`` declined to engage (None = engaged).
#: Deprecated alias for ``SimulationResult.fallback_reason``.
last_fallback_reason: Optional[str] = None


def maybe_run(simulator, horizon: float):
    """Run the simulation on the sharded lane, or return ``None`` to
    fall back to the spec loop (consuming nothing)."""
    global engagements, last_fallback_reason
    from repro.simulation.sharded.coordinator import run_sharded

    result, reason = run_sharded(simulator, horizon)
    if result is None:
        last_fallback_reason = reason
        return None
    last_fallback_reason = None
    engagements += 1
    return result
