"""Coordinator for the sharded lane: gate, pre-pass, fork, merge.

The coordinator turns one primed :class:`~repro.simulation.engine.Simulator`
into ``K`` lockstep shard runs and folds their results back into a
single :class:`~repro.simulation.engine.SimulationResult` that is
bit-identical (value, cost fingerprint, declaration time) to the
single-process engine.  The sequence:

1. **Gate** -- reuse the vector lane's engagement checks (fixed delay,
   no tracer, no joins, nothing unexpected queued, adapter-supported
   hosts), require a range-partitionable network, and for ``K > 1`` the
   ``fork`` start method (worker arguments reference the live simulator
   and must not be pickled).
2. **Drain** -- pull the primed calendar queue's prefix
   (:meth:`EventQueue.drain_until`) into an explicit plan: exactly one
   query start at time 0 plus the failure schedule.  Anything else puts
   the events back (:meth:`EventQueue.ingest_events`) and falls back.
3. **Activation pre-pass** -- compute every host's global activation
   rank content-independently on a throwaway network copy.  WILDFIRE
   activations are caused by Broadcast records only (any Convergecast
   reaching an inactive alive host is a dirty multicast whose Broadcast
   sibling reaches that host at the same instant, earlier in FIFO
   order), so a BFS-with-churn replay of the Broadcast wave yields the
   exact activation order without knowing any aggregate content.
4. **RNG pre-draw** -- replay ``combiner.initial`` against the shared
   run RNG in activation order, recording each host's draws; workers
   replay their partition's tape, so RNG consumption is bit-exact and
   the parent's RNG ends in the spec engine's post-run state.
5. **Run** -- ``K=1`` runs the shard lane in-process (an executable
   cross-check of the epoch protocol itself); ``K>1`` forks one worker
   per shard wired with a pipe matrix for the pairwise epoch barriers.
6. **Merge** -- fold the shards' commutative accounting into the stats
   sink (per-(tick, kind) send totals, per-host receive counts, drops,
   depth max), replicate the consumed churn onto the parent's own
   network, and stamp the declaration clock.
"""

from __future__ import annotations

import multiprocessing
from bisect import bisect_right
from collections import defaultdict
from multiprocessing import connection as mp_connection
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.simulation.events import Event, EventKind
from repro.simulation.sharded.adapter import ShardWildfireAdapter
from repro.simulation.sharded.worker import (
    _RecordingRng,
    _ShardLane,
    _worker_main,
    local_exchange,
    make_pipe_exchange,
)

__all__ = ["run_sharded"]


def run_sharded(simulator, horizon: float):
    """Try to run ``simulator`` on the sharded lane.

    Returns ``(result, None)`` on engagement or ``(None, reason)`` on
    fallback; a fallback consumes nothing, so the spec loop proceeds
    untouched.
    """
    from repro.obs.trace import RingTracer
    from repro.simulation import vector_lane

    reason = vector_lane._unsupported_reason(simulator, allow_tracer=True)
    if reason is not None:
        return None, reason
    tracer = simulator.tracer
    if tracer is not None and type(tracer) is not RingTracer:
        # Workers trace into fresh rings and the coordinator merges raw
        # ring tuples; a third-party tracer subclass could observe state
        # the result pipe cannot carry, so only the exact RingTracer is
        # supported (anything else falls back to the spec loop, which
        # calls every hook in-process).
        return None, "unsupported tracer (sharded tracing needs RingTracer)"
    if simulator._fail_callbacks:
        return None, "failure callbacks registered"
    adapter = ShardWildfireAdapter.try_build(
        simulator.hosts, simulator.network.num_hosts,
        simulator.querying_host)
    if adapter is None:
        return None, "unsupported protocol hosts or combiner"
    shards = simulator.shards
    if shards > 1 and "fork" not in multiprocessing.get_all_start_methods():
        return None, "fork start method unavailable"
    try:
        bounds = simulator.network.partition_bounds(shards)
    except ValueError:
        return None, "network is not range-partitionable"

    # Extract the primed queue into an explicit plan (restored verbatim
    # on any surprise -- drain_until/ingest_events round-trip exactly).
    queue = simulator._queue
    drained = queue.drain_until(horizon)
    starts: List[Tuple[float, int]] = []
    fails: List[Tuple[float, int]] = []
    recognised = 0
    for time, entry in drained:
        if entry.__class__ is Event:
            if entry.kind is EventKind.QUERY_START:
                starts.append((time, entry.host))
                recognised += 1
            elif entry.kind is EventKind.FAIL:
                fails.append((time, entry.host))
                recognised += 1
    if (recognised != len(drained)
            or starts != [(0.0, simulator.querying_host)]):
        queue.ingest_events(drained)
        return None, "unexpected pre-queued events"

    act_rank, act_order = _activation_prepass(simulator, fails, horizon)
    draws_by_shard = _predraw(simulator.hosts, act_order, bounds, shards)

    # Tracing config travels as plain data: every worker (forked or the
    # K=1 in-process lane) builds a *fresh* RingTracer from it, so the
    # parent ring never sees partial per-shard state and the merged
    # output has one "shard k" track for every K.
    trace_conf = ((tracer.capacity, dict(tracer.sampling))
                  if tracer is not None else None)
    from repro.obs.stream import default_progress_board
    board = default_progress_board()
    cells = (board.cells if board is not None and board.shards >= shards
             else None)
    # One wall-clock origin for every shard's timeline/trace timestamps:
    # perf_counter() is CLOCK_MONOTONIC on Linux, comparable across
    # forked children.
    wall_base = perf_counter()

    if shards == 1:
        child_tracer = (RingTracer(trace_conf[0], trace_conf[1])
                        if trace_conf is not None else None)
        lane = _ShardLane(simulator, adapter, 0, bounds, act_rank, fails,
                          horizon, tracer=child_tracer, wall_base=wall_base,
                          progress_cells=cells)
        lane.install_replay_rng(draws_by_shard[0])
        try:
            lane.run_epochs(local_exchange)
        finally:
            lane.restore_rngs()
        results = [lane.collect_result()]
        applied = lane.fails_applied
    else:
        results = _run_forked(simulator, adapter, shards, bounds, act_rank,
                              draws_by_shard, fails, horizon, trace_conf,
                              wall_base, cells)
        applied = 0  # forked workers mutated copies, not the parent
    return _merge(simulator, results, fails, applied, bounds, shards), None


# ----------------------------------------------------------------------
# Content-independent activation pre-pass
# ----------------------------------------------------------------------
def _activation_prepass(simulator, fails: Sequence[Tuple[float, int]],
                        horizon: float):
    """Global activation ranks, computed before any shard runs.

    Replays the Broadcast wave (the only cause of activations) against
    the churn schedule on a throwaway network copy: a host activates the
    first instant a Broadcast from an already-activated neighbor reaches
    it alive before the global deadline, and activation order within an
    instant is (sender activation rank, destination ascending) -- the
    spec loop's delivery FIFO order.  Returns ``(act_rank, act_order)``
    where ``act_rank[h]`` is ``h``'s dense global rank (``None`` if it
    never activates) and ``act_order`` lists hosts in rank order.
    """
    qh = simulator.querying_host
    delta = simulator.delta
    gdl = simulator.hosts[qh]._global_deadline
    net = simulator.network.copy()
    act_rank: List[Optional[int]] = [None] * net.num_hosts
    act_order: List[int] = []
    fail_index = 0
    num_fails = len(fails)

    # Instant 0.0: the query start precedes any time-0 failures.
    frontier: List[tuple] = []
    if net.is_alive(qh):
        act_rank[qh] = 0
        act_order.append(qh)
        targets = net.alive_neighbors_sorted(qh)
        if targets:
            frontier.append((qh, targets))
    while fail_index < num_fails and fails[fail_index][0] <= 0.0:
        time, host = fails[fail_index]
        if net.is_alive(host):
            net.fail_host(host, time)
        fail_index += 1

    t = 0.0
    while frontier:
        t_next = t + delta
        if t_next > horizon:
            break
        while fail_index < num_fails and fails[fail_index][0] < t_next:
            time, host = fails[fail_index]
            if net.is_alive(host):
                net.fail_host(host, time)
            fail_index += 1
        t = t_next
        new_frontier: List[tuple] = []
        if t < gdl:
            for sender, dests in frontier:
                for dest in dests:
                    if act_rank[dest] is None and net.is_alive(dest):
                        act_rank[dest] = len(act_order)
                        act_order.append(dest)
                        # The fresh activee broadcasts onward to its
                        # alive neighbors minus its activator -- the
                        # next instant's Broadcast wave.
                        targets = tuple(
                            x for x in net.alive_neighbors_sorted(dest)
                            if x != sender)
                        if targets:
                            new_frontier.append((dest, targets))
        frontier = new_frontier
        while fail_index < num_fails and fails[fail_index][0] == t:
            time, host = fails[fail_index]
            if net.is_alive(host):
                net.fail_host(host, time)
            fail_index += 1
    return act_rank, act_order


def _predraw(hosts, act_order: Sequence[int], bounds: Sequence[int],
             shards: int) -> List[list]:
    """Record every activation's RNG draws, bucketed by owning shard.

    Runs ``combiner.initial`` for each activating host in global
    activation order against the *real* shared run RNG (so the parent's
    RNG ends in the exact post-run spec state) and segments the tagged
    draws per host.  A shard's tape is the concatenation of its own
    hosts' segments in global activation order -- which is exactly the
    order the shard's local activations occur in, since restriction
    preserves relative order.
    """
    per_shard: List[list] = [[] for _ in range(shards)]
    if not act_order:
        return per_shard
    recorder = _RecordingRng(hosts[act_order[0]].rng)
    draws = recorder.draws
    mark = 0
    for host_id in act_order:
        host = hosts[host_id]
        host.combiner.initial(host.value, recorder)
        if len(draws) > mark:
            per_shard[bisect_right(bounds, host_id) - 1].extend(
                draws[mark:])
            mark = len(draws)
    return per_shard


# ----------------------------------------------------------------------
# Forked execution (K > 1)
# ----------------------------------------------------------------------
def _run_forked(simulator, adapter, shards: int, bounds, act_rank,
                draws_by_shard, fails, horizon: float, trace_conf,
                wall_base: float, progress_cells) -> List[dict]:
    from repro.orchestration.executor import _pool_context

    ctx = _pool_context()
    # pipes[i][j] carries i -> j epoch blobs; result pipes carry one
    # final dict per worker.  All ends are created before the forks so
    # every worker inherits its wiring.
    pipes = [[None] * shards for _ in range(shards)]
    for i in range(shards):
        for j in range(shards):
            if i != j:
                pipes[i][j] = multiprocessing.Pipe(duplex=False)
    result_pipes = [multiprocessing.Pipe(duplex=False)
                    for _ in range(shards)]
    procs = []
    for shard in range(shards):
        senders = [pipes[shard][j][1] if j != shard else None
                   for j in range(shards)]
        receivers = [pipes[j][shard][0] if j != shard else None
                     for j in range(shards)]
        procs.append(ctx.Process(
            target=_worker_main,
            args=(simulator, adapter, shard, shards, bounds, act_rank,
                  draws_by_shard[shard], fails, horizon, trace_conf,
                  wall_base, progress_cells, senders, receivers,
                  result_pipes[shard][1]),
            daemon=True,
        ))
    for proc in procs:
        proc.start()
    # Close the parent's copies so a worker crash surfaces as EOF on its
    # result pipe instead of a hang.
    for i in range(shards):
        for j in range(shards):
            if i != j:
                pipes[i][j][0].close()
                pipes[i][j][1].close()
    for shard in range(shards):
        result_pipes[shard][1].close()

    readers = {result_pipes[shard][0]: shard for shard in range(shards)}
    results: List[Optional[dict]] = [None] * shards
    error: Optional[dict] = None
    pending = set(readers)
    while pending and error is None:
        for conn in mp_connection.wait(list(pending)):
            shard = readers[conn]
            try:
                payload = conn.recv()
            except EOFError:
                payload = {"shard": shard,
                           "error": "worker exited without a result"}
            pending.discard(conn)
            if "error" in payload:
                error = payload
            else:
                results[payload["shard"]] = payload
    if error is not None:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join()
        raise RuntimeError(
            f"sharded worker {error['shard']} failed:\n{error['error']}")
    for proc in procs:
        proc.join()
    for conn in readers:
        conn.close()
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Result merge
# ----------------------------------------------------------------------
def _merge(simulator, results: Sequence[Dict[str, Any]],
           fails: Sequence[Tuple[float, int]], fails_applied: int,
           bounds, shards: int):
    """Fold shard results into the parent's sink, network and clock."""
    from repro.simulation.engine import SimulationResult

    costs = simulator.costs
    merged_sends: Dict[tuple, int] = defaultdict(int)
    wireless_groups = 0
    dropped = 0
    max_depth = 0
    last_instant = 0.0
    value = None
    worker_metrics = []
    timeline: List[Dict[str, Any]] = []
    for res in results:
        timeline.extend(res.get("timeline", ()))
        for key, count in res["send_acc"].items():
            merged_sends[key] += count
        wireless_groups += res["wireless_groups"]
        dropped += res["dropped"]
        if res["max_depth"] > max_depth:
            max_depth = res["max_depth"]
        if res["last_instant"] > last_instant:
            last_instant = res["last_instant"]
        worker_metrics.append({"shard": res["shard"], **res["metrics"]})
        if res.get("has_value"):
            value = res["value"]
    # Every counter below is a commutative sum (or max), so bulk replay
    # rebuilds exactly what per-send recording would have -- the same
    # argument (and the same sink calls) as the vector lane's replay.
    for (time, kind), count in sorted(merged_sends.items()):
        costs.record_send_batch(kind, time, count)
    if wireless_groups:
        costs.record_wireless_group(wireless_groups)
    if dropped:
        costs.dropped_messages += dropped
    if max_depth > costs.max_chain_depth:
        costs.max_chain_depth = max_depth

    def _iter_counts():
        for res in results:
            lo, _hi, counts = res["counts"]
            for offset, count in enumerate(counts):
                if count:
                    yield lo + offset, count

    costs.record_processed_bulk(_iter_counts())

    # Churn parity: the run consumed these failures (workers applied
    # them to process-private copies); mirror them onto the parent's
    # network and hosts so post-run state matches the spec engine.
    network = simulator.network
    hosts = simulator.hosts
    for time, host in fails[fails_applied:]:
        if network.is_alive(host):
            network.fail_host(host, time)
            hosts[host].on_fail(time)

    finished = last_instant
    if fails and fails[-1][0] > finished:
        finished = fails[-1][0]
    simulator.clock._now = finished
    extra = {"sharded": {
        "shards": shards,
        "bounds": list(bounds),
        "workers": worker_metrics,
        "timeline": timeline,
    }}

    # Cross-shard trace merge: fold every worker's ring (raw tuples over
    # the result pipe) into the parent tracer as one process track per
    # shard, with its epoch/barrier wall-clock spans alongside.  Counts
    # merge into the parent's exact counters, so ``counts["send"]`` is
    # the run-wide total even for records the rings sampled away.
    tracer = simulator.tracer
    if tracer is not None:
        from repro.obs.timeline import ShardTimeline

        spans = ShardTimeline(shards, timeline).spans_by_shard()
        for res in results:
            trace = res.get("trace")
            if trace is None:
                continue
            tracer.ingest_process(
                f"shard {res['shard']}", trace["records"],
                counts=trace["counts"],
                spans=spans[res["shard"]])
    return SimulationResult(
        value=value,
        costs=costs,
        finished_at=finished,
        querying_host=simulator.querying_host,
        extra=extra,
    )
