"""The per-shard execution lane and worker-process entry point.

One :class:`_ShardLane` drives one shard's slice of a run: it owns the
shard's flat per-epoch buckets (ranked delivery entries in, canonical
keyed records out), replicates the global churn schedule onto its
process-private network copy, and replays the pre-drawn RNG values so
activation draws are identical to the spec engine no matter which shard
a host landed on.  The epoch protocol itself (who talks to whom at a
barrier) lives in the ``exchange`` callable the coordinator injects --
the same lane runs in-process for ``--shards 1`` and inside a forked
worker for ``K > 1``.

Determinism rests on three invariants, each enforced loudly:

* every record crossing an epoch barrier carries a canonical integer
  key (see :mod:`.adapter`) and the exchange assigns dense global ranks
  by key order, so all shards agree on the spec FIFO order;
* activation RNG draws are recorded by the coordinator in global
  activation order and replayed here (:class:`_ReplayRng`); a draw of
  the wrong type or past the recorded tape means the content-independent
  activation pre-pass diverged from the run -- impossible by the
  Broadcast-first argument, so it raises;
* flush timers always fire at their registration instant, so one flat
  bucket per epoch suffices (asserted in the adapter).
"""

from __future__ import annotations

import marshal
import traceback
from bisect import bisect_left, bisect_right
from collections import defaultdict
from operator import itemgetter
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.simulation.vector_lane import _LaneContext

__all__ = ["_ShardLane", "_RecordingRng", "_ReplayRng", "_worker_main"]


class _RecordingRng:
    """Wraps the shared run RNG, recording every tagged draw.

    Exposes exactly the two methods combiner ``initial`` hooks use; any
    other RNG method would make the pre-draw replay incomplete, so it is
    deliberately absent (an ``AttributeError`` is the fail-loud signal).
    """

    __slots__ = ("_rng", "draws")

    def __init__(self, rng) -> None:
        self._rng = rng
        self.draws: List[Tuple[str, Any]] = []

    def getrandbits(self, bits: int) -> int:
        value = self._rng.getrandbits(bits)
        self.draws.append(("g", value))
        return value

    def random(self) -> float:
        value = self._rng.random()
        self.draws.append(("r", value))
        return value


class _ReplayRng:
    """Replays a recorded draw tape; any divergence raises."""

    __slots__ = ("_draws", "_pos")

    def __init__(self, draws: Sequence[Tuple[str, Any]]) -> None:
        self._draws = draws
        self._pos = 0

    def _next(self, tag: str):
        try:
            recorded_tag, value = self._draws[self._pos]
        except IndexError:
            raise RuntimeError(
                "sharded lane: RNG replay tape exhausted (activation "
                "pre-pass diverged from the run)") from None
        if recorded_tag != tag:
            raise RuntimeError(
                f"sharded lane: RNG draw kind mismatch at position "
                f"{self._pos} (wanted {tag!r}, recorded {recorded_tag!r})")
        self._pos += 1
        return value

    def getrandbits(self, bits: int) -> int:
        return self._next("g")

    def random(self) -> float:
        return self._next("r")


class _ShardLane:
    """One shard's slice of one sharded-lane run."""

    def __init__(self, simulator, adapter, shard: int,
                 bounds: Sequence[int], act_rank: Sequence[Optional[int]],
                 fails: Sequence[Tuple[float, int]], horizon: float,
                 tracer=None, wall_base: float = 0.0,
                 progress_cells=None) -> None:
        self.sim = simulator
        self.adapter = adapter
        self.shard = shard
        self.bounds = bounds
        self.lo = bounds[shard]
        self.hi = bounds[shard + 1]
        self.horizon = horizon
        self.act_rank = act_rank
        self.fails = fails
        network = simulator.network
        n = network.num_hosts
        self.num_hosts = n
        self.hosts = simulator.hosts
        self.network = network
        self.delta = simulator.delta
        self.wireless = simulator.wireless
        self.packed_mode = adapter.packed_mode
        self.alive_bytes = network._alive
        # Canonical-key arithmetic base: host ids, per-record sequence
        # numbers and activation ranks are all < n + 1.
        self._nh1 = n + 1
        self._nh1_sq = self._nh1 * self._nh1
        #: Records emitted this epoch, as canonical
        #: ``(key, sender, dests, kind, agg, dist, depth)`` tuples
        #: (``agg`` normalised to marshal-safe int/float/None).
        self.out_records: List[tuple] = []
        #: This instant's flush registrations:
        #: ``(host_id, chain_depth, causing_rank)`` in canonical order.
        self.timer_bucket: List[tuple] = []
        #: Global rank of the delivery record currently being processed
        #: (stamped onto registrations it causes).
        self._current_rank = 0
        #: Phase separator for this instant's canonical keys (shared by
        #: all shards: ``max(num_hosts, records this instant) + 1``).
        self.rank_bound = n + 1
        # Receive-side accounting (local host range only), replayed in
        # bulk by the coordinator.
        self.counts: List[int] = [0] * n
        self.dropped = 0
        self.max_depth = 0
        self._send_acc: Dict[tuple, int] = defaultdict(int)
        self._wireless_groups = 0
        self.nbr_cache: List[Optional[tuple]] = [None] * n
        self.ctx = _LaneContext(self, simulator)
        self.last_instant = 0.0
        self.fails_applied = 0
        self._saved_rngs: Optional[list] = None
        # Per-shard observability, surfaced via result.extra["sharded"].
        self.epochs = 0
        self.barrier_wait = 0.0
        self.cross_records_in = 0
        self.cross_bytes_in = 0
        self.max_epoch_records = 0
        self.queue_depth_peak = 0
        #: This worker's own tracer (a fresh per-process RingTracer, or
        #: None).  Hot paths guard every hook with one pointer check --
        #: the spec engine's zero-cost-when-disabled contract, per shard.
        self.tracer = tracer
        #: Wall-clock origin shared by all shards (the coordinator's
        #: pre-fork ``perf_counter()``; CLOCK_MONOTONIC survives fork).
        self.wall_base = wall_base
        #: Fork-shared progress doubles (``ShardProgressBoard.cells``)
        #: or None; this shard owns slots ``[2*shard, 2*shard + 1]``.
        self.progress_cells = progress_cells
        #: Per-epoch ``(epoch, t, wall_start, exchange_s, compute_s,
        #: barrier_wait_s, cross_records, queue_depth)`` samples.
        self.timeline: List[tuple] = []

    # ------------------------------------------------------------------
    # Submit targets (the _LaneContext / adapter call sites)
    # ------------------------------------------------------------------
    def register_timer(self, time: float, host: int, name: str,
                       data: Any, chain_depth: int) -> None:
        from repro.protocols.wildfire import FLUSH

        if time != self.last_instant or name != FLUSH or data is not None:
            raise RuntimeError(
                "sharded lane: unexpected timer registration "
                f"({name!r} at {time} vs instant {self.last_instant})")
        self.timer_bucket.append((host, chain_depth, self._current_rank))

    def submit_multi(self, sender: int, dests: Sequence[int], kind: str,
                     agg, dist, time: float, chain_depth: int) -> None:
        """File one Broadcast under its phase-0 canonical key.

        Called from the inherited activation path and the query-start
        hook; ``dests`` is the sender's alive-neighbor view (ascending),
        exactly the spec multicast's trusted destination list.  The key
        is the sender's global activation rank -- broadcasts of one
        instant are emitted in activation order on every shard count.
        """
        acc = self._send_acc
        if self.wireless:
            acc[(time, kind)] += 1
            self._wireless_groups += len(dests) - 1
        else:
            acc[(time, kind)] += len(dests)
        tracer = self.tracer
        if tracer is not None:
            # The spec engine's submit_multicast record: one send with
            # dest -1 and the multicast width as its count.
            tracer.send(time, sender, -1, kind, len(dests))
        rank = self.act_rank[sender]
        if rank is None:
            raise RuntimeError(
                "sharded lane: broadcast from a host the activation "
                "pre-pass never ranked")
        if self.packed_mode and agg is not None and type(agg) is not int:
            # Query-start payloads carry the sketch object; ship the
            # packed int so records stay marshal-safe (receivers
            # normalise either form).
            agg = agg.packed
        self.out_records.append(
            (rank * self._nh1_sq, sender, tuple(dests), kind, agg, dist,
             chain_depth))

    def submit_single(self, sender: int, dest: int, kind: str, agg,
                      dist, time: float, chain_depth: int) -> bool:
        # No real hook ever unicasts in a gated run (replies are inlined
        # in the adapter); reaching this means the gate was wrong.
        raise RuntimeError("sharded lane: unexpected unicast submit")

    # ------------------------------------------------------------------
    # RNG replay
    # ------------------------------------------------------------------
    def install_replay_rng(self, draws: Sequence[tuple]) -> None:
        shim = _ReplayRng(draws)
        hosts = self.hosts
        saved = []
        for host_id in range(self.lo, self.hi):
            host = hosts[host_id]
            saved.append(host.rng)
            host.rng = shim
        self._saved_rngs = saved

    def restore_rngs(self) -> None:
        """Undo :meth:`install_replay_rng` (in-process ``K=1`` runs only;
        forked workers die with their copies)."""
        saved = self._saved_rngs
        if saved is None:
            return
        hosts = self.hosts
        for index, host_id in enumerate(range(self.lo, self.hi)):
            hosts[host_id].rng = saved[index]
        self._saved_rngs = None

    # ------------------------------------------------------------------
    # Churn replication
    # ------------------------------------------------------------------
    def _apply_fail(self, host: int, time: float) -> None:
        # Liveness is replicated: every shard applies the full global
        # churn schedule to its private network copy, so alive bitmaps
        # agree at every epoch boundary.
        if self.network.is_alive(host):
            self.network.fail_host(host, time)
            self.nbr_cache = [None] * self.num_hosts
            if self.tracer is not None and self.lo <= host < self.hi:
                # Only the owning shard records the churn event: every
                # shard replays the full schedule, and K copies of one
                # failure would break the merged trace's exact counts.
                self.tracer.fail(time, host)
            self.hosts[host].on_fail(time)

    # ------------------------------------------------------------------
    # Main epoch loop
    # ------------------------------------------------------------------
    def run_epochs(self, exchange: Callable[["_ShardLane", float],
                                            Tuple[list, int]]) -> None:
        """Drive the run in lockstep ``delta``-wide epochs.

        Instant ordering matches the spec calendar exactly: query start,
        then failures up to each epoch boundary, then the instant's
        deliveries (in global rank order), then its flush timers, then
        failures at the instant itself.  Terminates when a barrier
        reports zero records in flight globally (all shards see the same
        total, so all break together) or the next instant would pass the
        horizon.
        """
        import gc

        sim = self.sim
        adapter = self.adapter
        delta = self.delta
        horizon = self.horizon
        fails = self.fails
        num_fails = len(fails)
        fail_index = 0
        qh = sim.querying_host

        # Instant 0.0: the query start (before any time-0 failures --
        # QUERY_START outranks FAIL in the calendar's priority order).
        if self.lo <= qh < self.hi and self.network.is_alive(qh):
            ctx = self.ctx
            ctx.host_id = qh
            ctx.now = 0.0
            ctx._chain_depth = 0
            self.hosts[qh].on_query_start(ctx)
            adapter.refresh_host(qh)
        while fail_index < num_fails and fails[fail_index][0] <= 0.0:
            time, host = fails[fail_index]
            self._apply_fail(host, time)
            fail_index += 1

        gc_was_enabled = gc.isenabled()
        gc.disable()
        # Timeline instrumentation is always on: three perf_counter()
        # calls and one tuple per epoch (epochs number in the tens to
        # hundreds), invisible next to one barrier's pipe round-trip.
        timeline = self.timeline
        wall_base = self.wall_base
        cells = self.progress_cells
        slot = 2 * self.shard
        try:
            t = 0.0
            while True:
                t_next = t + delta
                if t_next > horizon:
                    break
                depth_now = len(self.out_records)
                if depth_now > self.queue_depth_peak:
                    self.queue_depth_peak = depth_now
                barrier_before = self.barrier_wait
                cross_before = self.cross_records_in
                wall_start = perf_counter()
                entries, total = exchange(self, t_next)
                wall_mid = perf_counter()
                if total == 0:
                    break
                self.epochs += 1
                if total > self.max_epoch_records:
                    self.max_epoch_records = total
                # Failures strictly inside (t, t_next) happen at their
                # own instants, before the deliveries at t_next.
                while (fail_index < num_fails
                       and fails[fail_index][0] < t_next):
                    time, host = fails[fail_index]
                    self._apply_fail(host, time)
                    fail_index += 1
                t = t_next
                self.last_instant = t
                self.rank_bound = (total if total > self.num_hosts
                                   else self.num_hosts) + 1
                if entries:
                    adapter.process_instant(t, entries, self)
                bucket = self.timer_bucket
                if bucket:
                    self.timer_bucket = []
                    adapter.process_timer_bucket(t, bucket, self)
                # Failures at exactly t follow the instant's deliveries
                # and timers (FAIL has the lowest calendar priority).
                while (fail_index < num_fails
                       and fails[fail_index][0] == t):
                    time, host = fails[fail_index]
                    self._apply_fail(host, time)
                    fail_index += 1
                timeline.append((
                    self.epochs, t, wall_start - wall_base,
                    wall_mid - wall_start, perf_counter() - wall_mid,
                    self.barrier_wait - barrier_before,
                    self.cross_records_in - cross_before, depth_now))
                if cells is not None:
                    # Two unsynchronised float stores: one writer per
                    # slot, and the sampler thread tolerates reading
                    # between them (progress is advisory, not exact).
                    cells[slot] = float(self.epochs)
                    cells[slot + 1] = t
        finally:
            if gc_was_enabled:
                gc.enable()
        self.fails_applied = fail_index

    # ------------------------------------------------------------------
    # Result shipping
    # ------------------------------------------------------------------
    def collect_result(self) -> Dict[str, Any]:
        lo, hi = self.lo, self.hi
        qh = self.sim.querying_host
        result: Dict[str, Any] = {
            "shard": self.shard,
            "send_acc": dict(self._send_acc),
            "wireless_groups": self._wireless_groups,
            "dropped": self.dropped,
            "max_depth": self.max_depth,
            "counts": (lo, hi, self.counts[lo:hi]),
            "last_instant": self.last_instant,
            "fails_applied": self.fails_applied,
            "metrics": {
                "epochs": self.epochs,
                "barrier_wait_s": round(self.barrier_wait, 6),
                "cross_records_in": self.cross_records_in,
                "cross_bytes_in": self.cross_bytes_in,
                "max_epoch_records": self.max_epoch_records,
                "queue_depth_peak": self.queue_depth_peak,
            },
            "timeline": [
                {"shard": self.shard, "epoch": epoch, "t": t,
                 "wall_start": round(wall_start, 6),
                 "exchange_s": round(exchange_s, 6),
                 "compute_s": round(compute_s, 6),
                 "barrier_wait_s": round(barrier_s, 6),
                 "cross_records": cross, "queue_depth": depth}
                for (epoch, t, wall_start, exchange_s, compute_s,
                     barrier_s, cross, depth) in self.timeline
            ],
        }
        tracer = self.tracer
        if tracer is not None:
            # Raw ring tuples plus exact counts: everything the parent's
            # RingTracer.ingest_process needs, all pickle-safe scalars.
            result["trace"] = {"records": tracer.raw_records(),
                               "counts": dict(tracer.counts)}
        if lo <= qh < hi:
            result["has_value"] = True
            result["value"] = self.hosts[qh].local_result()
        return result


# ----------------------------------------------------------------------
# Epoch exchanges
# ----------------------------------------------------------------------
def local_exchange(lane: _ShardLane, t_next: float) -> Tuple[list, int]:
    """The ``K=1`` barrier: rank this shard's own records canonically."""
    out = lane.out_records
    if not out:
        return [], 0
    lane.out_records = []
    out.sort(key=itemgetter(0))
    entries = [(rank,) + record[1:] for rank, record in enumerate(out)]
    return entries, len(out)


def split_by_shard(records: List[tuple], bounds: Sequence[int],
                   shards: int) -> List[List[tuple]]:
    """Split each record's destination list by owning shard.

    Destinations ascend within a record, so each record contributes one
    contiguous slice per shard; the common whole-record-in-one-shard
    case is detected with two bisections and no copying.
    """
    per_peer: List[List[tuple]] = [[] for _ in range(shards)]
    for record in records:
        dests = record[2]
        first = bisect_right(bounds, dests[0]) - 1
        if dests[-1] < bounds[first + 1]:
            per_peer[first].append(record)
            continue
        key, sender, _, kind, agg, dist, depth = record
        start = 0
        num_dests = len(dests)
        while start < num_dests:
            shard = bisect_right(bounds, dests[start]) - 1
            end = bisect_left(dests, bounds[shard + 1], start, num_dests)
            per_peer[shard].append(
                (key, sender, dests[start:end], kind, agg, dist, depth))
            start = end
    return per_peer


def make_pipe_exchange(shard: int, shards: int, bounds: Sequence[int],
                       senders: Sequence[Any],
                       receivers: Sequence[Any]) -> Callable:
    """Build the multi-process barrier for worker ``shard``.

    ``senders[j]`` / ``receivers[j]`` are this worker's pipe ends to and
    from peer ``j``.  Each barrier runs three sub-phases:

    1. *rank request*: every spoke sends worker 0 its sorted key list.
    2. *rank reply*: worker 0 concatenates the K sorted lists, sorts the
       union once, assigns each sender the dense global ranks of its
       records (one monotone bisect pass per sender) and ships each
       sender its rank list.  One global sort and one full-key
       deserialisation per epoch, instead of one per worker -- on a
       shared core the broadcast scheme's duplicated ranking work is
       pure wall-clock.
    3. *content*: each sender re-keys its records to their global ranks
       and splits them by destination shard, so multicast slices that
       land on different shards carry the shared rank with no
       receiver-side lookup.  Blobs are exchanged pairwise in ascending
       peer order, the lower id sending first: worker 0's pair is every
       peer's first pair, so by induction no two workers ever block
       sending to each other even when a blob exceeds the pipe buffer.

    The hub phases are deadlock-free as well: spokes only send to
    worker 0 and then block receiving from it, while worker 0 receives
    from every spoke before it sends anything back.
    """
    hub = shard == 0

    def exchange(lane: _ShardLane, t_next: float) -> Tuple[list, int]:
        out = lane.out_records
        lane.out_records = []
        out.sort(key=itemgetter(0))
        keys = [record[0] for record in out]

        barrier_start = perf_counter()
        if hub:
            key_lists: List[list] = [keys]
            for peer in range(1, shards):
                blob = receivers[peer].recv_bytes()
                lane.cross_bytes_in += len(blob)
                key_lists.append(marshal.loads(blob))
            all_keys: List[int] = []
            for peer_keys in key_lists:
                all_keys.extend(peer_keys)
            total = len(all_keys)
            all_keys.sort()
            rank_lists: List[List[int]] = []
            for peer_keys in key_lists:
                rank = 0
                ranks: List[int] = []
                append = ranks.append
                for key in peer_keys:
                    # Keys are globally unique and every sender's list
                    # is sorted, so each rank is one monotone bisect; a
                    # mismatch means the canonical order broke -- fail
                    # loud rather than deliver out of order.
                    rank = bisect_left(all_keys, key, rank)
                    if rank >= total or all_keys[rank] != key:
                        raise RuntimeError(
                            "sharded lane: record key missing from the "
                            "global key order")
                    append(rank)
                rank_lists.append(ranks)
            for peer in range(1, shards):
                senders[peer].send_bytes(
                    marshal.dumps((total, rank_lists[peer])))
            ranks = rank_lists[0]
        else:
            senders[0].send_bytes(marshal.dumps(keys))
            blob = receivers[0].recv_bytes()
            lane.cross_bytes_in += len(blob)
            total, ranks = marshal.loads(blob)
        lane.barrier_wait += perf_counter() - barrier_start

        if total == 0:
            return [], 0
        if len(ranks) != len(out):
            raise RuntimeError(
                "sharded lane: rank reply does not align with the "
                "outgoing records")
        ranked = [(rank,) + record[1:] for rank, record in zip(ranks, out)]
        per_peer = split_by_shard(ranked, bounds, shards)
        entries = per_peer[shard]
        barrier_start = perf_counter()
        for peer in range(shards):
            if peer == shard:
                continue
            blob = marshal.dumps(per_peer[peer])
            if shard < peer:
                senders[peer].send_bytes(blob)
                incoming = receivers[peer].recv_bytes()
            else:
                incoming = receivers[peer].recv_bytes()
                senders[peer].send_bytes(blob)
            lane.cross_bytes_in += len(incoming)
            peer_records = marshal.loads(incoming)
            entries.extend(peer_records)
            lane.cross_records_in += len(peer_records)
        lane.barrier_wait += perf_counter() - barrier_start
        entries.sort(key=itemgetter(0))
        return entries, total

    return exchange


def _worker_main(simulator, adapter, shard: int, shards: int,
                 bounds: Sequence[int], act_rank: Sequence[Optional[int]],
                 draws: Sequence[tuple], fails: Sequence[Tuple[float, int]],
                 horizon: float, trace_conf, wall_base: float,
                 progress_cells, senders, receivers, result_conn) -> None:
    """Forked worker body: run one shard, ship one result dict.

    ``trace_conf`` is ``(capacity, sampling)`` when the run is traced:
    the worker binds a *fresh* RingTracer mirroring the parent's
    configuration (never the inherited parent ring, which may hold a
    previous run's records) and ships its raw tuples in the result.
    """
    try:
        tracer = None
        if trace_conf is not None:
            from repro.obs.trace import RingTracer

            capacity, sampling = trace_conf
            tracer = RingTracer(capacity, sampling)
        lane = _ShardLane(simulator, adapter, shard, bounds, act_rank,
                          fails, horizon, tracer=tracer,
                          wall_base=wall_base,
                          progress_cells=progress_cells)
        lane.install_replay_rng(draws)
        exchange = make_pipe_exchange(shard, shards, bounds, senders,
                                      receivers)
        lane.run_epochs(exchange)
        result_conn.send(lane.collect_result())
    except BaseException:
        try:
            result_conn.send(
                {"shard": shard, "error": traceback.format_exc()})
        except Exception:
            pass
    finally:
        result_conn.close()
