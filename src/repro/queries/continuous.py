"""Continuous queries.

A continuous query is registered at the querying host for an interval
``[0, T]`` and produces a stream of results; Continuous Single-Site Validity
(Section 4.2) requires each result ``v_t`` to be valid with respect to the
host sets of a recent window ``[t - W, t]`` rather than the whole history,
because the stable core over an unbounded interval quickly becomes empty in
a dynamic network.

The implementation here re-issues a one-time valid protocol run per
reporting period; the window parameter controls which churn events count
against the bounds of each report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.queries.query import AggregateQuery
from repro.semantics.validity import ValidityBounds, compute_bounds
from repro.simulation.churn import ChurnSchedule
from repro.topology.base import Topology


@dataclass(frozen=True)
class WindowedResult:
    """One report of a continuous query.

    Attributes:
        report_time: simulation time ``t`` at which the value was declared.
        window_start: start of the validity window ``t - W``.
        value: the declared aggregate.
        bounds: the Single-Site Validity bounds for the window.
        is_valid: whether ``value`` lies within the bounds.
    """

    report_time: float
    window_start: float
    value: float
    bounds: ValidityBounds
    is_valid: bool


@dataclass
class ContinuousQuery:
    """A periodic aggregate query with a validity window.

    Attributes:
        query: the underlying aggregate.
        period: time between consecutive reports.
        window: validity window length ``W``; must be at least as long as a
            single protocol execution (``2 * D_hat * delta``), otherwise no
            algorithm can satisfy the requirement (Section 4.2).
        duration: total registration interval ``T``.
    """

    query: AggregateQuery
    period: float
    window: float
    duration: float

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.duration < self.period:
            raise ValueError("duration must cover at least one period")

    def report_times(self) -> List[float]:
        """The times at which results are declared."""
        times = []
        t = self.period
        while t <= self.duration + 1e-9:
            times.append(round(t, 9))
            t += self.period
        return times

    def run(
        self,
        topology: Topology,
        values: Sequence[float],
        churn: ChurnSchedule,
        querying_host: int,
        execute_once: Callable[[ChurnSchedule, float], float],
    ) -> List[WindowedResult]:
        """Drive the continuous query over a churn schedule.

        Args:
            topology: initial topology.
            values: per-host attribute values.
            churn: the full failure schedule over ``[0, duration]``.
            querying_host: host issuing the query.
            execute_once: callback running one valid protocol execution that
                starts at the given report time and sees the given (already
                restricted) churn schedule; returns the declared value.

        Returns:
            One :class:`WindowedResult` per reporting period.
        """
        from repro.semantics.validity import check_single_site_validity

        results = []
        for report_time in self.report_times():
            window_start = max(0.0, report_time - self.window)
            # Failures before the window started are "old news": the network
            # the protocol sees at this report already excludes those hosts,
            # so the window bounds are computed on the residual topology.
            churn_in_window = ChurnSchedule(
                failures=[
                    (t, h) for t, h in churn.failures if window_start <= t <= report_time
                ],
            )
            pre_window_failures = {
                h for t, h in churn.failures if t < window_start
            }
            residual_adjacency = [
                set(n for n in neigh if n not in pre_window_failures)
                if host not in pre_window_failures else set()
                for host, neigh in enumerate(topology.adjacency)
            ]
            residual = Topology(adjacency=residual_adjacency,
                                name=f"{topology.name}@{window_start:g}",
                                metadata=dict(topology.metadata))
            value = execute_once(churn_in_window, report_time)
            bounds = compute_bounds(
                topology=residual,
                values=values,
                churn=churn_in_window,
                querying_host=querying_host,
                kind=self.query.kind.value,
                horizon=report_time,
            )
            valid = check_single_site_validity(
                value, bounds, self.query.kind.value, values
            )
            results.append(
                WindowedResult(
                    report_time=report_time,
                    window_start=window_start,
                    value=value,
                    bounds=bounds,
                    is_valid=valid,
                )
            )
        return results
