"""Continuous queries.

A continuous query is registered at the querying host for an interval
``[0, T]`` and produces a stream of results; Continuous Single-Site Validity
(Section 4.2) requires each result ``v_t`` to be valid with respect to the
host sets of a recent window ``[t - W, t]`` rather than the whole history,
because the stable core over an unbounded interval quickly becomes empty in
a dynamic network.

Two execution paths exist:

* the historical **compat path** (:meth:`ContinuousQuery.run`) re-issues
  each report through a caller-supplied ``execute_once`` callback, which
  every legacy driver implements by *rebuilding a pristine simulator* per
  report -- churn before the report time never actually degraded the
  protocol run, only the bounds.  Tests pin this behaviour where goldens
  depend on it.
* the **live path** (:meth:`ContinuousQuery.run_live` /
  :meth:`ContinuousQuery.schedule_live`) registers each report as a
  session of a multi-tenant :class:`~repro.service.QueryService`, so
  every per-report protocol execution runs against the live network --
  hosts that failed before the report launch are genuinely gone, and
  churn during the report interval hits the in-flight protocol, exactly
  as Section 4.2's semantics intend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.queries.query import AggregateQuery
from repro.semantics.validity import ValidityBounds, compute_bounds
from repro.simulation.churn import ChurnSchedule
from repro.topology.base import Topology


@dataclass(frozen=True)
class WindowedResult:
    """One report of a continuous query.

    Attributes:
        report_time: simulation time ``t`` at which the value was declared.
        window_start: start of the validity window ``t - W``.
        value: the declared aggregate.
        bounds: the Single-Site Validity bounds for the window.
        is_valid: whether ``value`` lies within the bounds.
    """

    report_time: float
    window_start: float
    value: float
    bounds: ValidityBounds
    is_valid: bool


def _windowed_bounds(
    topology: Topology,
    values: Sequence[float],
    churn: ChurnSchedule,
    querying_host: int,
    kind: str,
    window: float,
    window_end: float,
):
    """Validity bounds for one report window ``[window_end - W, window_end]``.

    The semantic core of Continuous Single-Site Validity, shared by the
    compat and live paths: failures before the window started are "old
    news" (the network the protocol sees already excludes those hosts, so
    bounds are computed on the residual topology), failures inside the
    window count against the report's bounds.

    Returns ``(window_start, churn_in_window, bounds)``.
    """
    window_start = max(0.0, window_end - window)
    churn_in_window = ChurnSchedule(
        failures=[
            (t, h) for t, h in churn.failures
            if window_start <= t <= window_end
        ],
    )
    pre_window_failures = {
        h for t, h in churn.failures if t < window_start
    }
    residual_adjacency = [
        set(n for n in neigh if n not in pre_window_failures)
        if host not in pre_window_failures else set()
        for host, neigh in enumerate(topology.adjacency)
    ]
    residual = Topology(adjacency=residual_adjacency,
                        name=f"{topology.name}@{window_start:g}",
                        metadata=dict(topology.metadata))
    bounds = compute_bounds(
        topology=residual,
        values=values,
        churn=churn_in_window,
        querying_host=querying_host,
        kind=kind,
        horizon=window_end,
    )
    return window_start, churn_in_window, bounds


@dataclass
class ContinuousQuery:
    """A periodic aggregate query with a validity window.

    Attributes:
        query: the underlying aggregate.
        period: time between consecutive reports.
        window: validity window length ``W``; must be at least as long as a
            single protocol execution (``2 * D_hat * delta``), otherwise no
            algorithm can satisfy the requirement (Section 4.2).
        duration: total registration interval ``T``.
    """

    query: AggregateQuery
    period: float
    window: float
    duration: float

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.duration < self.period:
            raise ValueError("duration must cover at least one period")

    def report_times(self) -> List[float]:
        """The times at which results are declared."""
        times = []
        t = self.period
        while t <= self.duration + 1e-9:
            times.append(round(t, 9))
            t += self.period
        return times

    # ------------------------------------------------------------------
    # Live path: per-report sessions on a shared, churning network
    # ------------------------------------------------------------------
    def schedule_live(
        self,
        service,
        protocol,
        querying_host: int = 0,
        repetitions: int = 8,
    ) -> List[int]:
        """Register one service session per reporting period.

        Each report time ``r`` becomes a session launched at ``r`` on the
        service's *live* network; it declares at ``r + T`` where ``T`` is
        the protocol's nominal termination time.  Returns the session
        ids, in report order; pass them to :meth:`collect_live` after the
        service ran.
        """
        return [
            service.submit(protocol, self.query,
                           querying_host=querying_host, at=report_time,
                           repetitions=repetitions,
                           extra={"continuous_report": index})
            for index, report_time in enumerate(self.report_times())
        ]

    def collect_live(
        self,
        service,
        session_ids: Sequence[int],
        querying_host: int = 0,
    ) -> List[WindowedResult]:
        """Assemble windowed results from completed live sessions.

        The validity window of each report ends at its *declaration*
        instant (launch + T): bounds are computed on the residual
        topology (hosts failed before the window are old news, exactly as
        in the compat path) against the service's churn schedule
        restricted to the window.

        Unlike the compat :meth:`run` (which always yields one result per
        period), reports whose session failed -- the querying host was
        dead at the launch instant -- declare nothing and are *omitted*:
        a live network can genuinely lose the querying host between
        reports.  Compare ``len(results)`` against ``len(session_ids)``
        (or poll the ids) to detect dropped periods before computing
        per-period aggregates such as a valid fraction.
        """
        from repro.semantics.validity import check_single_site_validity

        topology = service.topology
        values = service.values
        churn = service.churn
        results: List[WindowedResult] = []
        for session_id in session_ids:
            outcome = service.poll(session_id)
            if outcome.value is None:
                continue
            # A declared value implies finalize() ran, which always sets
            # the declaration instant alongside it.
            declared_at = outcome.declared_at
            window_start, _, bounds = _windowed_bounds(
                topology, values, churn, querying_host,
                self.query.kind.value, self.window, declared_at)
            valid = check_single_site_validity(
                outcome.value, bounds, self.query.kind.value, values
            )
            results.append(
                WindowedResult(
                    report_time=declared_at,
                    window_start=window_start,
                    value=outcome.value,
                    bounds=bounds,
                    is_valid=valid,
                )
            )
        return results

    def run_live(
        self,
        service,
        protocol,
        querying_host: int = 0,
        repetitions: int = 8,
    ) -> List[WindowedResult]:
        """Drive the continuous query through a live query service.

        Convenience wrapper: schedules every report as a session, drains
        the service, and collects windowed results.  Unlike the compat
        :meth:`run`, each report's protocol execution sees the *churned*
        network as it exists at the report instant (and any churn during
        the report interval), not a pristine rebuild.  The service may
        carry other tenants' sessions at the same time; per-query seed
        streams keep this query's reports bit-identical either way.
        """
        session_ids = self.schedule_live(
            service, protocol, querying_host=querying_host,
            repetitions=repetitions)
        service.run()
        return self.collect_live(service, session_ids,
                                 querying_host=querying_host)

    # ------------------------------------------------------------------
    # Compat path: caller-supplied per-report executor
    # ------------------------------------------------------------------
    def run(
        self,
        topology: Topology,
        values: Sequence[float],
        churn: ChurnSchedule,
        querying_host: int,
        execute_once: Callable[[ChurnSchedule, float], float],
    ) -> List[WindowedResult]:
        """Drive the continuous query over a churn schedule (compat path).

        Each report is produced by the caller's ``execute_once`` callback
        on a schedule *restricted to the report's window* -- legacy
        drivers rebuild a pristine simulator per report, so churn before
        the window only tightens the bounds, never the execution.  Kept
        (and pinned by regression tests) because golden experiment
        outputs depend on it; new code should prefer :meth:`run_live`.

        Args:
            topology: initial topology.
            values: per-host attribute values.
            churn: the full failure schedule over ``[0, duration]``.
            querying_host: host issuing the query.
            execute_once: callback running one valid protocol execution that
                starts at the given report time and sees the given (already
                restricted) churn schedule; returns the declared value.

        Returns:
            One :class:`WindowedResult` per reporting period.
        """
        from repro.semantics.validity import check_single_site_validity

        results = []
        for report_time in self.report_times():
            window_start, churn_in_window, bounds = _windowed_bounds(
                topology, values, churn, querying_host,
                self.query.kind.value, self.window, report_time)
            value = execute_once(churn_in_window, report_time)
            valid = check_single_site_validity(
                value, bounds, self.query.kind.value, values
            )
            results.append(
                WindowedResult(
                    report_time=report_time,
                    window_start=window_start,
                    value=value,
                    bounds=bounds,
                    is_valid=valid,
                )
            )
        return results
