"""Continuous approximate network-size estimation (Section 5.4).

Two estimators are implemented:

* :class:`RingSegmentEstimator` -- for DHT-style overlays that place hosts
  uniformly at random on a unit ring, the total segment length managed by a
  sample of ``s`` hosts yields the unbiased estimator ``s / X_s``.
* :class:`CaptureRecaptureEstimator` -- the protocol-agnostic Jolly-Seber
  style scheme: the querying host keeps a set of *marked* hosts, samples
  ``|N_t|`` random hosts per interval, and estimates
  ``|H_t| ~= |M_t| * |N_t| / m_t`` from the recapture count ``m_t``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set


def required_sample_size(epsilon: float, delta: float, marked_fraction: float) -> int:
    """Chernoff-bound sample size for the capture-recapture estimate.

    The paper requires ``|N_t| >= 4 / (eps^2 * rho_t) * ln(2 / delta)`` where
    ``rho_t`` is the fraction of marked hosts in the population.

    Args:
        epsilon: target multiplicative error.
        delta: target failure probability.
        marked_fraction: ``rho_t = |M_t| / |H_t|`` (a crude estimate works).
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    if not 0.0 < marked_fraction <= 1.0:
        raise ValueError("marked_fraction must be in (0, 1]")
    return int(math.ceil(4.0 / (epsilon ** 2 * marked_fraction) * math.log(2.0 / delta)))


@dataclass(frozen=True)
class SizeEstimate:
    """One network-size estimate with its inputs recorded for auditing."""

    interval: int
    estimate: float
    marked: int
    sampled: int
    recaptured: int


class RingSegmentEstimator:
    """Protocol-specific size estimator for unit-ring overlays.

    Hosts are assumed to be placed uniformly at random on a ring of unit
    length, each managing the segment between its own position and its
    clockwise predecessor.  If ``X_s`` is the total segment length managed by
    ``s`` sampled hosts then ``s / X_s`` is an unbiased estimate of ``|H|``.
    """

    def __init__(self, positions: Sequence[float]) -> None:
        """Args:
            positions: ring positions in [0, 1) of all currently alive hosts.
        """
        if not positions:
            raise ValueError("need at least one host position")
        for position in positions:
            if not 0.0 <= position < 1.0:
                raise ValueError("ring positions must lie in [0, 1)")
        self._sorted = sorted(positions)

    @classmethod
    def random_overlay(cls, num_hosts: int, seed: int = 0) -> "RingSegmentEstimator":
        """Build an estimator over a synthetic overlay of the given size."""
        rng = random.Random(seed)
        return cls([rng.random() for _ in range(num_hosts)])

    def segment_length(self, position: float) -> float:
        """Length of the segment managed by the host at ``position``."""
        import bisect

        index = bisect.bisect_left(self._sorted, position)
        if self._sorted[index % len(self._sorted)] != position:
            raise ValueError("position does not belong to a known host")
        predecessor = self._sorted[index - 1] if index > 0 else self._sorted[-1] - 1.0
        return position - predecessor

    def estimate(self, sample_size: int, seed: int = 0) -> float:
        """Estimate ``|H|`` from a uniform sample of ``sample_size`` hosts."""
        if sample_size < 1:
            raise ValueError("sample_size must be at least 1")
        if sample_size > len(self._sorted):
            raise ValueError("cannot sample more hosts than exist")
        rng = random.Random(seed)
        sample = rng.sample(self._sorted, sample_size)
        total_length = sum(self.segment_length(p) for p in sample)
        if total_length <= 0:
            return float(len(self._sorted))
        return sample_size / total_length

    @property
    def true_size(self) -> int:
        return len(self._sorted)


class CaptureRecaptureEstimator:
    """Jolly-Seber capture-recapture estimator of a dynamic network's size.

    The estimator assumes a black-box sampling primitive returning uniform
    random alive hosts (e.g. random walks on an expander overlay).  Each
    interval it:

    1. refreshes the marked set ``M_t`` by probing previously seen hosts and
       dropping the dead ones,
    2. draws a fresh sample ``N_t``,
    3. counts recaptures ``m_t = |M_t intersect N_t|`` and estimates
       ``|H_t| ~= |M_t| * |N_t| / m_t``,
    4. folds the fresh sample into the candidate marked set for ``t + 1``.
    """

    def __init__(self, max_marked: Optional[int] = None) -> None:
        """Args:
            max_marked: optional cap on the marked-set size (the querying
                host may prune arbitrarily if the set grows too large).
        """
        if max_marked is not None and max_marked < 1:
            raise ValueError("max_marked must be positive when given")
        self.max_marked = max_marked
        self._marked: Set[int] = set()
        self._previous_sample: Set[int] = set()
        self._interval = 0
        self.history: List[SizeEstimate] = []

    @property
    def marked_hosts(self) -> Set[int]:
        return set(self._marked)

    def observe_interval(
        self,
        alive_hosts: Set[int],
        sample: Sequence[int],
    ) -> Optional[SizeEstimate]:
        """Process one sampling interval and return the estimate (if any).

        Args:
            alive_hosts: the hosts currently alive (used only to probe the
                candidate marked hosts, mirroring the probing step hq
                performs; the estimator never counts this set directly).
            sample: hosts returned by the black-box random sampling call.

        Returns:
            ``None`` for the first interval (no marked hosts yet) or when no
            marked host was recaptured; otherwise a :class:`SizeEstimate`.
        """
        self._interval += 1
        # Step 1: refresh the marked set from previous knowledge.
        candidates = self._marked | self._previous_sample
        self._marked = {h for h in candidates if h in alive_hosts}
        if self.max_marked is not None and len(self._marked) > self.max_marked:
            self._marked = set(sorted(self._marked)[: self.max_marked])

        sample_set = set(sample)
        self._previous_sample = sample_set

        if not self._marked:
            return None
        recaptured = len(self._marked & sample_set)
        if recaptured == 0:
            return None
        estimate = len(self._marked) * len(sample_set) / recaptured
        record = SizeEstimate(
            interval=self._interval,
            estimate=estimate,
            marked=len(self._marked),
            sampled=len(sample_set),
            recaptured=recaptured,
        )
        self.history.append(record)
        return record

    def latest(self) -> Optional[SizeEstimate]:
        """The most recent estimate, if any."""
        return self.history[-1] if self.history else None


def run_capture_recapture(
    population_by_interval: Sequence[Set[int]],
    sample_size: int,
    seed: int = 0,
    max_marked: Optional[int] = None,
) -> List[SizeEstimate]:
    """Drive a capture-recapture estimator over a sequence of populations.

    Args:
        population_by_interval: the alive host set at each sampling interval
            (interval 0 is only used for the initial marking).
        sample_size: hosts sampled per interval (must not exceed the smallest
            population).
        seed: RNG seed for the uniform sampling.
        max_marked: optional marked-set cap.

    Returns:
        The estimates produced from the second interval onwards.
    """
    if sample_size < 1:
        raise ValueError("sample_size must be at least 1")
    rng = random.Random(seed)
    estimator = CaptureRecaptureEstimator(max_marked=max_marked)
    estimates: List[SizeEstimate] = []
    for alive in population_by_interval:
        if len(alive) < sample_size:
            raise ValueError("sample_size exceeds the alive population")
        sample = rng.sample(sorted(alive), sample_size)
        record = estimator.observe_interval(alive, sample)
        if record is not None:
            estimates.append(record)
    return estimates
