"""Query model: one-time aggregates, continuous queries, size estimation."""

from repro.queries.query import AggregateQuery, QueryKind
from repro.queries.continuous import ContinuousQuery, WindowedResult
from repro.queries.size_estimation import (
    CaptureRecaptureEstimator,
    RingSegmentEstimator,
    required_sample_size,
)

__all__ = [
    "AggregateQuery",
    "QueryKind",
    "ContinuousQuery",
    "WindowedResult",
    "CaptureRecaptureEstimator",
    "RingSegmentEstimator",
    "required_sample_size",
]
