"""Aggregate query descriptions.

A query names an aggregate over a (conceptually query-dependent) attribute
value held at every host.  The paper considers min, max, count, sum and avg;
count and sum are duplicate-sensitive in their exact form, which is why the
FM operators of Section 5.2 exist.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence


class QueryKind(enum.Enum):
    """The aggregate functions covered by the paper."""

    MIN = "min"
    MAX = "max"
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"

    @classmethod
    def parse(cls, name: str) -> "QueryKind":
        """Parse a query kind from a loose string ("maximum", "Average", ...)."""
        normalized = name.strip().lower()
        aliases = {
            "min": cls.MIN, "minimum": cls.MIN,
            "max": cls.MAX, "maximum": cls.MAX,
            "count": cls.COUNT,
            "sum": cls.SUM, "total": cls.SUM,
            "avg": cls.AVG, "average": cls.AVG, "mean": cls.AVG,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown aggregate query kind: {name!r}")
        return aliases[normalized]

    @property
    def duplicate_insensitive_exact(self) -> bool:
        """Whether the exact combine function already tolerates duplicates."""
        return self in (QueryKind.MIN, QueryKind.MAX)


@dataclass(frozen=True)
class AggregateQuery:
    """A one-time aggregate query issued at a querying host.

    Attributes:
        kind: the aggregate function.
        attribute: name of the attribute being aggregated (informational;
            the ad-hoc query model means values are produced on receipt of
            the query, so the simulator simply reads them from the workload).
        epsilon: requested approximation slack for Approximate Single-Site
            Validity; ``None`` requests exact semantics where achievable.
        confidence: requested success probability (1 - zeta) for approximate
            queries.
    """

    kind: QueryKind
    attribute: str = "value"
    epsilon: Optional[float] = None
    confidence: Optional[float] = None

    def __post_init__(self) -> None:
        if self.epsilon is not None and not 0.0 < self.epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if self.confidence is not None and not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")

    @classmethod
    def of(cls, kind: str, **kwargs) -> "AggregateQuery":
        """Build a query from a string kind (``AggregateQuery.of("max")``)."""
        return cls(kind=QueryKind.parse(kind), **kwargs)

    def evaluate(self, values: Sequence[float]) -> float:
        """Evaluate the query exactly over a concrete value multiset."""
        if not values:
            return 0.0
        if self.kind is QueryKind.MIN:
            return float(min(values))
        if self.kind is QueryKind.MAX:
            return float(max(values))
        if self.kind is QueryKind.COUNT:
            return float(len(values))
        if self.kind is QueryKind.SUM:
            return float(sum(values))
        if self.kind is QueryKind.AVG:
            return float(sum(values)) / len(values)
        raise AssertionError(f"unhandled kind {self.kind}")

    def describe(self) -> str:
        """Readable description used in logs and experiment tables."""
        parts = [f"{self.kind.value}({self.attribute})"]
        if self.epsilon is not None:
            parts.append(f"eps={self.epsilon}")
        if self.confidence is not None:
            parts.append(f"conf={self.confidence}")
        return " ".join(parts)
