"""Reproduction of "The Price of Validity in Dynamic Networks" (Bawa et al.).

The package implements the paper's contribution -- Single-Site Validity
semantics and the WILDFIRE protocol -- together with every substrate the
evaluation depends on: a discrete-event network simulator, topology and
workload generators, Flajolet-Martin duplicate-insensitive sketches, the
best-effort baseline protocols, and an experiment harness that regenerates
every table and figure of the paper's evaluation section.

Quickstart
----------
>>> from repro import ValidAggregator, topology, workloads
>>> topo = topology.random_topology(200, avg_degree=5, seed=1)
>>> values = workloads.zipf_values(len(topo), seed=1)
>>> agg = ValidAggregator(topo, values, seed=1)
>>> result = agg.query("max")
>>> result.value == max(values)
True
"""

from repro.core.aggregator import ValidAggregator
from repro.core.config import ProtocolConfig, SimulationConfig
from repro.core.results import QueryResult, ValidityCertificate
from repro.queries.query import AggregateQuery, QueryKind
from repro.semantics.validity import ValidityBounds, check_single_site_validity

from repro import (
    core,
    experiments,
    orchestration,
    protocols,
    queries,
    semantics,
    service,
    simulation,
    sketches,
    topology,
    workloads,
)

__version__ = "1.0.0"

__all__ = [
    "ValidAggregator",
    "ProtocolConfig",
    "SimulationConfig",
    "QueryResult",
    "ValidityCertificate",
    "AggregateQuery",
    "QueryKind",
    "ValidityBounds",
    "check_single_site_validity",
    "core",
    "experiments",
    "orchestration",
    "protocols",
    "queries",
    "semantics",
    "service",
    "simulation",
    "sketches",
    "topology",
    "workloads",
    "__version__",
]
