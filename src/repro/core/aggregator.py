"""The :class:`ValidAggregator` facade.

This is the main entry point for library users: it wraps topology, per-host
values and configuration, and exposes one-call aggregate queries with any of
the implemented protocols, returning answers together with oracle-checked
validity certificates when churn is simulated.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Union

from repro.core.config import ProtocolConfig, SimulationConfig
from repro.core.results import QueryResult, ValidityCertificate
from repro.protocols.allreport import AllReport
from repro.protocols.base import Protocol, run_protocol
from repro.protocols.dag import DirectedAcyclicGraph
from repro.protocols.gossip import PushSumGossip
from repro.protocols.randomized_report import RandomizedReport
from repro.protocols.spanning_tree import SpanningTree
from repro.protocols.wildfire import Wildfire
from repro.queries.query import AggregateQuery, QueryKind
from repro.semantics.oracle import Oracle
from repro.semantics.validity import (
    check_approximate_single_site_validity,
    check_single_site_validity,
)
from repro.simulation.churn import ChurnSchedule
from repro.topology.base import Topology


class ValidAggregator:
    """Run validity-aware aggregate queries over a (simulated) network.

    Args:
        topology: the network topology.
        values: one attribute value per host.
        querying_host: host at which queries are issued (default 0).
        seed: base RNG seed.
        simulation: network-model configuration.
        protocol_config: protocol-level knobs.

    Example:
        >>> from repro import ValidAggregator, topology, workloads
        >>> topo = topology.random_topology(100, seed=3)
        >>> values = workloads.zipf_values(len(topo), seed=3)
        >>> agg = ValidAggregator(topo, values, seed=3)
        >>> agg.query("max").value == max(values)
        True
    """

    def __init__(
        self,
        topology: Topology,
        values: Sequence[float],
        querying_host: int = 0,
        seed: int = 0,
        simulation: Optional[SimulationConfig] = None,
        protocol_config: Optional[ProtocolConfig] = None,
    ) -> None:
        if len(values) < topology.num_hosts:
            raise ValueError("need one attribute value per host")
        if not 0 <= querying_host < topology.num_hosts:
            raise ValueError("querying_host is not part of the topology")
        self.topology = topology
        self.values = list(values)
        self.querying_host = querying_host
        self.seed = seed
        self.simulation = simulation or SimulationConfig(seed=seed)
        self.protocol_config = protocol_config or ProtocolConfig()
        self._oracle = Oracle(topology, self.values, querying_host)

    # ------------------------------------------------------------------
    # Protocol construction
    # ------------------------------------------------------------------
    def _build_protocol(self, name: str) -> Protocol:
        cfg = self.protocol_config
        normalized = name.lower().replace("_", "-")
        if normalized == "wildfire":
            return Wildfire(early_termination=cfg.early_termination)
        if normalized in ("spanning-tree", "spanningtree", "tree"):
            return SpanningTree()
        if normalized in ("dag", "directed-acyclic-graph", "directedacyclicgraph"):
            return DirectedAcyclicGraph(num_parents=cfg.dag_parents)
        if normalized == "allreport":
            return AllReport()
        if normalized in ("randomized-report", "randomizedreport"):
            return RandomizedReport(epsilon=cfg.epsilon, zeta=cfg.zeta)
        if normalized in ("gossip", "push-sum", "push-sum-gossip"):
            return PushSumGossip(num_rounds=cfg.gossip_rounds)
        raise ValueError(f"unknown protocol: {name!r}")

    def available_protocols(self) -> Dict[str, str]:
        """Map of protocol name to a one-line description."""
        return {
            "wildfire": "the paper's Single-Site Valid flooding protocol",
            "spanning-tree": "best-effort TAG-style tree aggregation",
            "dag": "best-effort multi-parent (k) aggregation",
            "allreport": "direct delivery of every value (valid, expensive)",
            "randomized-report": "sampled direct delivery for size estimates",
            "gossip": "push-sum epidemic baseline (eventual consistency)",
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        kind: Union[str, QueryKind, AggregateQuery],
        protocol: str = "wildfire",
        churn: Optional[ChurnSchedule] = None,
        epsilon_for_certificate: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> QueryResult:
        """Run one aggregate query and return the certified result.

        Args:
            kind: the aggregate ("min", "max", "count", "sum", "avg"), or a
                ready-made :class:`AggregateQuery`.
            protocol: which protocol to execute (see
                :meth:`available_protocols`).
            churn: optional failure schedule to apply during the run; when
                given, the result carries an oracle validity certificate.
            epsilon_for_certificate: check Approximate Single-Site Validity
                with this slack instead of exact validity; defaults to 0 for
                min/max and to a sketch-appropriate slack for count/sum/avg
                when WILDFIRE or DAG is used.
            seed: override the per-query RNG seed.
        """
        if isinstance(kind, AggregateQuery):
            query = kind
        elif isinstance(kind, QueryKind):
            query = AggregateQuery(kind=kind)
        else:
            query = AggregateQuery.of(kind)

        protocol_obj = self._build_protocol(protocol)
        run_seed = self.seed if seed is None else seed
        run = run_protocol(
            protocol=protocol_obj,
            topology=self.topology,
            values=self.values,
            query=query,
            querying_host=self.querying_host,
            d_hat=self.protocol_config.d_hat,
            delta=self.simulation.delta,
            churn=churn,
            wireless=self.simulation.wireless,
            seed=run_seed,
            repetitions=self.protocol_config.fm_repetitions,
            delay=self.simulation.delay,
            stats=self.simulation.stats,
            lane=self.simulation.lane,
        )

        certificate = None
        if churn is not None and run.value is not None:
            bounds = self._oracle.bounds(
                query.kind.value, churn, horizon=run.termination_time
            )
            epsilon = self._certificate_epsilon(query, protocol_obj, epsilon_for_certificate)
            if epsilon > 0.0:
                valid = check_approximate_single_site_validity(
                    run.value, bounds, query.kind.value, self.values, epsilon
                )
            else:
                valid = check_single_site_validity(
                    run.value, bounds, query.kind.value, self.values
                )
            certificate = ValidityCertificate(
                bounds=bounds, is_single_site_valid=valid, epsilon=epsilon
            )

        return QueryResult(
            value=run.value,
            protocol=run.protocol,
            kind=query.kind.value,
            run=run,
            certificate=certificate,
        )

    def _certificate_epsilon(
        self,
        query: AggregateQuery,
        protocol: Protocol,
        override: Optional[float],
    ) -> float:
        if override is not None:
            return override
        if query.epsilon is not None:
            return query.epsilon
        if query.kind in (QueryKind.MIN, QueryKind.MAX):
            return 0.0
        # Sketch-based answers are approximate by construction; certify them
        # with a generous multiplicative slack (Lemma 5.1 gives a factor-c
        # guarantee, which is much wider than this practical default).
        return 0.75

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def minimum(self, **kwargs) -> QueryResult:
        return self.query("min", **kwargs)

    def maximum(self, **kwargs) -> QueryResult:
        return self.query("max", **kwargs)

    def count(self, **kwargs) -> QueryResult:
        return self.query("count", **kwargs)

    def sum(self, **kwargs) -> QueryResult:
        return self.query("sum", **kwargs)

    def average(self, **kwargs) -> QueryResult:
        return self.query("avg", **kwargs)

    def oracle(self) -> Oracle:
        """The oracle bound to this aggregator's topology and values."""
        return self._oracle

    def true_value(self, kind: Union[str, QueryKind]) -> float:
        """The failure-free exact answer (for tests and reports)."""
        if isinstance(kind, QueryKind):
            query = AggregateQuery(kind=kind)
        else:
            query = AggregateQuery.of(kind)
        return query.evaluate(self.values)
