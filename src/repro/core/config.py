"""Configuration objects for the high-level API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class SimulationConfig:
    """Network-model parameters shared by every protocol run.

    Attributes:
        delta: maximum per-hop message delay (the paper's ``delta``).
            This is the *bound* protocol timer math relies on; the
            realised delay of each message comes from ``delay``.
        wireless: model a broadcast medium where one transmission reaches all
            neighbors of the sender (sensor-network grids).
        seed: base RNG seed for sketches and protocol randomness.
        max_time: hard upper bound on simulated time as a safety net.
        delay: realised link-delay model spec (``"fixed"``, ``"uniform"``,
            ``"uniform:0.25,1.0"``, ``"per_edge"``, ``"heavy_tail:1.2"``;
            see :func:`repro.simulation.delay.delay_model_from_spec`).
            The default reproduces the paper's exact-``delta`` worst case.
        stats: cost-accounting mode -- ``"full"`` keeps per-host counters,
            ``"streaming"`` is the bounded-memory sink for very large runs
            (see :mod:`repro.simulation.stats`).
        lane: kernel lane -- ``"python"`` (the executable spec, default)
            or ``"vector"`` for the opt-in per-tick vectorized lane
            (see :mod:`repro.simulation.vector_lane`); the vector lane
            is locked bit-identical to the spec path and falls back to
            it when a run is unsupported.
    """

    delta: float = 1.0
    wireless: bool = False
    seed: int = 0
    max_time: float = 1_000_000.0
    delay: str = "fixed"
    stats: str = "full"
    lane: str = "python"

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.max_time <= 0:
            raise ValueError("max_time must be positive")
        # Fail fast on malformed specs instead of at first query time.
        from repro.simulation.delay import delay_model_from_spec
        from repro.simulation.stats import validate_stats_mode
        from repro.simulation.vector_lane import validate_lane

        delay_model_from_spec(self.delay, self.delta, seed=self.seed)
        validate_stats_mode(self.stats)
        validate_lane(self.lane)


@dataclass(frozen=True)
class ProtocolConfig:
    """Protocol-level knobs.

    Attributes:
        d_hat: overestimate of the stable diameter ``D_hat``; estimated from
            the topology when ``None``.
        fm_repetitions: repetitions ``c`` of the FM sketch for count/sum/avg.
        early_termination: WILDFIRE's distance-based participation window.
        dag_parents: fan-out ``k`` for DIRECTEDACYCLICGRAPH.
        gossip_rounds: rounds for the push-sum baseline.
        epsilon: approximation slack for RANDOMIZEDREPORT.
        zeta: failure probability for RANDOMIZEDREPORT.
    """

    d_hat: Optional[int] = None
    fm_repetitions: int = 8
    early_termination: bool = True
    dag_parents: int = 2
    gossip_rounds: int = 50
    epsilon: float = 0.1
    zeta: float = 0.05

    def __post_init__(self) -> None:
        if self.d_hat is not None and self.d_hat < 1:
            raise ValueError("d_hat must be at least 1 when given")
        if self.fm_repetitions < 1:
            raise ValueError("fm_repetitions must be at least 1")
        if self.dag_parents < 1:
            raise ValueError("dag_parents must be at least 1")
        if self.gossip_rounds < 1:
            raise ValueError("gossip_rounds must be at least 1")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if not 0.0 < self.zeta < 1.0:
            raise ValueError("zeta must be in (0, 1)")
