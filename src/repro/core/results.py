"""Result objects returned by the high-level API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.protocols.base import ProtocolRunResult
from repro.semantics.validity import ValidityBounds


@dataclass(frozen=True)
class ValidityCertificate:
    """The oracle-checked validity verdict attached to a query result.

    A certificate can only be issued when the churn that occurred during the
    run is known (which a simulator always knows, and a deployment does not
    -- that asymmetry is the paper's point).

    Attributes:
        bounds: the ``H_C`` / ``H_U`` host-set bounds and their aggregates.
        is_single_site_valid: whether the declared value is consistent with
            some admissible host set.
        epsilon: the approximation slack used for the check (0 = exact).
    """

    bounds: ValidityBounds
    is_single_site_valid: bool
    epsilon: float = 0.0

    @property
    def lower_bound(self) -> float:
        return self.bounds.lower_value

    @property
    def upper_bound(self) -> float:
        return self.bounds.upper_value


@dataclass(frozen=True)
class QueryResult:
    """The answer to one aggregate query plus execution metadata.

    Attributes:
        value: the declared aggregate (``None`` if the protocol failed to
            produce one, e.g. the querying host left the network).
        protocol: short name of the protocol that produced the value.
        kind: the aggregate kind ("min", "count", ...).
        run: the underlying protocol run record (costs, D_hat, timings).
        certificate: oracle validity verdict, when churn was supplied.
    """

    value: Optional[float]
    protocol: str
    kind: str
    run: ProtocolRunResult
    certificate: Optional[ValidityCertificate] = None

    @property
    def communication_cost(self) -> int:
        return self.run.costs.communication_cost

    @property
    def computation_cost(self) -> int:
        return self.run.costs.computation_cost

    @property
    def time_cost(self) -> int:
        return self.run.costs.time_cost

    @property
    def is_valid(self) -> Optional[bool]:
        """The certificate verdict, or ``None`` when no certificate exists."""
        if self.certificate is None:
            return None
        return self.certificate.is_single_site_valid

    def summary(self) -> Dict[str, Any]:
        """A flat dictionary convenient for tables and DataFrames."""
        info: Dict[str, Any] = {
            "protocol": self.protocol,
            "kind": self.kind,
            "value": self.value,
            "communication_cost": self.communication_cost,
            "computation_cost": self.computation_cost,
            "time_cost": self.time_cost,
            "d_hat": self.run.d_hat,
        }
        if self.certificate is not None:
            info.update(
                {
                    "valid": self.certificate.is_single_site_valid,
                    "lower_bound": self.certificate.lower_bound,
                    "upper_bound": self.certificate.upper_bound,
                }
            )
        return info
