"""The high-level public API: a validity-aware aggregation facade."""

from repro.core.aggregator import ValidAggregator
from repro.core.config import ProtocolConfig, SimulationConfig
from repro.core.results import QueryResult, ValidityCertificate

__all__ = [
    "ValidAggregator",
    "ProtocolConfig",
    "SimulationConfig",
    "QueryResult",
    "ValidityCertificate",
]
