"""Content-addressed on-disk cache of experiment results.

Records live under ``.repro_cache/<hh>/<key>.json`` where ``key`` is the
spec's :meth:`~repro.orchestration.spec.ExperimentSpec.cache_key` (identity
hash + package version) and ``hh`` is its first two hex digits (a git-style
fan-out that keeps directories small).  A record stores the spec that
produced it
plus one entry per completed trial, so partially-executed specs resume
incrementally: the executor re-runs only the missing trial indices.

Corrupt or unreadable records are treated as cache misses -- the trial is
simply recomputed and the record rewritten -- so a truncated file can never
poison a run.  Writes go through a temp file + ``os.replace`` to stay
atomic under concurrent runs.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

logger = logging.getLogger(__name__)

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Record schema version; bump on incompatible layout changes.
STORE_VERSION = 1


def default_cache_root() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


class ResultStore:
    """Content-addressed JSON store keyed by the spec's cache key."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    # -- paths ------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- read -------------------------------------------------------------

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the record for ``key``, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            logger.warning("ignoring corrupt cache record %s: %s", path, exc)
            return None
        if (
            not isinstance(record, dict)
            or record.get("hash") != key
            or not isinstance(record.get("trials"), dict)
        ):
            logger.warning("ignoring malformed cache record %s", path)
            return None
        return record

    def cached_trials(self, key: str) -> Dict[int, Dict[str, Any]]:
        """The completed trials of a record, keyed by integer trial index."""
        record = self.load(key)
        if record is None:
            return {}
        out: Dict[int, Dict[str, Any]] = {}
        for trial_key, entry in record["trials"].items():
            if not isinstance(entry, dict):
                logger.warning("skipping malformed trial entry %r in %s",
                               trial_key, key)
                continue
            try:
                out[int(trial_key)] = entry
            except (TypeError, ValueError):
                logger.warning("skipping malformed trial key %r in %s",
                               trial_key, key)
        return out

    def has(self, key: str) -> bool:
        return self.load(key) is not None

    # -- write ------------------------------------------------------------

    def save(self, key: str, record: Dict[str, Any]) -> Path:
        """Atomically write ``record`` for ``key`` and return its path."""
        record = dict(record)
        record["hash"] = key
        record.setdefault("version", STORE_VERSION)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                # No sort_keys: trial values keep their insertion order, which
                # downstream table rendering treats as the column order.
                json.dump(record, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- listing / eviction ----------------------------------------------

    def _record_paths(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def entries(self) -> List[Dict[str, Any]]:
        """Summaries of every readable record, for ``cache ls``."""
        out: List[Dict[str, Any]] = []
        for path in self._record_paths():
            record = self.load(path.stem)
            if record is None:
                out.append({"hash": path.stem, "name": "<corrupt>",
                            "trials": 0, "bytes": path.stat().st_size})
                continue
            spec = record.get("spec", {})
            out.append({
                "hash": record["hash"],
                "name": spec.get("name", "?"),
                "runner": spec.get("runner", "?"),
                "trials": len(record["trials"]),
                "bytes": path.stat().st_size,
            })
        return out

    #: Shortest accepted eviction prefix; below this, typos wipe whole swaths.
    MIN_CLEAR_PREFIX = 6

    def clear(self, key: Optional[str] = None) -> int:
        """Remove records and return how many were deleted.

        With ``key`` (a full hash or a unique prefix of at least
        :data:`MIN_CLEAR_PREFIX` characters), exactly one record is
        targeted -- like git, an ambiguous prefix is refused with a
        ``ValueError`` rather than deleting everything it matches.
        Without ``key``, every record goes.
        """
        if key is not None and len(key) < self.MIN_CLEAR_PREFIX:
            raise ValueError(
                f"hash prefix {key!r} is too short; "
                f"use at least {self.MIN_CLEAR_PREFIX} characters or --all"
            )
        targets = [
            path for path in self._record_paths()
            if key is None or path.stem.startswith(key)
        ]
        if key is not None and len(targets) > 1 and \
                len(key) < 64:
            raise ValueError(
                f"hash prefix {key!r} is ambiguous "
                f"({len(targets)} records match); use more characters"
            )
        removed = 0
        for path in targets:
            path.unlink(missing_ok=True)
            removed += 1
            try:
                path.parent.rmdir()
            except OSError:
                pass  # not empty; other records share the fan-out dir
        return removed
