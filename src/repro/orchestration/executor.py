"""Deterministic fan-out of experiment trials over a process pool.

The executor expands an :class:`~repro.orchestration.spec.ExperimentSpec`
into seeded trials, skips any trial already present in the
:class:`~repro.orchestration.store.ResultStore`, and runs the rest either
in-process (``workers=1`` -- the default, used by tests and existing call
sites) or across a ``multiprocessing`` pool.  Because each trial's seed is
derived from the spec hash and the trial index, and results are keyed by
index, the outcome is bit-identical for any worker count.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.orchestration.runners import resolve_runner
from repro.orchestration.spec import ExperimentSpec, Trial
from repro.orchestration.store import ResultStore

ProgressCallback = Callable[[str], None]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial: its matrix cell, seed, value, and wall time."""

    index: int
    params: Dict[str, Any]
    seed: int
    value: Any
    elapsed: float
    cached: bool = False


@dataclass
class RunReport:
    """Everything the executor knows after running (or resuming) a spec."""

    spec: ExperimentSpec
    spec_hash: str
    cache_key: str
    results: List[TrialResult]
    elapsed: float
    workers: int

    @property
    def values(self) -> List[Any]:
        return [result.value for result in self.results]

    @property
    def num_cached(self) -> int:
        return sum(1 for result in self.results if result.cached)

    @property
    def num_executed(self) -> int:
        return len(self.results) - self.num_cached

    @property
    def fully_cached(self) -> bool:
        return self.results != [] and self.num_executed == 0

    @property
    def worker_utilisation(self) -> float:
        """Fraction of the pool's wall-clock budget spent inside trials
        (cached trials cost no worker time and are excluded)."""
        from repro.obs.metrics import worker_utilisation

        return worker_utilisation(self)


def _pool_context():
    """Prefer fork (fast; inherits registered runners); fall back otherwise."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _execute_payload(payload: Tuple[str, Dict[str, Any], int, int]):
    """Worker entry point: run one trial and return (index, value, elapsed)."""
    runner_name, params, seed, index = payload
    runner = resolve_runner(runner_name)
    started = time.perf_counter()
    value = runner(params, seed)
    return index, value, time.perf_counter() - started


def _call_with_seed(payload: Tuple[Callable[[int], Any], int]):
    func, seed = payload
    return func(seed)


def map_over_seeds(
    func: Callable[[int], Any],
    seeds: Sequence[int],
    workers: int = 1,
) -> List[Any]:
    """Map ``func`` over seeds, optionally across a process pool.

    The in-order results match a serial ``[func(s) for s in seeds]`` run.
    ``func`` must be picklable (a module-level function) when ``workers > 1``;
    :func:`repro.experiments.runner.run_trials` routes through this.
    """
    if workers <= 1 or len(seeds) <= 1:
        return [func(seed) for seed in seeds]
    ctx = _pool_context()
    with ctx.Pool(processes=min(workers, len(seeds))) as pool:
        return pool.map(_call_with_seed, [(func, seed) for seed in seeds])


class ParallelExecutor:
    """Runs specs over a worker pool with cache-aware incremental resume."""

    def __init__(
        self,
        workers: int = 1,
        store: Optional[ResultStore] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers or 1
        self.store = store

    def run(
        self,
        spec: ExperimentSpec,
        force: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> RunReport:
        """Execute every trial of ``spec`` that is not already cached.

        Args:
            spec: the trial matrix to execute.
            force: ignore (and overwrite) any cached trials.
            progress: optional callback receiving one message per event.
        """
        return self.run_many([spec], force=force, progress=progress)[0]

    def run_many(
        self,
        specs: Sequence[ExperimentSpec],
        force: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> List[RunReport]:
        """Execute several specs' pending trials over one shared pool.

        All specs' missing trials are pooled together, so ``workers``
        parallelism spans specs: running every figure with one trial each
        still fans out across the figures.  Each completed trial is
        persisted to the store immediately, so an interrupted run resumes
        from the last finished trial rather than from scratch.
        """
        started = time.perf_counter()
        # Identical specs (same cache key) share one _SpecRun, so a
        # duplicated figure id costs nothing extra.
        runs_by_hash: Dict[str, _SpecRun] = {}
        runs: List[_SpecRun] = []
        for spec in specs:
            cache_key = spec.cache_key()
            if cache_key not in runs_by_hash:
                runs_by_hash[cache_key] = _SpecRun(spec, self.store, force)
            runs.append(runs_by_hash[cache_key])

        payloads: List[Tuple[str, Dict[str, Any], int, int]] = []
        owners: List[Tuple["_SpecRun", Trial]] = []
        for run in runs_by_hash.values():
            if progress and run.cached:
                progress(f"{run.spec.name}: {len(run.cached)}/"
                         f"{len(run.trials)} trials cached")
            for trial in run.trials:
                if trial.index not in run.cached:
                    payloads.append((run.spec.runner, trial.params,
                                     trial.seed, len(owners)))
                    owners.append((run, trial))

        def complete(owner_index: int, value: Any, elapsed: float) -> None:
            run, trial = owners[owner_index]
            run.executed[trial.index] = (value, elapsed)
            run.finished_at = time.perf_counter()
            if self.store is not None:
                # Persisting the full record per completion trades write
                # amplification (O(trials^2) encoding at realistic trial
                # counts of tens) for crash safety: an interrupt never
                # loses a finished trial.
                run.persist(self.store)
            if progress:
                progress(f"{run.spec.name}: trial {trial.index} "
                         f"done in {elapsed:.2f}s")

        if self.workers <= 1 or len(payloads) == 1:
            for payload in payloads:
                complete(*_execute_payload(payload))
        elif payloads:
            ctx = _pool_context()
            with ctx.Pool(processes=min(self.workers, len(payloads))) as pool:
                for owner_index, value, elapsed in pool.imap_unordered(
                    _execute_payload, payloads, chunksize=1
                ):
                    complete(owner_index, value, elapsed)

        return [run.report(started, self.workers) for run in runs]


class _SpecRun:
    """Mutable bookkeeping for one spec inside a (possibly shared) run."""

    def __init__(
        self,
        spec: ExperimentSpec,
        store: Optional[ResultStore],
        force: bool,
    ) -> None:
        self.spec = spec
        self.spec_hash = spec.content_hash()
        self.cache_key = spec.cache_key()
        self.trials = spec.trials()
        self.cached: Dict[int, Dict[str, Any]] = {}
        if store is not None and not force:
            self.cached = store.cached_trials(self.cache_key)
        self.executed: Dict[int, Tuple[Any, float]] = {}
        self.finished_at: Optional[float] = None

    def persist(self, store: ResultStore) -> None:
        trials: Dict[str, Dict[str, Any]] = {}
        for trial in self.trials:
            if trial.index in self.executed:
                value, elapsed = self.executed[trial.index]
                trials[str(trial.index)] = {
                    "params": trial.params, "seed": trial.seed,
                    "value": value, "elapsed": elapsed,
                }
            elif trial.index in self.cached:
                trials[str(trial.index)] = self.cached[trial.index]
        store.save(self.cache_key, {
            "spec": self.spec.as_dict(),
            "trials": trials,
        })

    def report(self, started: float, workers: int) -> RunReport:
        results: List[TrialResult] = []
        for trial in self.trials:
            if trial.index in self.executed:
                value, trial_elapsed = self.executed[trial.index]
                results.append(TrialResult(
                    index=trial.index, params=trial.params, seed=trial.seed,
                    value=value, elapsed=trial_elapsed, cached=False,
                ))
            else:
                entry = self.cached[trial.index]
                results.append(TrialResult(
                    index=trial.index, params=trial.params, seed=trial.seed,
                    value=entry.get("value"),
                    elapsed=float(entry.get("elapsed", 0.0)),
                    cached=True,
                ))
        # Per-spec elapsed: time from batch start until this spec's last
        # trial completed (near zero when fully served from cache).
        finished = self.finished_at if self.finished_at is not None else started
        return RunReport(
            spec=self.spec,
            spec_hash=self.spec_hash,
            cache_key=self.cache_key,
            results=results,
            elapsed=finished - started,
            workers=workers,
        )


def run_spec(
    spec: ExperimentSpec,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> RunReport:
    """One-call convenience wrapper around :class:`ParallelExecutor`."""
    executor = ParallelExecutor(workers=workers, store=store)
    return executor.run(spec, force=force, progress=progress)


def run_specs(
    specs: Sequence[ExperimentSpec],
    workers: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> List[RunReport]:
    """Run several specs over one shared pool (parallelism spans specs)."""
    executor = ParallelExecutor(workers=workers, store=store)
    return executor.run_many(specs, force=force, progress=progress)
