"""Command-line interface for the orchestration subsystem.

Exposed both as ``python -m repro`` and as the ``repro`` console script:

    repro figures                      # list available figure experiments
    repro run fig8 --workers 4         # run one figure's trial matrix
    repro run all --scale 0.3 -t 2     # every figure, two trials each
    repro run fig7 --scale 2.0         # beyond-paper network sizes
    repro run all --stats streaming    # bounded-memory cost accounting
    repro bench --hosts 1000 100000    # kernel scale benchmark
    repro bench --hosts 1000000 --stats streaming   # million-host run
    repro bench --hosts 10000 --delay heavy_tail    # variable link delay
    repro bench --hosts 1000 --profile              # cProfile the kernel
    repro serve --hosts 10000 --qps 5 --duration 200 --stats streaming
                                       # multi-tenant query service
    repro bench --lane sharded --shards 4 --trace-out trace.json
                                       # merged per-shard Perfetto trace
    repro bench --lane sharded --shards 4 --metrics-out live.jsonl
                                       # live metrics stream (tail -f)
    repro obs report bench.json        # epoch/barrier straggler report
    repro delay-sweep --size 200 --departures 0 10  # validity vs delay
    repro cache ls                     # list cached results
    repro cache clear 3fa9c1           # evict one spec (cache-key prefix)
    repro cache clear --all            # evict everything
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.obs.logconfig import configure as configure_logging, get_logger
from repro.orchestration.executor import RunReport, run_specs
from repro.orchestration.store import ResultStore, default_cache_root

log = get_logger()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel experiment orchestration for the "
                    "Price-of-Validity reproduction.",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="debug-level status logging (per-trial "
                             "progress, cache internals)")
    parser.add_argument("--quiet", action="store_true", dest="log_quiet",
                        help="warnings only; suppress progress/status lines")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="list available figure experiments")

    run = sub.add_parser("run", help="run figure trial matrices")
    run.add_argument("figures", nargs="+", metavar="FIGURE",
                     help="figure ids (e.g. fig8) or 'all'")
    run.add_argument("--scale", type=float, default=0.5,
                     help="network-size scale factor: 1.0 = the paper's "
                          "sizes, >1 runs beyond-paper networks "
                          "(default 0.5)")
    run.add_argument("-t", "--trials", type=int, default=1,
                     help="independent trials per figure (default 1)")
    run.add_argument("--seed", type=int, default=0,
                     help="base seed folded into per-trial derivation")
    run.add_argument("-w", "--workers", type=int, default=1,
                     help="worker processes (default 1 = in-process)")
    run.add_argument("--cache-dir", default=None,
                     help=f"cache location (default {default_cache_root()})")
    run.add_argument("--no-cache", action="store_true",
                     help="neither read nor write the result cache")
    run.add_argument("--force", action="store_true",
                     help="recompute even if cached")
    run.add_argument("-q", "--quiet", action="store_true",
                     help="suppress result tables; print summaries only")
    run.add_argument("--stats", choices=("full", "streaming"),
                     default="full",
                     help="cost accounting mode for every simulation "
                          "(streaming = bounded memory; requires "
                          "--workers 1)")

    bench = sub.add_parser(
        "bench", help="kernel scale benchmark at arbitrary host counts")
    bench.add_argument("--hosts", type=int, nargs="+",
                       default=[1000, 10000],
                       help="network sizes to run (default: 1000 10000; "
                            "100000 completes in well under a minute)")
    bench.add_argument("--topology", default="gnutella",
                       help="topology generator (default gnutella)")
    bench.add_argument("--protocol", default="wildfire",
                       help="protocol: wildfire | spanning-tree | dagK")
    bench.add_argument("--aggregate", default="count",
                       help="query kind (default count)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--repetitions", type=int, default=8,
                       help="FM repetitions c for sketch combiners")
    bench.add_argument("--stats", choices=("full", "streaming"),
                       default="full",
                       help="cost accounting mode (streaming keeps memory "
                            "bounded; required for million-host runs)")
    bench.add_argument("--delay", default="fixed", metavar="MODEL",
                       help="link-delay model spec: fixed | uniform[:lo,hi]"
                            " | per_edge[:lo,hi] | heavy_tail[:alpha,xm] "
                            "(default fixed)")
    bench.add_argument("--lane", choices=("python", "vector", "sharded"),
                       default="python",
                       help="kernel lane: python (the executable spec), "
                            "vector (per-tick vectorized fast lane) or "
                            "sharded (epoch-synchronous multiprocess "
                            "lane, see --shards); the opt-in lanes are "
                            "bit-identical and fall back to python when "
                            "the run is unsupported)")
    bench.add_argument("--shards", type=int, default=1, metavar="K",
                       help="worker processes for --lane sharded "
                            "(default 1 = in-process shard)")
    bench.add_argument("--profile", action="store_true",
                       help="run under cProfile and print the top 25 "
                            "functions by cumulative time to stderr")
    bench.add_argument("--profile-out", default=None, metavar="PATH",
                       help="write the cProfile dump to PATH (binary "
                            "pstats, loadable with pstats.Stats) plus a "
                            "JSON sidecar at PATH.json; implies --profile")
    bench.add_argument("--trace-out", default=None, metavar="PATH",
                       help="record a sampled structured trace of the "
                            "runs and write it to PATH (.jsonl = JSON "
                            "Lines; anything else = Chrome trace-event "
                            "JSON, loadable in Perfetto)")
    bench.add_argument("--json", default=None, metavar="PATH",
                       help="append rows to a BENCH_kernel.json trajectory "
                            "file at PATH")
    bench.add_argument("--label", default=None,
                       help="trajectory label for --json (default: "
                            "'cli' plus the cell parameters)")
    bench.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="stream live metrics (per-shard epoch "
                            "progress, resident set size) to PATH as "
                            "JSON Lines while the sweep runs; each line "
                            "is flushed, so `tail -f` follows the run")
    bench.add_argument("--metrics-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock seconds between live metrics "
                            "samples (default 1.0; needs --metrics-out)")

    serve = sub.add_parser(
        "serve",
        help="multi-tenant query service: N concurrent aggregate queries "
             "multiplexed over one shared simulated network")
    serve.add_argument("--hosts", type=int, default=1000,
                       help="network size (default 1000)")
    serve.add_argument("--topology", default="gnutella",
                       help="topology generator (default gnutella)")
    serve.add_argument("--qps", type=float, default=2.0,
                       help="mean Poisson arrival rate of query streams "
                            "(default 2.0)")
    serve.add_argument("--duration", type=float, default=60.0,
                       help="arrival window in simulated time; the service "
                            "then runs to drain so every launched query "
                            "declares (default 60)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--stats", choices=("full", "streaming"),
                       default="full",
                       help="per-query cost accounting mode (streaming = "
                            "bounded memory per session)")
    serve.add_argument("--delay", default="fixed", metavar="MODEL",
                       help="link-delay model spec shared by all queries; "
                            "each session samples its own stream "
                            "(default fixed)")
    serve.add_argument("--departures", type=int, default=0,
                       help="hosts failed uniformly over the arrival "
                            "window (default 0 = static)")
    serve.add_argument("--continuous-fraction", type=float, default=0.15,
                       help="fraction of arrivals that are continuous "
                            "(periodic) query streams (default 0.15)")
    serve.add_argument("--wildfire-share", type=float, default=None,
                       metavar="W",
                       help="weight of WILDFIRE in the protocol mix "
                            "(default 0.25; the rest splits 2:1 between "
                            "spanning-tree and dag2)")
    serve.add_argument("--max-queries", type=int, default=None,
                       help="cap on total submissions (default: unbounded)")
    serve.add_argument("--shards", type=int, default=1, metavar="K",
                       help="partition the query mix across K worker "
                            "processes by query id; rows, summary and "
                            "the determinism digest are merged to match "
                            "the single-process run (default 1)")
    serve.add_argument("--rows", type=int, default=20, metavar="N",
                       help="print the first N per-query rows (default 20; "
                            "0 = summary only)")
    serve.add_argument("--json", default=None, metavar="PATH",
                       help="write the full report (rows + summary + "
                            "metrics) to PATH as JSON")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the service metrics snapshot (engine "
                            "tallies, queue occupancy, per-tenant "
                            "breakdown) to PATH as JSON; with "
                            "--metrics-interval the file becomes a JSON "
                            "Lines stream of live snapshots instead")
    serve.add_argument("--metrics-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="simulated seconds between live metrics "
                            "snapshots appended to --metrics-out while "
                            "the mix runs (results stay bit-identical; "
                            "needs --metrics-out, incompatible with "
                            "--shards > 1)")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="record a sampled structured trace of the "
                            "service run (.jsonl = JSON Lines; else "
                            "Chrome trace-event JSON for Perfetto)")
    serve.add_argument("--share-floods", choices=("on", "off"),
                       default="off",
                       help="cross-tenant shared-flood cache: sessions "
                            "whose computation key matches an in-flight "
                            "computation subscribe to it instead of "
                            "flooding; per-query results are "
                            "bit-identical either way (default off)")
    serve.add_argument("--shed-policy", choices=("shed", "defer",
                                                 "degrade"), default=None,
                       help="admission-control policy for overloaded "
                            "submissions: reject (shed), requeue with a "
                            "deadline (defer), or answer from the "
                            "recent-answer cache with a staleness tag "
                            "(degrade); arming any admission limit "
                            "defaults this to shed")
    serve.add_argument("--max-qps", type=float, default=None,
                       help="admission limit: launches per simulated "
                            "second (sliding window)")
    serve.add_argument("--max-active", type=int, default=None,
                       help="admission limit: concurrently running "
                            "sessions")
    serve.add_argument("--tenant-budget", type=int, default=None,
                       metavar="MSGS",
                       help="admission limit: per-tenant message budget "
                            "(continuous streams pool theirs)")
    serve.add_argument("--defer-retry", type=float, default=2.0,
                       metavar="SECONDS",
                       help="simulated seconds between defer retries "
                            "(default 2.0)")
    serve.add_argument("--defer-deadline", type=float, default=30.0,
                       metavar="SECONDS",
                       help="how long a deferred query may wait before "
                            "being shed (default 30.0)")

    sweep = sub.add_parser(
        "delay-sweep",
        help="validity curves under variable link delay (figs 7-9 style)")
    sweep.add_argument("--topology", default="random",
                       help="topology generator (default random)")
    sweep.add_argument("--size", type=int, default=100,
                       help="network size (default 100)")
    sweep.add_argument("--aggregate", default="count",
                       help="query kind (default count)")
    sweep.add_argument("--delays", nargs="+", metavar="MODEL",
                       default=None,
                       help="delay model specs to sweep (default: fixed, "
                            "uniform:0.25,1.0, heavy_tail:1.2)")
    sweep.add_argument("--departures", type=int, nargs="+", default=[0],
                       help="churn levels R to sweep (default: 0 = static)")
    sweep.add_argument("-t", "--trials", type=int, default=3,
                       help="independent trials per point (default 3)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--provenance", action="store_true",
                       help="attribute each declared estimate's "
                            "contribution set and add lost_alive_mean / "
                            "lost_churn_mean columns (records every "
                            "delivery; experiment scale only)")

    obs = sub.add_parser(
        "obs", help="observability reports over saved run artifacts")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="epoch/barrier timeline of a sharded-lane run: per-epoch "
             "straggler attribution and barrier-overhead fractions from "
             "any JSON artifact carrying the coordinator's timeline "
             "(repro bench --json, a saved result); .jsonl paths are "
             "summarised as live metrics streams instead")
    obs_report.add_argument("artifact", metavar="PATH",
                            help="a run/bench JSON artifact with a "
                                 "sharded timeline, or a --metrics-out "
                                 "JSON Lines stream")
    obs_report.add_argument("--epochs", type=int, default=12, metavar="N",
                            help="cap the per-epoch table at the N most "
                                 "skewed epochs (default 12; 0 = all)")

    cache = sub.add_parser("cache", help="inspect or evict cached results")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_sub.add_parser("ls", help="list cached records")
    cache_ls.add_argument("--cache-dir", default=None)
    cache_clear = cache_sub.add_parser("clear", help="remove cached records")
    cache_clear.add_argument("hash", nargs="?", default=None,
                             help="spec hash (or unique prefix) to evict")
    cache_clear.add_argument("--all", action="store_true", dest="clear_all",
                             help="evict every record")
    cache_clear.add_argument("--cache-dir", default=None)
    return parser


def _cmd_figures() -> int:
    from repro.experiments.figures import FIGURES
    from repro.experiments.tables import format_table

    rows = [{"figure": key, "description": description}
            for key, (description, _) in FIGURES.items()]
    print(format_table(rows, title="Available figures"))
    return 0


def _print_report(figure_id: str, report: RunReport, quiet: bool) -> None:
    from repro.experiments.tables import format_table

    spec = report.spec
    print(f"== {figure_id}: {spec.name} "
          f"[cache {report.cache_key[:12]}] ==")
    if not quiet:
        first = report.results[0]
        rows = first.value if isinstance(first.value, list) else [first.value]
        print(format_table(rows))
        if len(report.results) > 1:
            summary = [{
                "trial": result.index,
                "seed": result.seed,
                "rows": len(result.value) if isinstance(result.value, list)
                        else 1,
                "elapsed_s": round(result.elapsed, 2),
                "cached": "yes" if result.cached else "no",
            } for result in report.results]
            print(format_table(summary, title="Trials"))
    cached = report.num_cached
    utilisation = (f", {report.worker_utilisation:.0%} utilised"
                   if report.workers > 1 and report.num_executed else "")
    print(f"-- {len(report.results)} trials "
          f"({cached} cached, {report.num_executed} executed) "
          f"in {report.elapsed:.2f}s with {report.workers} worker(s)"
          f"{utilisation} --")
    print()


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.figures import FIGURES, figure_spec

    if args.trials < 1:
        print("--trials must be at least 1", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    figure_ids: List[str] = []
    for figure_id in args.figures:
        if figure_id == "all":
            figure_ids.extend(FIGURES)
        elif figure_id in FIGURES:
            figure_ids.append(figure_id)
        else:
            print(f"unknown figure {figure_id!r}; known: "
                  f"{', '.join(sorted(FIGURES))}", file=sys.stderr)
            return 2
    # Dedupe while preserving order: `run all fig9` runs fig9 once.
    figure_ids = list(dict.fromkeys(figure_ids))

    previous_stats_mode = None
    if args.stats != "full":
        if args.workers > 1:
            # The mode is a process-wide default that worker processes
            # would not inherit; silently falling back to full accounting
            # would defeat the reason the user asked for streaming.
            print("--stats streaming requires --workers 1 (worker "
                  "processes do not inherit the stats mode)",
                  file=sys.stderr)
            return 2
        # Process-wide default so every simulation behind the figure
        # drivers picks the sink up without per-driver plumbing;
        # restored afterwards for in-process callers of main().
        from repro.simulation.stats import set_default_stats_mode

        previous_stats_mode = set_default_stats_mode(args.stats)
    try:
        store = None if args.no_cache else ResultStore(args.cache_dir)
        specs = [
            figure_spec(figure_id, scale=args.scale,
                        num_trials=args.trials, base_seed=args.seed)
            for figure_id in figure_ids
        ]
        # One shared pool across figures: `run all --workers N`
        # parallelises even at one trial per figure.
        reports = run_specs(specs, workers=args.workers, store=store,
                            force=args.force, progress=log.debug)
    finally:
        if previous_stats_mode is not None:
            from repro.simulation.stats import set_default_stats_mode

            set_default_stats_mode(previous_stats_mode)
    for figure_id, report in zip(figure_ids, reports):
        _print_report(figure_id, report, args.quiet)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.scale_bench import run_scale_sweep
    from repro.experiments.tables import format_table

    if any(h < 2 for h in args.hosts):
        print("--hosts values must be at least 2", file=sys.stderr)
        return 2
    if args.repetitions < 1:
        print("--repetitions must be at least 1", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be at least 1", file=sys.stderr)
        return 2
    if args.shards > 1 and args.lane != "sharded":
        print("--shards requires --lane sharded", file=sys.stderr)
        return 2
    payload = None
    if args.json:
        # Pre-flight the trajectory file BEFORE the (potentially long)
        # sweep: a corrupt or non-object file must fail fast, not after
        # minutes of benchmarking, and must never be silently overwritten.
        import json

        try:
            with open(args.json) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            payload = {"trajectory": []}
        except (OSError, ValueError) as exc:
            print(f"refusing to overwrite {args.json}: {exc}",
                  file=sys.stderr)
            return 2
        if not isinstance(payload, dict):
            print(f"refusing to overwrite {args.json}: top-level JSON "
                  f"value is {type(payload).__name__}, expected an object",
                  file=sys.stderr)
            return 2
        if not isinstance(payload.setdefault("trajectory", []), list):
            print(f"refusing to overwrite {args.json}: 'trajectory' is "
                  f"not a list", file=sys.stderr)
            return 2
    capture = None
    if args.profile or args.profile_out:
        if args.json:
            # Profiled wall times carry cProfile's tracing overhead; a
            # trajectory file must only ever record clean measurements.
            print("--profile cannot be combined with --json (profiled "
                  "timings would pollute the trajectory)", file=sys.stderr)
            return 2
        from repro.obs.profiling import ProfileCapture

        capture = ProfileCapture()
    tracer = None
    if args.trace_out:
        from repro.obs.trace import RingTracer

        tracer = RingTracer()
    if args.metrics_interval is not None and not args.metrics_out:
        print("--metrics-interval needs --metrics-out PATH to stream to",
              file=sys.stderr)
        return 2
    sampler = None
    stream = None
    prev_board = None
    if args.metrics_out:
        from repro.obs.stream import (
            MetricsStreamWriter,
            PeriodicSampler,
            ShardProgressBoard,
            current_rss_mb,
            set_progress_board,
        )

        interval = (args.metrics_interval
                    if args.metrics_interval is not None else 1.0)
        if interval <= 0:
            print("--metrics-interval must be positive", file=sys.stderr)
            return 2
        # The board is fork-shared: sharded workers store their
        # (epoch, simulated time) once per epoch, and the sampler
        # thread here only *reads*, so the run stays bit-identical.
        board = ShardProgressBoard(args.shards)
        prev_board = set_progress_board(board)
        stream = MetricsStreamWriter(args.metrics_out, meta={
            "command": "bench", "lane": args.lane, "shards": args.shards,
            "hosts": list(args.hosts), "interval_s": interval})

        def _live_payload():
            payload = {"progress": board.snapshot()}
            rss = current_rss_mb()
            if rss is not None:
                payload["process.rss_mb"] = rss
            return payload

        sampler = PeriodicSampler(
            interval, lambda: stream.sample(_live_payload())).start()
    try:
        if capture is not None:
            capture.start()
        rows = run_scale_sweep(
            args.hosts,
            topology=args.topology,
            protocol=args.protocol,
            aggregate=args.aggregate,
            seed=args.seed,
            repetitions=args.repetitions,
            stats=args.stats,
            delay=args.delay,
            lane=args.lane,
            shards=args.shards,
            tracer=tracer,
            progress=lambda row: log.info(
                ".. %s hosts: %.2fs, %s messages (%s/s, peak RSS %s MiB)",
                row["hosts"], row["run_seconds"], row["messages"],
                row["messages_per_second"], row["peak_rss_mb"]),
        )
    except (KeyError, ValueError) as exc:
        # Unknown topology/protocol/aggregate/delay names surface as
        # one-line errors, matching the `run` subcommand's convention.
        message = exc.args[0] if exc.args else str(exc)
        print(str(message), file=sys.stderr)
        return 2
    finally:
        if capture is not None:
            capture.stop()
        if sampler is not None:
            try:
                sampler.stop(final_sample=False)
                stream.final(_live_payload())
            finally:
                set_progress_board(prev_board)
                stream.close()
                log.info("wrote %s live metrics samples to %s",
                         stream.samples_written, args.metrics_out)
    if capture is not None:
        if args.profile_out:
            capture.dump(args.profile_out)
            log.info("wrote profile to %s (load with pstats.Stats; "
                     "sidecar at %s.json)", args.profile_out,
                     args.profile_out)
        if args.profile:
            # Top cumulative-time functions, for hunting the next hot path.
            capture.print_stats(25)
    # An opt-in lane that declined a run is worth a loud line: the user
    # asked for (say) a sharded traced run and silently got the spec
    # loop's numbers instead.  The reason is machine-readable in the
    # row; here it is surfaced at warning level so --quiet still shows
    # it.
    for row in rows:
        if row.get("fallback_reason") is not None:
            log.warning(
                "lane %r fell back to the python spec loop at %s hosts: %s",
                args.lane, row["hosts"], row["fallback_reason"])
    if tracer is not None:
        _export_trace(tracer, args.trace_out)
    lane_label = (f"{args.lane} lane x{args.shards}"
                  if args.lane == "sharded" else f"{args.lane} lane")
    # Nested structures (the sharded timeline block) belong in the JSON
    # artifacts; the printed table stays scalar, and the fallback column
    # only appears when some row actually fell back.
    all_engaged = all(row.get("fallback_reason") is None for row in rows)
    printable = []
    for row in rows:
        shown = {key: value for key, value in row.items()
                 if not isinstance(value, (dict, list))}
        if all_engaged:
            shown.pop("fallback_reason", None)
        printable.append(shown)
    print(format_table(printable,
                       title=f"Kernel scale benchmark "
                             f"({args.protocol} / {args.topology} / "
                             f"{args.aggregate} / {args.delay} delay / "
                             f"{args.stats} stats / {lane_label})"))
    if args.json and payload is not None:
        label = args.label or (
            f"cli {args.protocol}/{args.topology}/{args.aggregate}")
        payload["trajectory"].append({"label": label, "rows": rows})
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        log.info("appended trajectory point to %s", args.json)
    return 0


def _export_trace(tracer, path: str) -> None:
    """Write a RingTracer to ``path`` (.jsonl = JSON Lines, else Chrome)."""
    import os

    if path.endswith(".jsonl"):
        written = tracer.export_jsonl(path)
    else:
        written = tracer.export_chrome(path)
    counts = tracer.summary()["counts"]
    log.info("wrote %s trace records to %s (%.1f MiB; exact counts: %s)",
             written, path, os.path.getsize(path) / (1024.0 * 1024.0),
             ", ".join(f"{k}={v}" for k, v in sorted(counts.items())))


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.experiments.query_mix import run_query_mix
    from repro.experiments.tables import format_table
    from repro.workloads.query_mix import DEFAULT_PROTOCOL_MIX, QueryMixConfig

    if args.hosts < 2:
        print("--hosts must be at least 2", file=sys.stderr)
        return 2
    if args.qps <= 0 or args.duration <= 0:
        print("--qps and --duration must be positive", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be at least 1", file=sys.stderr)
        return 2
    protocol_mix = dict(DEFAULT_PROTOCOL_MIX)
    if args.wildfire_share is not None:
        if not 0.0 <= args.wildfire_share <= 1.0:
            print("--wildfire-share must be in [0, 1]", file=sys.stderr)
            return 2
        rest = 1.0 - args.wildfire_share
        protocol_mix = {"wildfire": args.wildfire_share,
                        "spanning-tree": rest * 2.0 / 3.0,
                        "dag2": rest / 3.0}
    tracer = None
    if args.trace_out:
        from repro.obs.trace import RingTracer

        tracer = RingTracer()
    progress = None
    if log.isEnabledFor(10):  # DEBUG: periodic progress line per slice
        progress = lambda snap: log.debug(  # noqa: E731
            ".. t=%.1f: %s active, %s queued events, %s messages, "
            "%s retired", snap["time"], snap["active_sessions"],
            snap["pending_events"], snap["messages_sent"],
            snap["retired"])
    metrics_stream = None
    if args.metrics_interval is not None:
        if args.metrics_interval <= 0:
            print("--metrics-interval must be positive", file=sys.stderr)
            return 2
        if not args.metrics_out:
            print("--metrics-interval needs --metrics-out PATH to stream "
                  "to", file=sys.stderr)
            return 2
        from repro.obs.stream import MetricsStreamWriter

        metrics_stream = MetricsStreamWriter(args.metrics_out, meta={
            "command": "serve", "hosts": args.hosts, "qps": args.qps,
            "duration": args.duration, "seed": args.seed,
            "interval_s": args.metrics_interval})
    admission = None
    if (args.shed_policy is not None or args.max_qps is not None
            or args.max_active is not None
            or args.tenant_budget is not None):
        from repro.service import AdmissionConfig

        try:
            admission = AdmissionConfig(
                policy=args.shed_policy or "shed",
                max_qps=args.max_qps,
                max_active_sessions=args.max_active,
                tenant_message_budget=args.tenant_budget,
                defer_retry=args.defer_retry,
                defer_deadline=args.defer_deadline,
            )
        except ValueError as exc:
            if metrics_stream is not None:
                metrics_stream.close()
            print(str(exc), file=sys.stderr)
            return 2
    try:
        mix = QueryMixConfig(
            qps=args.qps, duration=args.duration,
            protocol_mix=protocol_mix,
            continuous_fraction=args.continuous_fraction,
            max_queries=args.max_queries,
        )
        result = run_query_mix(
            num_hosts=args.hosts,
            topology=args.topology,
            qps=args.qps,
            duration=args.duration,
            seed=args.seed,
            stats=args.stats,
            delay=None if args.delay == "fixed" else args.delay,
            departures=args.departures,
            mix=mix,
            tracer=tracer,
            progress=progress,
            metrics_interval=args.metrics_interval,
            metrics_stream=metrics_stream,
            shards=args.shards,
            share_floods=args.share_floods == "on",
            admission=admission,
        )
    except (KeyError, ValueError) as exc:
        if metrics_stream is not None:
            metrics_stream.close()
        message = exc.args[0] if exc.args else str(exc)
        print(str(message), file=sys.stderr)
        return 2
    if metrics_stream is not None:
        # The stream ends with the end-of-run snapshot, so a consumer
        # that only tails the file still sees the authoritative totals.
        metrics_stream.final(result["metrics"])
        metrics_stream.close()
        log.info("streamed %s live metrics samples to %s",
                 metrics_stream.samples_written, args.metrics_out)
    rows = result["rows"]
    summary = result["summary"]
    if args.rows > 0 and rows:
        shown = [
            {key: row[key] for key in (
                "query_id", "protocol", "aggregate", "querying_host",
                "status", "submitted_at", "declared_at", "value",
                "communication_cost", "computation_cost", "time_cost")
             if key in row}
            for row in rows[:args.rows]
        ]
        print(format_table(
            shown,
            title=f"Query service ({summary['hosts']} hosts / "
                  f"{summary['topology']} / qps {summary['qps']} / "
                  f"{summary['stats']} stats) -- first {len(shown)} of "
                  f"{len(rows)} queries"))
    # Structured summary values (retired order, per-query late counts)
    # belong in the JSON artifacts; the printed table stays scalar.
    printable = {key: value for key, value in summary.items()
                 if not isinstance(value, (list, dict))}
    print(format_table([printable], title="Service summary"))
    if args.json or args.metrics_out:
        import json

        if args.json:
            with open(args.json, "w") as handle:
                json.dump(result, handle, indent=1, sort_keys=True)
                handle.write("\n")
            log.info("wrote full report to %s", args.json)
        if args.metrics_out and metrics_stream is None:
            with open(args.metrics_out, "w") as handle:
                json.dump(result["metrics"], handle, indent=1,
                          sort_keys=True)
                handle.write("\n")
            log.info("wrote metrics snapshot to %s", args.metrics_out)
    if tracer is not None:
        _export_trace(tracer, args.trace_out)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "report":
        return _cmd_obs_report(args)
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.tables import format_table

    if args.epochs < 0:
        print("--epochs must be >= 0", file=sys.stderr)
        return 2
    try:
        if args.artifact.endswith(".jsonl"):
            return _report_metrics_stream(args.artifact, args.epochs)
        with open(args.artifact) as handle:
            payload = json.load(handle)
    except OSError as exc:
        print(f"cannot read {args.artifact}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"{args.artifact} is not valid JSON: {exc}", file=sys.stderr)
        return 2

    from repro.obs.timeline import ShardTimeline

    timeline = ShardTimeline.from_run(payload)
    if timeline is None:
        print(f"{args.artifact} carries no sharded epoch timeline; "
              f"produce one with repro bench --lane sharded --json "
              f"(a run that fell back to the spec loop records none)",
              file=sys.stderr)
        return 2
    report = timeline.skew_report()
    rows = report
    note = ""
    if args.epochs and len(report) > args.epochs:
        # Keep the most skewed epochs, re-sorted chronologically -- the
        # reader wants the bad moments, in order.
        worst = sorted(report, key=lambda r: r["skew_s"],
                       reverse=True)[:args.epochs]
        rows = sorted(worst, key=lambda r: r["epoch"])
        note = (f" -- {args.epochs} most skewed of "
                f"{len(report)} epochs")
    print(format_table(
        rows, title=f"Epoch/barrier timeline ({timeline.shards} shards"
                    f"{note})"))
    health = timeline.health()
    shard_rows = [{
        "shard": k,
        "compute_s": health["compute_s"][k],
        "barrier_wait_s": health["barrier_wait_s"][k],
        "barrier_overhead": health["barrier_overhead"][k],
        "straggler_epochs": health["straggler_epochs"][k],
    } for k in range(health["shards"])]
    print(format_table(shard_rows, title="Per-shard totals"))
    worst = health["worst_epoch"]
    if worst is not None:
        print(f"worst epoch: {worst['epoch']} (t={worst['t']}) -- shard "
              f"{worst['straggler']} straggled by {worst['skew_s']}s, "
              f"barrier fraction {worst['barrier_frac']:.1%}")
    return 0


def _report_metrics_stream(path: str, limit: int) -> int:
    """Summarise a ``--metrics-out`` JSON Lines stream as tables.

    Streams from interrupted runs are first-class: a torn last line is
    dropped with a warning, a stream with no ``final`` frame prints the
    partial tables it has, and a meta-only stream reports the header --
    all exit 0.  Only real corruption (a bad line before the end) and a
    stream with nothing readable at all stay exit 2.
    """
    from repro.experiments.tables import format_table
    from repro.obs.stream import read_metrics_stream

    stream = read_metrics_stream(path)
    meta = stream["meta"]
    samples = stream["rows"]
    if stream["truncated"] is not None:
        number, error = stream["truncated"]
        print(f"{path}:{number}: dropped torn last line (interrupted "
              f"run): {error}", file=sys.stderr)
    if meta is None and not samples:
        print(f"{path} holds no metrics samples", file=sys.stderr)
        return 2
    if meta is not None:
        described = {key: value for key, value in sorted(meta.items())
                     if key != "type" and not isinstance(value,
                                                         (dict, list))}
        print("stream: " + ", ".join(f"{key}={value}"
                                     for key, value in described.items()))
    if not samples:
        print("no metrics samples yet -- the run was interrupted before "
              "its first sample")
        return 0
    if not stream["has_final"]:
        print("stream has no final frame (interrupted run) -- totals "
              "below are the last live sample")
    shown = samples[-limit:] if limit else samples

    def _flat(row):
        out = {key: value for key, value in row.items()
               if not isinstance(value, (dict, list))}
        progress = row.get("progress")
        if isinstance(progress, dict):
            # The bench stream's per-shard board: one epochs/t column
            # pair per shard so progress skew reads across the row.
            pairs = zip(progress.get("epochs", ()),
                        progress.get("sim_time", ()))
            for shard, (epochs, sim_time) in enumerate(pairs):
                out[f"shard{shard}.epochs"] = epochs
                out[f"shard{shard}.t"] = sim_time
        return out

    printable = [_flat(row) for row in shown]
    skipped = len(samples) - len(shown)
    suffix = f" -- last {len(shown)} of {len(samples)}" if skipped else ""
    print(format_table(
        printable, title=f"Live metrics samples{suffix}"))
    return 0


def _cmd_delay_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.delay_sweep import (
        DEFAULT_DELAY_SPECS,
        run_delay_sweep,
    )
    from repro.experiments.tables import format_table
    from repro.orchestration.runners import TOPOLOGY_BUILDERS

    if args.size < 2:
        print("--size must be at least 2", file=sys.stderr)
        return 2
    if args.trials < 1:
        print("--trials must be at least 1", file=sys.stderr)
        return 2
    if args.topology not in TOPOLOGY_BUILDERS:
        print(f"unknown topology {args.topology!r}; known: "
              f"{', '.join(sorted(TOPOLOGY_BUILDERS))}", file=sys.stderr)
        return 2
    topology = TOPOLOGY_BUILDERS[args.topology](args.size, args.seed)
    try:
        rows = run_delay_sweep(
            topology,
            args.aggregate,
            departures=args.departures,
            delay_specs=args.delays or DEFAULT_DELAY_SPECS,
            num_trials=args.trials,
            seed=args.seed,
            provenance=args.provenance,
        )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(str(message), file=sys.stderr)
        return 2
    print(format_table(
        [row.as_dict() for row in rows],
        title=f"Validity under variable delay "
              f"({args.aggregate} / {args.topology}-{args.size})"))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.tables import format_table

    store = ResultStore(args.cache_dir)
    if args.cache_command == "ls":
        entries = store.entries()
        if not entries:
            print(f"(cache at {store.root} is empty)")
            return 0
        print(format_table(entries, title=f"Cache at {store.root}"))
        return 0
    # clear
    if args.clear_all:
        target = None
    elif args.hash is not None:
        target = args.hash
    else:
        print("cache clear requires a hash prefix or --all", file=sys.stderr)
        return 2
    try:
        removed = store.clear(target)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"removed {removed} record(s) from {store.root}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    configure_logging(-1 if args.log_quiet else args.verbose)
    try:
        if args.command == "figures":
            return _cmd_figures()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "obs":
            return _cmd_obs(args)
        if args.command == "delay-sweep":
            return _cmd_delay_sweep(args)
        if args.command == "cache":
            return _cmd_cache(args)
    except KeyboardInterrupt:
        # Completed trials are already persisted; a re-run resumes there.
        print("\ninterrupted; finished trials are cached", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like a
        # well-behaved unix filter.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
