"""Declarative experiment specifications with stable content hashing.

An :class:`ExperimentSpec` describes a trial matrix -- the cartesian
product of named axes (topology, protocol, aggregate, figure, scale, ...)
repeated ``num_trials`` times -- without saying anything about *how* it is
executed.  The executor and the result cache both key off the spec's
content hash, so two specs that describe the same experiment always map to
the same cache entry and the same derived per-trial seeds, regardless of
the process, worker count, or axis insertion order that produced them.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

#: Axis values must be JSON scalars so the canonical form is unambiguous.
_SCALAR_TYPES = (str, int, float, bool, type(None))

#: Modulus for derived seeds; keeps them in ``random.seed``-friendly range.
_SEED_SPACE = 2**31 - 1


def _check_scalar(axis: str, value: Any) -> None:
    if not isinstance(value, _SCALAR_TYPES):
        raise TypeError(
            f"axis {axis!r} value {value!r} is not a JSON scalar "
            f"(str/int/float/bool/None)"
        )


def _code_version() -> str:
    """The package version, folded into the *cache* key only.

    Experiment results depend on driver code, not just parameters; tying
    the cache key to the release version means a version bump invalidates
    every cache entry instead of silently serving results computed by old
    code.  It must NOT enter :meth:`ExperimentSpec.content_hash`, which
    seeds the trials: the numbers a spec produces stay stable across
    releases unless the drivers actually change behaviour.
    """
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - import cycle / stripped package
        return "unknown"


def derive_trial_seed(spec_hash: str, base_seed: int, index: int) -> int:
    """Derive the RNG seed of trial ``index`` from the spec identity.

    The seed depends only on the spec's content hash, the base seed, and
    the trial's position in the matrix -- never on which worker runs the
    trial or how many workers exist -- so results are bit-identical for
    any executor configuration.
    """
    digest = hashlib.sha256(
        f"{spec_hash}:{base_seed}:{index}".encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


@dataclass(frozen=True)
class Trial:
    """One cell of an expanded trial matrix."""

    index: int
    params: Dict[str, Any]
    seed: int


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative trial matrix: axes x repetitions, plus a runner name.

    Attributes:
        name: human-readable label (not part of the identity hash).
        runner: registered runner name (see :mod:`repro.orchestration.runners`)
            or an importable ``"module:function"`` path.
        axes: canonical axis table, sorted by axis name; each entry is
            ``(axis_name, (value, ...))``.
        num_trials: repetitions of every matrix point with distinct seeds.
        base_seed: folded into per-trial seed derivation.
    """

    name: str
    runner: str
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = field(default_factory=tuple)
    num_trials: int = 1
    base_seed: int = 0

    @classmethod
    def create(
        cls,
        name: str,
        runner: str,
        axes: Mapping[str, Sequence[Any]],
        num_trials: int = 1,
        base_seed: int = 0,
    ) -> "ExperimentSpec":
        """Build a spec from a plain mapping of axis name to values.

        Axis order in ``axes`` is irrelevant: the canonical form sorts axes
        by name, so specs that differ only in insertion order hash equally.
        """
        if num_trials < 1:
            raise ValueError("num_trials must be at least 1")
        canonical: List[Tuple[str, Tuple[Any, ...]]] = []
        for axis in sorted(axes):
            values = tuple(axes[axis])
            if not values:
                raise ValueError(f"axis {axis!r} has no values")
            for value in values:
                _check_scalar(axis, value)
            canonical.append((axis, values))
        return cls(
            name=name,
            runner=runner,
            axes=tuple(canonical),
            num_trials=num_trials,
            base_seed=base_seed,
        )

    # -- identity ---------------------------------------------------------

    def identity_dict(self) -> Dict[str, Any]:
        """The fields that define the spec's identity (``name`` excluded)."""
        return {
            "runner": self.runner,
            "axes": {axis: list(values) for axis, values in self.axes},
            "num_trials": self.num_trials,
            "base_seed": self.base_seed,
        }

    def as_dict(self) -> Dict[str, Any]:
        """Full JSON-ready representation, including the label."""
        out = {"name": self.name}
        out.update(self.identity_dict())
        return out

    def canonical_json(self) -> str:
        return json.dumps(self.identity_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_hash(self) -> str:
        """Stable sha256 hex digest of the spec's identity.

        This hash seeds every trial (see :func:`derive_trial_seed`), so it
        covers only the declarative identity -- never code versions.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def cache_key(self) -> str:
        """The on-disk result-cache address: identity + package version.

        Distinct from :meth:`content_hash` so that a release bump evicts
        stale cached results without changing any derived seed (and hence
        without changing the experiment's numbers).
        """
        payload = f"{self.canonical_json()}|{_code_version()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- expansion --------------------------------------------------------

    def points(self) -> List[Dict[str, Any]]:
        """The cartesian product of the axes, in canonical order."""
        if not self.axes:
            return [{}]
        names = [axis for axis, _ in self.axes]
        grids = [values for _, values in self.axes]
        return [dict(zip(names, combo)) for combo in itertools.product(*grids)]

    def trials(self) -> List[Trial]:
        """Expand the matrix into seeded trials, one per (point, repetition).

        Trial ``index`` enumerates repetitions within a point before moving
        to the next point; seeds come from :func:`derive_trial_seed`.
        """
        spec_hash = self.content_hash()
        out: List[Trial] = []
        index = 0
        for params in self.points():
            for _ in range(self.num_trials):
                out.append(Trial(
                    index=index,
                    params=dict(params),
                    seed=derive_trial_seed(spec_hash, self.base_seed, index),
                ))
                index += 1
        return out

    @property
    def num_cells(self) -> int:
        total = 1
        for _, values in self.axes:
            total *= len(values)
        return total * self.num_trials
