"""Parallel experiment orchestration: specs, execution, and result caching.

The subsystem separates *what* an experiment is from *how* it runs:

- :class:`ExperimentSpec` declares a trial matrix (axes x repetitions)
  with a stable content hash;
- :class:`ParallelExecutor` / :func:`run_spec` fan trials out over a
  process pool with per-trial seeds derived from the spec hash, so results
  are identical for any worker count;
- :class:`ResultStore` content-addresses results on disk for
  skip-if-cached resume and incremental re-runs;
- :mod:`repro.orchestration.cli` exposes it all as ``python -m repro``.
"""

from repro.orchestration.executor import (
    ParallelExecutor,
    RunReport,
    TrialResult,
    map_over_seeds,
    run_spec,
    run_specs,
)
from repro.orchestration.runners import (
    register_runner,
    registered_runners,
    resolve_runner,
)
from repro.orchestration.spec import ExperimentSpec, Trial, derive_trial_seed
from repro.orchestration.store import ResultStore, default_cache_root

__all__ = [
    "ExperimentSpec",
    "Trial",
    "derive_trial_seed",
    "ParallelExecutor",
    "RunReport",
    "TrialResult",
    "map_over_seeds",
    "run_spec",
    "run_specs",
    "register_runner",
    "registered_runners",
    "resolve_runner",
    "ResultStore",
    "default_cache_root",
]
