"""Trial runners: named, picklable entry points executed by worker processes.

A runner is a function ``(params, seed) -> JSON-serialisable result`` that
executes exactly one trial of an :class:`~repro.orchestration.spec.
ExperimentSpec`.  Workers receive only the runner's *name* and resolve it
locally, so trial payloads stay picklable under every multiprocessing start
method.  Unknown names containing a colon are treated as ``module:function``
import paths, which lets tests and downstream code plug in runners without
registering them first.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, List

TrialRunner = Callable[[Dict[str, Any], int], Any]

_REGISTRY: Dict[str, TrialRunner] = {}


def register_runner(name: str) -> Callable[[TrialRunner], TrialRunner]:
    """Decorator registering ``func`` as the runner called ``name``."""

    def decorate(func: TrialRunner) -> TrialRunner:
        if name in _REGISTRY:
            raise ValueError(f"runner {name!r} already registered")
        _REGISTRY[name] = func
        return func

    return decorate


def resolve_runner(name: str) -> TrialRunner:
    """Look up a registered runner, or import a ``module:function`` path."""
    if name in _REGISTRY:
        return _REGISTRY[name]
    if ":" in name:
        module_name, _, attr = name.partition(":")
        module = importlib.import_module(module_name)
        func = getattr(module, attr, None)
        if callable(func):
            return func
        raise KeyError(f"{name!r} does not resolve to a callable")
    raise KeyError(
        f"unknown runner {name!r}; registered: {sorted(_REGISTRY)}"
    )


def registered_runners() -> List[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Built-in runners
# ---------------------------------------------------------------------------

#: Topology axis values understood by the ``validity-point`` runner.
TOPOLOGY_BUILDERS: Dict[str, Callable[[int, int], Any]] = {}


def _topology(name: str):
    def decorate(func):
        TOPOLOGY_BUILDERS[name] = func
        return func

    return decorate


@_topology("ring")
def _ring(size: int, seed: int):
    from repro.topology.primitives import ring_topology

    return ring_topology(size)


@_topology("chain")
def _chain(size: int, seed: int):
    from repro.topology.primitives import chain_topology

    return chain_topology(size)


@_topology("star")
def _star(size: int, seed: int):
    from repro.topology.primitives import star_topology

    return star_topology(max(1, size - 1))


@_topology("grid")
def _grid(size: int, seed: int):
    from repro.topology.grid import grid_topology

    side = max(2, round(size ** 0.5))
    return grid_topology(side)


@_topology("random")
def _random(size: int, seed: int):
    from repro.topology.random_graph import random_topology

    return random_topology(size, seed=seed)


@_topology("power-law")
def _power_law(size: int, seed: int):
    from repro.topology.power_law import power_law_topology

    return power_law_topology(size, seed=seed)


@_topology("small-world")
def _small_world(size: int, seed: int):
    from repro.topology.small_world import small_world_topology

    return small_world_topology(size, seed=seed)


@_topology("gnutella")
def _gnutella(size: int, seed: int):
    from repro.topology.gnutella import gnutella_like_topology

    return gnutella_like_topology(size, seed=seed)


def _build_protocol(name: str):
    from repro.protocols.base import protocol_from_spec

    return protocol_from_spec(name)


@register_runner("figure")
def figure_runner(params: Dict[str, Any], seed: int) -> List[Dict[str, Any]]:
    """Run one paper-figure driver; params: ``figure``, optional ``scale``."""
    from repro.experiments.figures import run_figure

    return run_figure(
        params["figure"], scale=float(params.get("scale", 0.5)), seed=seed
    )


@register_runner("scale-bench")
def scale_bench_runner(params: Dict[str, Any], seed: int) -> List[Dict[str, Any]]:
    """Run one kernel scale-benchmark cell (see ``repro bench``).

    Axes: ``hosts``, plus optional ``topology`` / ``protocol`` /
    ``aggregate`` / ``repetitions``.  The spec's derived seed feeds
    topology generation, values and the protocol run, so a cell is fully
    reproducible.  Wall-clock fields are stripped from the returned rows:
    spec results are content-address cached, and a replayed timing would
    masquerade as a fresh measurement -- use ``repro bench`` (uncached)
    to measure, and this runner to sweep the deterministic cost measures.
    """
    from repro.experiments.scale_bench import run_scale_benchmark

    row = run_scale_benchmark(
        int(params.get("hosts", 1000)),
        topology=str(params.get("topology", "gnutella")),
        protocol=str(params.get("protocol", "wildfire")),
        aggregate=str(params.get("aggregate", "count")),
        seed=seed,
        repetitions=int(params.get("repetitions", 8)),
        stats=str(params.get("stats", "full")),
        delay=str(params.get("delay", "fixed")),
    )
    # Wall-clock and machine-local memory fields are stripped: spec results
    # are content-address cached and a replayed measurement would
    # masquerade as a fresh one.
    for machine_field in ("gen_seconds", "run_seconds", "messages_per_second",
                          "peak_rss_mb", "accounting_bytes"):
        row.pop(machine_field, None)
    return [row]


@register_runner("delay-sweep")
def delay_sweep_runner(params: Dict[str, Any], seed: int) -> List[Dict[str, Any]]:
    """Run one variable-delay validity sweep cell (see ``repro delay-sweep``).

    Axes: ``topology`` (a :data:`TOPOLOGY_BUILDERS` key), ``size``,
    ``aggregate``, ``delay`` (a delay model spec string), and optional
    ``departures`` / ``protocol`` / ``trials``.  This is the declarative
    form of one point of the beyond-paper Figure 7-9 curves under
    variable link delay.
    """
    from repro.experiments.delay_sweep import run_delay_sweep

    topology_name = str(params.get("topology", "random"))
    if topology_name not in TOPOLOGY_BUILDERS:
        raise KeyError(
            f"unknown topology {topology_name!r}; "
            f"known: {sorted(TOPOLOGY_BUILDERS)}"
        )
    size = int(params.get("size", 64))
    topology = TOPOLOGY_BUILDERS[topology_name](size, seed)
    protocols = None
    if "protocol" in params:
        protocols = [_build_protocol(str(params["protocol"]))]
    rows = run_delay_sweep(
        topology,
        str(params.get("aggregate", "count")),
        departures=[int(params.get("departures", 0))],
        delay_specs=[str(params.get("delay", "fixed"))],
        protocols=protocols,
        num_trials=int(params.get("trials", 3)),
        seed=seed,
    )
    return [row.as_dict() for row in rows]


@register_runner("validity-point")
def validity_point_runner(params: Dict[str, Any], seed: int) -> List[Dict[str, Any]]:
    """Run a single (topology, protocol, aggregate, churn) validity trial.

    Axes: ``topology`` (a :data:`TOPOLOGY_BUILDERS` key), ``size``,
    ``protocol`` (``wildfire``/``spanning-tree``/``dagK``), ``aggregate``
    (``count``/``sum``/...), and optional ``departures`` (host count).
    This is the declarative form of one cell of Figures 7-9.
    """
    from repro.experiments.validity_sweep import run_validity_sweep

    topology_name = params.get("topology", "random")
    if topology_name not in TOPOLOGY_BUILDERS:
        raise KeyError(
            f"unknown topology {topology_name!r}; "
            f"known: {sorted(TOPOLOGY_BUILDERS)}"
        )
    size = int(params.get("size", 64))
    topology = TOPOLOGY_BUILDERS[topology_name](size, seed)
    rows = run_validity_sweep(
        topology,
        str(params.get("aggregate", "count")),
        departures=[int(params.get("departures", max(2, size // 20)))],
        protocols=[_build_protocol(str(params.get("protocol", "wildfire")))],
        num_trials=1,
        seed=seed,
    )
    return [row.as_dict() for row in rows]
