"""Validity semantics: host-set bounds, oracle, and validity metrics."""

from repro.semantics.validity import (
    ValidityBounds,
    check_approximate_single_site_validity,
    check_single_site_validity,
    stable_core,
)
from repro.semantics.oracle import Oracle
from repro.semantics.metrics import completeness, relative_error

__all__ = [
    "ValidityBounds",
    "check_single_site_validity",
    "check_approximate_single_site_validity",
    "stable_core",
    "Oracle",
    "completeness",
    "relative_error",
]
