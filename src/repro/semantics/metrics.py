"""Post-hoc validity metrics from related work (Section 2.4).

Completeness and Relative Error are the metrics earlier best-effort systems
used to characterise answer quality.  The paper points out that both can
only be computed by an oracle after the fact; they are provided here for the
comparison experiments.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def completeness(contributing_hosts: Iterable[int], total_hosts: int) -> float:
    """Percentage of hosts whose data contributed to the final result.

    Args:
        contributing_hosts: hosts whose values reached the querying host.
        total_hosts: number of hosts in the network.

    Returns:
        A fraction in [0, 1]; 1.0 means every host contributed.
    """
    if total_hosts <= 0:
        raise ValueError("total_hosts must be positive")
    unique = set(contributing_hosts)
    if any(h < 0 or h >= total_hosts for h in unique):
        raise ValueError("contributing host id out of range")
    return len(unique) / total_hosts


def relative_error(reported: float, true_value: float) -> float:
    """The paper's relative-error metric ``|reported / true - 1|``."""
    if true_value == 0:
        return 0.0 if reported == 0 else float("inf")
    return abs(reported / true_value - 1.0)


def accuracy_ratio(reported: float, true_value: float) -> float:
    """The ratio ``reported / true`` plotted in Figure 6.

    Values below 1 are underestimates, above 1 overestimates, exactly 1 is
    perfect accuracy.
    """
    if true_value == 0:
        return float("inf") if reported else 1.0
    return reported / true_value


def within_factor(reported: float, true_value: float, factor: float) -> bool:
    """Whether ``1/factor <= reported/true <= factor`` (Lemma 5.1 guarantee)."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    if true_value == 0:
        return reported == 0
    ratio = reported / true_value
    return (1.0 / factor) <= ratio <= factor


def mean_and_confidence_interval(samples: Sequence[float], z: float = 1.96):
    """Mean and half-width of a normal-approximation confidence interval.

    The paper reports averages over 10 trials with 95% confidence intervals;
    this helper reproduces that reporting convention.

    Returns:
        A ``(mean, half_width)`` tuple; the half-width is 0 for fewer than
        two samples.
    """
    values = list(samples)
    if not values:
        raise ValueError("need at least one sample")
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    half_width = z * (variance ** 0.5) / (len(values) ** 0.5)
    return mean, half_width
