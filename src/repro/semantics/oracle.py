"""The ORACLE frame of reference.

The paper's experiments use an ORACLE that observes every event in the
network, detects reachability of each host from the querying host, and from
that computes the Single-Site Validity lower bound ``q(H_C)`` and upper
bound ``q(H_U)``.  Such an oracle is infeasible in a real deployment (it
needs a perfect global view) but is exactly what a simulator can provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.semantics import validity
from repro.simulation.churn import ChurnSchedule
from repro.topology.base import Topology


@dataclass
class OracleReport:
    """Everything the oracle knows about one query execution."""

    bounds: validity.ValidityBounds
    kind: str
    true_initial_value: float
    core_value: float
    union_value: float

    @property
    def lower(self) -> float:
        return self.core_value

    @property
    def upper(self) -> float:
        return self.union_value


class Oracle:
    """Omniscient observer computing validity bounds for an execution.

    Args:
        topology: the initial topology.
        values: attribute value per host.
        querying_host: the host issuing the query.
    """

    def __init__(
        self,
        topology: Topology,
        values: Sequence[float],
        querying_host: int,
    ) -> None:
        if len(values) < topology.num_hosts:
            raise ValueError("need one attribute value per host")
        if not 0 <= querying_host < topology.num_hosts:
            raise ValueError("querying host not in topology")
        self.topology = topology
        self.values = list(values)
        self.querying_host = querying_host

    def bounds(
        self,
        kind: str,
        churn: ChurnSchedule,
        horizon: Optional[float] = None,
    ) -> validity.ValidityBounds:
        """Single-Site Validity bounds for the given churn schedule."""
        return validity.compute_bounds(
            topology=self.topology,
            values=self.values,
            churn=churn,
            querying_host=self.querying_host,
            kind=kind,
            horizon=horizon,
        )

    def report(
        self,
        kind: str,
        churn: ChurnSchedule,
        horizon: Optional[float] = None,
    ) -> OracleReport:
        """A full oracle report including the failure-free truth."""
        bounds = self.bounds(kind, churn, horizon=horizon)
        all_hosts = range(self.topology.num_hosts)
        truth = validity.aggregate_over(kind, all_hosts, self.values)
        return OracleReport(
            bounds=bounds,
            kind=kind,
            true_initial_value=truth,
            core_value=bounds.lower_value,
            union_value=bounds.upper_value,
        )

    def is_valid(
        self,
        value: float,
        kind: str,
        churn: ChurnSchedule,
        horizon: Optional[float] = None,
        epsilon: float = 0.0,
    ) -> bool:
        """Judge a declared answer against Single-Site Validity.

        Args:
            value: the answer declared by the protocol under test.
            kind: query kind.
            churn: churn schedule of the run.
            horizon: protocol termination time ``T``.
            epsilon: when non-zero, check the approximate variant instead.
        """
        bounds = self.bounds(kind, churn, horizon=horizon)
        if epsilon > 0.0:
            return validity.check_approximate_single_site_validity(
                value, bounds, kind, self.values, epsilon
            )
        return validity.check_single_site_validity(value, bounds, kind, self.values)

    def completeness_of(self, contributing_hosts: Sequence[int]) -> float:
        """The Completeness metric: fraction of hosts whose data contributed."""
        if self.topology.num_hosts == 0:
            return 1.0
        return len(set(contributing_hosts)) / self.topology.num_hosts
