"""Single-Site Validity: host-set bounds and validity checks.

Section 4 of the paper defines a hierarchy of correctness conditions for
aggregate queries on dynamic networks.  Snapshot Validity and Interval
Validity are impossible to guarantee; *Single-Site Validity* requires that
the declared answer equal ``q(H)`` for some host set ``H`` with
``H_C <= H <= H_U`` where

* ``H_U`` (union) is the set of hosts alive at some instant during query
  processing, and
* ``H_C`` (stable core) is the set of hosts that have at least one *stable
  path* to the querying host -- a path every host of which stays alive for
  the whole query interval.

This module computes those bounds from a topology plus a churn schedule and
checks declared answers against them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.simulation.churn import ChurnSchedule
from repro.topology.base import Topology


@dataclass(frozen=True)
class ValidityBounds:
    """The Single-Site Validity host-set bounds for one query execution.

    Attributes:
        stable_core: the lower-bound host set ``H_C``.
        union: the upper-bound host set ``H_U``.
        querying_host: the host at which the query was issued.
        lower_value: ``q(H_C)`` for the query that produced these bounds.
        upper_value: ``q(H_U)``.
    """

    stable_core: frozenset
    union: frozenset
    querying_host: int
    lower_value: float = 0.0
    upper_value: float = 0.0

    @property
    def core_size(self) -> int:
        return len(self.stable_core)

    @property
    def union_size(self) -> int:
        return len(self.union)

    def admissible_host_sets_contain(self, hosts: Iterable[int]) -> bool:
        """Whether ``H_C <= hosts <= H_U`` holds for the given host set."""
        host_set = set(hosts)
        return self.stable_core <= host_set <= self.union


def stable_core(
    topology: Topology,
    churn: ChurnSchedule,
    querying_host: int,
    horizon: Optional[float] = None,
) -> Set[int]:
    """Compute ``H_C``: hosts with a stable path to the querying host.

    Because the dynamism model only removes hosts, a path is stable over the
    query interval exactly when every host on it survives the entire
    interval, so ``H_C`` is the connected component of the querying host in
    the subgraph induced by surviving hosts.

    Args:
        topology: the initial topology of the network.
        churn: the failure schedule applied during the run.
        querying_host: the host issuing the query.
        horizon: only failures at or before this time are considered (use the
            protocol's termination time ``T``); ``None`` considers them all.
    """
    failed = {
        host
        for time, host in churn.failures
        if horizon is None or time <= horizon
    }
    if querying_host in failed:
        return set()
    survivors = set(range(topology.num_hosts)) - failed
    core: Set[int] = {querying_host}
    frontier = deque([querying_host])
    while frontier:
        host = frontier.popleft()
        for other in topology.adjacency[host]:
            if other in survivors and other not in core:
                core.add(other)
                frontier.append(other)
    return core


def union_set(
    topology: Topology,
    churn: ChurnSchedule,
    horizon: Optional[float] = None,
) -> Set[int]:
    """Compute ``H_U``: hosts alive at some instant during the interval.

    With a failure-only dynamism model every initial host was alive at time
    0, so ``H_U`` is simply all initial hosts plus any host that joined
    before the horizon.
    """
    hosts = set(range(topology.num_hosts))
    for join in churn.joins:
        if horizon is None or join.time <= horizon:
            # Joined hosts receive ids after the initial ones, in order.
            hosts.add(topology.num_hosts + churn.joins.index(join))
    return hosts


def aggregate_over(kind: str, hosts: Iterable[int], values: Sequence[float]) -> float:
    """Evaluate the aggregate ``q`` exactly over a host set (oracle-side)."""
    host_list = list(hosts)
    if not host_list:
        return 0.0
    selected = [values[h] for h in host_list]
    normalized = kind.lower()
    if normalized in ("min", "minimum"):
        return float(min(selected))
    if normalized in ("max", "maximum"):
        return float(max(selected))
    if normalized == "count":
        return float(len(selected))
    if normalized == "sum":
        return float(sum(selected))
    if normalized in ("avg", "average", "mean"):
        return float(sum(selected)) / len(selected)
    raise ValueError(f"unknown query kind: {kind!r}")


def compute_bounds(
    topology: Topology,
    values: Sequence[float],
    churn: ChurnSchedule,
    querying_host: int,
    kind: str,
    horizon: Optional[float] = None,
) -> ValidityBounds:
    """Compute the Single-Site Validity bounds and their aggregate values."""
    core = stable_core(topology, churn, querying_host, horizon=horizon)
    union = union_set(topology, churn, horizon=horizon)
    # Hosts joined during the run have no recorded value in ``values``; they
    # may or may not contribute, so the upper bound uses only hosts we have
    # values for (consistent with the paper's experiments, which do not model
    # joins).
    union_known = {h for h in union if h < len(values)}
    lower = aggregate_over(kind, core, values)
    upper = aggregate_over(kind, union_known, values)
    return ValidityBounds(
        stable_core=frozenset(core),
        union=frozenset(union_known),
        querying_host=querying_host,
        lower_value=lower,
        upper_value=upper,
    )


def check_single_site_validity(
    value: float,
    bounds: ValidityBounds,
    kind: str,
    values: Sequence[float],
) -> bool:
    """Check whether a declared answer is Single-Site Valid.

    For monotone aggregates (count, sum) a value is valid iff it lies between
    ``q(H_C)`` and ``q(H_U)``.  For min/max the admissible answers are the
    aggregates of host sets sandwiched between the bounds, which again form
    an interval between the two bound values (min is antitone, max is
    monotone in the host set).  Average is not monotone in the host set, so
    we check the necessary-and-sufficient interval condition derived from
    the extreme admissible sets.
    """
    normalized = kind.lower()
    lower, upper = bounds.lower_value, bounds.upper_value
    if normalized in ("count", "sum", "max", "maximum"):
        low, high = min(lower, upper), max(lower, upper)
        return low <= value <= high
    if normalized in ("min", "minimum"):
        low, high = min(lower, upper), max(lower, upper)
        return low <= value <= high
    if normalized in ("avg", "average", "mean"):
        # Admissible averages are convex combinations of core values and any
        # subset of the extra (union minus core) values; the reachable range
        # is bounded by the min/max attainable average.
        extra = sorted(values[h] for h in bounds.union - bounds.stable_core)
        core_vals = [values[h] for h in bounds.stable_core]
        if not core_vals and not extra:
            return value == 0.0
        candidates = []
        base_sum = sum(core_vals)
        base_count = len(core_vals)
        # Adding extras in sorted order explores the extreme averages.
        running_sum, running_count = base_sum, base_count
        if base_count:
            candidates.append(base_sum / base_count)
        for v in extra:
            running_sum += v
            running_count += 1
            candidates.append(running_sum / running_count)
        running_sum, running_count = base_sum, base_count
        for v in reversed(extra):
            running_sum += v
            running_count += 1
            candidates.append(running_sum / running_count)
        if not candidates:
            return False
        return min(candidates) - 1e-9 <= value <= max(candidates) + 1e-9
    raise ValueError(f"unknown query kind: {kind!r}")


def check_approximate_single_site_validity(
    value: float,
    bounds: ValidityBounds,
    kind: str,
    values: Sequence[float],
    epsilon: float,
) -> bool:
    """Check Approximate Single-Site Validity with multiplicative slack.

    The answer must satisfy ``(1 - eps) * q(H) <= value <= (1 + eps) * q(H)``
    for *some* admissible host set ``H``; with monotone aggregates it
    suffices to widen the exact validity interval by the factor ``eps``.
    """
    if not 0.0 <= epsilon < 1.0:
        raise ValueError("epsilon must be in [0, 1)")
    low = min(bounds.lower_value, bounds.upper_value)
    high = max(bounds.lower_value, bounds.upper_value)
    return (1.0 - epsilon) * low <= value <= (1.0 + epsilon) * high
