"""Workload generators: attribute-value distributions and churn models."""

from repro.workloads.values import (
    constant_values,
    uniform_values,
    zipf_values,
)
from repro.workloads.churn_models import (
    churn_for_fraction,
    departures_sweep,
    session_lifetimes,
)
from repro.workloads.query_mix import (
    QueryMixConfig,
    QuerySubmission,
    generate_query_mix,
)

__all__ = [
    "zipf_values",
    "uniform_values",
    "constant_values",
    "churn_for_fraction",
    "departures_sweep",
    "session_lifetimes",
    "QueryMixConfig",
    "QuerySubmission",
    "generate_query_mix",
]
