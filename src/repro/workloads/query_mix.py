"""Open-world query workloads for the multi-tenant service.

The paper's motivating scenario is a network where many users issue
aggregate queries concurrently and continuously.  This module generates
that load as an explicit, reproducible submission schedule:

* **arrivals** follow a Poisson process of configurable rate (``qps``)
  over the service interval ``[0, duration)``;
* each arrival draws a **protocol** (WILDFIRE / tree / DAG mix) and an
  **aggregate kind** from configurable weight tables, and a querying
  host uniformly at random (tenants query from wherever they sit);
* a configurable fraction of arrivals are **continuous** streams: one
  user registering a periodic query, expanded into a chain of report
  submissions separated by the period plus a configurable **think
  time** (the closed-loop pause between reading one report and asking
  for the next);
* the whole schedule is a pure function of ``(config, seed)`` -- the
  generator returns plain data, so two runs of the same mix submit the
  identical sequence and the service's determinism contract makes the
  results bit-identical too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "QuerySubmission",
    "QueryMixConfig",
    "generate_query_mix",
    "duplicate_heavy_mix",
    "adversarial_overload_mix",
    "DEFAULT_PROTOCOL_MIX",
    "DEFAULT_AGGREGATE_MIX",
]

#: Default protocol weights: the valid protocol shares the substrate with
#: the cheaper best-effort tree/DAG baselines, mirroring a population
#: where most tenants accept best-effort answers and some pay the price
#: of validity.
DEFAULT_PROTOCOL_MIX: Dict[str, float] = {
    "wildfire": 0.25,
    "spanning-tree": 0.5,
    "dag2": 0.25,
}

#: Default aggregate weights over the paper's query kinds.
DEFAULT_AGGREGATE_MIX: Dict[str, float] = {
    "count": 0.4,
    "sum": 0.2,
    "min": 0.2,
    "max": 0.2,
}


@dataclass(frozen=True)
class QuerySubmission:
    """One scheduled query submission.

    Attributes:
        time: engine time at which the query launches.
        protocol: protocol spec string (``wildfire`` / ``spanning-tree``
            / ``dagK``).
        aggregate: query kind (``count`` / ``sum`` / ``min`` / ``max``).
        querying_host: host the query is issued at.
        stream: user-stream id; reports of one continuous query share it.
        report_index: 0 for one-shot queries and the first report of a
            stream; consecutive for follow-on reports.
        continuous: whether this submission belongs to a periodic stream.
    """

    time: float
    protocol: str
    aggregate: str
    querying_host: int
    stream: int
    report_index: int = 0
    continuous: bool = False


@dataclass(frozen=True)
class QueryMixConfig:
    """Parameters of one open-world query mix.

    Attributes:
        qps: mean arrival rate of user streams (Poisson).
        duration: arrival window ``[0, duration)``; the service keeps
            running until the last launched query declares.
        protocol_mix: ``protocol spec -> weight`` (need not sum to 1).
        aggregate_mix: ``query kind -> weight``.
        continuous_fraction: probability that an arrival is a continuous
            stream rather than a one-shot query.
        period: gap between consecutive report launches of a continuous
            stream.
        reports: number of reports per continuous stream.
        think_time: extra closed-loop pause added between consecutive
            reports of one stream (0 = strictly periodic).
        max_queries: hard cap on the number of submissions (earliest
            kept); ``None`` = unbounded.
        hot_fraction: probability that an arrival is redirected to one
            of ``hot_targets`` pre-drawn (protocol, aggregate, host)
            triples -- the duplicate-heavy knob: redirected arrivals
            submit *identical* queries, which is what the shared-flood
            cache deduplicates.  0 (the default) leaves the schedule
            bit-identical to the pre-knob generator.
        hot_targets: size of the hot-triple pool.
        burst_every: inject a synchronised burst every this many
            simulated seconds (``None`` = no bursts) -- the adversarial
            overload knob: bursts arrive faster than any admission
            window can drain.
        burst_size: one-shot submissions per burst (drawn from the hot
            pool when one exists, else from the mixes).
    """

    qps: float = 1.0
    duration: float = 60.0
    protocol_mix: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_PROTOCOL_MIX))
    aggregate_mix: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_AGGREGATE_MIX))
    continuous_fraction: float = 0.15
    period: float = 10.0
    reports: int = 3
    think_time: float = 0.0
    max_queries: Optional[int] = None
    hot_fraction: float = 0.0
    hot_targets: int = 3
    burst_every: Optional[float] = None
    burst_size: int = 0

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not self.protocol_mix:
            raise ValueError("protocol_mix cannot be empty")
        if not self.aggregate_mix:
            raise ValueError("aggregate_mix cannot be empty")
        if not 0.0 <= self.continuous_fraction <= 1.0:
            raise ValueError("continuous_fraction must be in [0, 1]")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.reports < 1:
            raise ValueError("continuous streams need at least one report")
        if self.think_time < 0:
            raise ValueError("think_time cannot be negative")
        if self.max_queries is not None and self.max_queries < 1:
            raise ValueError("max_queries must be at least 1")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.hot_targets < 1:
            raise ValueError("hot_targets must be at least 1")
        if self.burst_every is not None:
            if self.burst_every <= 0:
                raise ValueError("burst_every must be positive")
            if self.burst_size < 1:
                raise ValueError("bursts need burst_size >= 1")


def duplicate_heavy_mix(**overrides) -> QueryMixConfig:
    """A mix dominated by identical WILDFIRE floods.

    Most arrivals are redirected to a two-triple hot pool, so the bulk
    of the load is the same expensive flood submitted again and again --
    the workload the shared-flood cache is built for, and the one the
    qps-vs-latency knee sweep measures.
    """
    config = dict(
        protocol_mix={"wildfire": 0.7, "spanning-tree": 0.2, "dag2": 0.1},
        aggregate_mix={"count": 0.5, "min": 0.3, "max": 0.2},
        continuous_fraction=0.05,
        hot_fraction=0.8,
        hot_targets=2,
    )
    config.update(overrides)
    return QueryMixConfig(**config)


def adversarial_overload_mix(**overrides) -> QueryMixConfig:
    """Synchronised bursts of hot queries on top of a Poisson base load.

    Every few seconds a burst of identical one-shot floods lands at one
    instant -- faster than any admission window can drain -- which is
    the workload the overload test matrix drives the shed/defer/degrade
    policies with.
    """
    config = dict(
        protocol_mix={"wildfire": 0.5, "spanning-tree": 0.35,
                      "dag2": 0.15},
        aggregate_mix={"count": 0.5, "min": 0.3, "max": 0.2},
        continuous_fraction=0.05,
        hot_fraction=0.5,
        hot_targets=2,
        burst_every=5.0,
        burst_size=12,
    )
    config.update(overrides)
    return QueryMixConfig(**config)


def _weighted_choice(rng: random.Random,
                     table: Dict[str, float]) -> str:
    # Sorted iteration keeps the draw independent of dict construction
    # order, so two configs with equal weights generate equal mixes.
    keys = sorted(table)
    total = float(sum(table[k] for k in keys))
    if total <= 0:
        raise ValueError("mix weights must sum to a positive value")
    pick = rng.random() * total
    acc = 0.0
    for key in keys:
        acc += table[key]
        if pick < acc:
            return key
    return keys[-1]


def generate_query_mix(
    num_hosts: int,
    config: Optional[QueryMixConfig] = None,
    seed: int = 0,
    **overrides,
) -> List[QuerySubmission]:
    """Generate the submission schedule of one open-world query mix.

    Args:
        num_hosts: number of hosts querying hosts are drawn from.
        config: mix parameters; keyword ``overrides`` build/replace one
            (``generate_query_mix(n, qps=5.0, duration=200.0)``).
        seed: RNG seed; the schedule is a pure function of
            ``(num_hosts, config, seed)``.

    Returns:
        Submissions sorted by launch time (ties keep arrival order).
    """
    if num_hosts < 1:
        raise ValueError("need at least one host to query from")
    if config is None:
        config = QueryMixConfig(**overrides)
    elif overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    rng = random.Random(f"{seed}:query-mix")
    # The hot/burst knobs draw from *separate* streams so schedules with
    # the knobs off stay bit-identical to the pre-knob generator (the
    # sharded drive and the goldens depend on that).
    hot_pool: List[tuple] = []
    hot_rng = None
    if config.hot_fraction > 0:
        hot_rng = random.Random(f"{seed}:query-mix:hot")
        hot_pool = [
            (_weighted_choice(hot_rng, config.protocol_mix),
             _weighted_choice(hot_rng, config.aggregate_mix),
             hot_rng.randrange(num_hosts))
            for _ in range(config.hot_targets)
        ]
    submissions: List[QuerySubmission] = []
    stream = 0
    now = rng.expovariate(config.qps)
    while now < config.duration:
        protocol = _weighted_choice(rng, config.protocol_mix)
        aggregate = _weighted_choice(rng, config.aggregate_mix)
        host = rng.randrange(num_hosts)
        continuous = rng.random() < config.continuous_fraction
        if hot_rng is not None and hot_rng.random() < config.hot_fraction:
            protocol, aggregate, host = hot_pool[
                hot_rng.randrange(len(hot_pool))]
        reports = config.reports if continuous else 1
        launch = now
        for index in range(reports):
            submissions.append(QuerySubmission(
                time=round(launch, 9),
                protocol=protocol,
                aggregate=aggregate,
                querying_host=host,
                stream=stream,
                report_index=index,
                continuous=continuous,
            ))
            launch += config.period + config.think_time
        stream += 1
        now += rng.expovariate(config.qps)
    if config.burst_every is not None:
        burst_rng = random.Random(f"{seed}:query-mix:burst")
        burst_time = config.burst_every
        while burst_time < config.duration:
            for _ in range(config.burst_size):
                if hot_pool:
                    protocol, aggregate, host = hot_pool[
                        burst_rng.randrange(len(hot_pool))]
                else:
                    protocol = _weighted_choice(burst_rng,
                                                config.protocol_mix)
                    aggregate = _weighted_choice(burst_rng,
                                                 config.aggregate_mix)
                    host = burst_rng.randrange(num_hosts)
                submissions.append(QuerySubmission(
                    time=round(burst_time, 9),
                    protocol=protocol,
                    aggregate=aggregate,
                    querying_host=host,
                    stream=stream,
                ))
                stream += 1
            burst_time += config.burst_every
    submissions.sort(key=lambda s: (s.time, s.stream, s.report_index))
    if config.max_queries is not None:
        submissions = submissions[:config.max_queries]
    return submissions
