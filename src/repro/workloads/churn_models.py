"""Churn workload helpers built on top of the simulation churn schedules."""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.simulation.churn import ChurnSchedule, uniform_failure_schedule


def churn_for_fraction(
    num_hosts: int,
    fraction: float,
    start: float,
    end: float,
    seed: int = 0,
    protect: Optional[Iterable[int]] = None,
) -> ChurnSchedule:
    """Fail a given fraction of the network at a uniform rate.

    A convenience wrapper over :func:`uniform_failure_schedule` used by the
    experiment drivers ("nearly 10% of the hosts leaving the network").
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    num_failures = int(round(num_hosts * fraction))
    return uniform_failure_schedule(
        candidates=range(num_hosts),
        num_failures=num_failures,
        start=start,
        end=end,
        seed=seed,
        protect=protect,
    )


def departures_sweep(
    num_hosts: int,
    departures: Sequence[int],
    start: float,
    end: float,
    seed: int = 0,
    protect: Optional[Iterable[int]] = None,
) -> List[ChurnSchedule]:
    """One churn schedule per requested departure count R.

    The paper sweeps R from 256 to 4096; each point gets an independent
    random victim set derived from ``seed`` and the departure count.
    """
    schedules = []
    for index, num_failures in enumerate(departures):
        schedules.append(
            uniform_failure_schedule(
                candidates=range(num_hosts),
                num_failures=num_failures,
                start=start,
                end=end,
                seed=seed + index * 7919,
                protect=protect,
            )
        )
    return schedules


def session_lifetimes(
    num_hosts: int,
    median_lifetime: float,
    seed: int = 0,
) -> List[float]:
    """Sample per-host session lifetimes with the given median.

    Gnutella measurements cited by the paper put the median session at about
    60 minutes; this helper draws exponential lifetimes with that median so
    continuous-query experiments can model realistic membership dynamics.
    """
    if median_lifetime <= 0:
        raise ValueError("median_lifetime must be positive")
    import math

    mean = median_lifetime / math.log(2)
    rng = random.Random(seed)
    return [rng.expovariate(1.0 / mean) for _ in range(num_hosts)]
