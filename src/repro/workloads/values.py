"""Attribute-value distributions.

Each host in the paper's experiments possesses an attribute value drawn from
a Zipfian distribution on the range [10, 500] (Section 6.1).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import List


def zipf_values(
    num_hosts: int,
    low: int = 10,
    high: int = 500,
    exponent: float = 1.0,
    seed: int = 0,
) -> List[int]:
    """Draw one Zipf-distributed integer value per host from [low, high].

    The value ``low + k`` is drawn with probability proportional to
    ``1 / (k + 1) ** exponent``, so small values are common and large values
    rare, matching the skew the paper assumes.

    Args:
        num_hosts: number of values to draw.
        low: smallest possible value (paper: 10).
        high: largest possible value (paper: 500).
        exponent: Zipf exponent (1.0 gives the classic harmonic weighting).
        seed: RNG seed.
    """
    if num_hosts < 0:
        raise ValueError("num_hosts must be non-negative")
    if high < low:
        raise ValueError("high must be at least low")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")

    support = high - low + 1
    weights = [1.0 / ((rank + 1) ** exponent) for rank in range(support)]
    cumulative: List[float] = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)

    rng = random.Random(seed)
    values = []
    for _ in range(num_hosts):
        target = rng.random() * total
        index = bisect_left(cumulative, target)
        index = min(index, support - 1)
        values.append(low + index)
    return values


def uniform_values(
    num_hosts: int,
    low: int = 10,
    high: int = 500,
    seed: int = 0,
) -> List[int]:
    """Draw one uniformly distributed integer value per host from [low, high]."""
    if num_hosts < 0:
        raise ValueError("num_hosts must be non-negative")
    if high < low:
        raise ValueError("high must be at least low")
    rng = random.Random(seed)
    return [rng.randint(low, high) for _ in range(num_hosts)]


def constant_values(num_hosts: int, value: int = 1) -> List[int]:
    """Every host holds the same value (count queries reduce to this)."""
    if num_hosts < 0:
        raise ValueError("num_hosts must be non-negative")
    return [value] * num_hosts
