"""Live metrics streaming: JSON Lines samples while a run is in flight.

The metrics layer so far was end-of-run only: a 60-minute sharded run
emitted nothing until it finished.  This module adds the in-flight
counterpart, in three independently usable pieces:

* :class:`MetricsStreamWriter` -- an append-only JSON Lines sink: one
  ``meta`` header line, one ``sample`` line per snapshot (monotonic
  ``seq`` plus wall-clock ``elapsed_s``), an optional ``final`` line.
  Each line is flushed as written, so ``tail -f`` on the file follows a
  live run.
* :class:`PeriodicSampler` -- a daemon thread that invokes a callback
  every ``interval`` wall-clock seconds until stopped; the thread only
  *reads* (pull-based metrics, the shared progress board), so the run
  being sampled stays bit-identical -- the same argument as the tracer's
  observe-only contract.
* :class:`ShardProgressBoard` -- a tiny fork-shared array of per-shard
  ``(epoch, simulated time)`` cells.  Workers store their slot once per
  epoch (two plain float stores, no locks: one writer per slot, readers
  tolerate tearing between the two fields); the sampler thread in the
  coordinator reads all slots for the per-shard progress gauges the
  ISSUE's long-run monitoring asks for.  Bound process-wide via
  :func:`set_progress_board`, mirroring ``set_default_tracer``.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, Optional

__all__ = [
    "MetricsStreamWriter",
    "PeriodicSampler",
    "ShardProgressBoard",
    "current_rss_mb",
    "default_progress_board",
    "read_metrics_stream",
    "set_progress_board",
    "progress_board",
]


def current_rss_mb() -> Optional[float]:
    """The process's *current* resident set size in MiB (None off-Linux).

    The scale benchmarks report the ``VmHWM`` high-water mark; a live
    stream wants the instantaneous ``VmRSS`` so memory growth (and
    release) shows up as a time series.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return round(int(line.split()[1]) / 1024.0, 1)
    except OSError:  # pragma: no cover - non-Linux platform
        pass
    return None


class MetricsStreamWriter:
    """Append-only JSON Lines metrics stream with a metadata header.

    Line shapes (``sort_keys`` for stable artifacts)::

        {"type": "meta", "stream": "metrics", ...caller metadata}
        {"type": "sample", "seq": 0, "elapsed_s": 0.5, ...payload}
        {"type": "final", "seq": N, "elapsed_s": T, ...payload}

    ``seq`` is 0-based and strictly increasing; ``elapsed_s`` is
    wall-clock seconds since the writer was opened.  The reserved keys
    (``type``/``seq``/``elapsed_s``) win over payload keys of the same
    name so a malformed payload cannot corrupt the framing.
    """

    __slots__ = ("path", "_handle", "_seq", "_start")

    def __init__(self, path: str,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        self.path = path
        self._handle = open(path, "w")
        self._seq = 0
        self._start = perf_counter()
        header = dict(meta or {})
        header["type"] = "meta"
        header.setdefault("stream", "metrics")
        self._write(header)

    @property
    def samples_written(self) -> int:
        return self._seq

    def _write(self, row: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(row, sort_keys=True) + "\n")
        # Flush per line: the whole point is that the file is readable
        # while the run is still in flight.
        self._handle.flush()

    def _emit(self, kind: str, payload: Optional[Dict[str, Any]]) -> None:
        row = dict(payload or {})
        row["type"] = kind
        row["seq"] = self._seq
        row["elapsed_s"] = round(perf_counter() - self._start, 3)
        self._seq += 1
        self._write(row)

    def sample(self, payload: Optional[Dict[str, Any]] = None) -> None:
        """Append one ``sample`` line."""
        self._emit("sample", payload)

    def final(self, payload: Optional[Dict[str, Any]] = None) -> None:
        """Append the closing ``final`` line (end-of-run summary)."""
        self._emit("final", payload)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "MetricsStreamWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_metrics_stream(path: str) -> Dict[str, Any]:
    """Parse a :class:`MetricsStreamWriter` file, tolerating a torn tail.

    A stream written by an interrupted run is *valid up to its last
    line*: every line was flushed whole except possibly the one being
    written when the process died.  This reader therefore drops a
    non-JSON **last** line (reporting it via ``truncated``) instead of
    failing, while a bad line anywhere *before* the end still raises
    ``ValueError`` -- that is real corruption, not interruption.

    Returns a dict with:

    * ``meta`` -- the header row (``None`` if the run died before it);
    * ``rows`` -- every non-meta row, in order (samples and final);
    * ``has_final`` -- whether a ``final`` frame closed the stream;
    * ``truncated`` -- ``(line_number, error)`` for a dropped torn tail,
      else ``None``.
    """
    meta: Optional[Dict[str, Any]] = None
    rows = []
    truncated = None
    with open(path) as handle:
        numbered = [(number, line.strip())
                    for number, line in enumerate(handle, start=1)
                    if line.strip()]
    for index, (number, line) in enumerate(numbered):
        try:
            row = json.loads(line)
        except ValueError as exc:
            if index == len(numbered) - 1:
                truncated = (number, str(exc))
                break
            raise ValueError(
                f"{path}:{number}: bad JSON line: {exc}") from exc
        if row.get("type") == "meta" and meta is None:
            meta = row
        else:
            rows.append(row)
    return {
        "meta": meta,
        "rows": rows,
        "has_final": any(row.get("type") == "final" for row in rows),
        "truncated": truncated,
    }


class PeriodicSampler:
    """Invoke ``callback()`` every ``interval`` wall seconds until stopped.

    The callback runs on a daemon thread; an exception stops the
    sampling loop and is re-raised from :meth:`stop` (a silent dead
    sampler would masquerade as "the run emitted nothing").  ``stop``
    fires one last immediate callback by default so short runs (shorter
    than one interval) still produce at least one sample.
    """

    def __init__(self, interval: float, callback: Callable[[], None]) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = float(interval)
        self._callback = callback
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._callback()
            except BaseException as exc:  # noqa: BLE001 - re-raised in stop()
                self._error = exc
                return

    def start(self) -> "PeriodicSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self, final_sample: bool = True) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join()
            self._thread = None
        if self._error is not None:
            error = self._error
            self._error = None
            raise error
        if final_sample:
            self._callback()

    def __enter__(self) -> "PeriodicSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        # On an exception in the body, drop the final sample and swallow
        # any sampler error -- the body's exception is the real story.
        try:
            self.stop(final_sample=exc_type is None)
        except BaseException:
            if exc_type is None:
                raise


class ShardProgressBoard:
    """Fork-shared per-shard ``(epoch, simulated time)`` progress cells."""

    __slots__ = ("shards", "cells")

    def __init__(self, shards: int) -> None:
        from multiprocessing.sharedctypes import RawArray

        if shards < 1:
            raise ValueError("a progress board needs at least one shard")
        self.shards = int(shards)
        #: Flat doubles: ``cells[2k]`` = epochs completed by shard ``k``,
        #: ``cells[2k + 1]`` = its last barrier's simulated time.  A
        #: RawArray (no lock) survives ``fork`` by inheritance -- exactly
        #: the start method the sharded lane is gated to.
        self.cells = RawArray("d", 2 * self.shards)

    def snapshot(self) -> Dict[str, Any]:
        """The board as plain lists (JSON-safe, read without locking)."""
        cells = self.cells
        return {
            "shards": self.shards,
            "epochs": [int(cells[2 * k]) for k in range(self.shards)],
            "sim_time": [round(cells[2 * k + 1], 6)
                         for k in range(self.shards)],
        }


# ---------------------------------------------------------------------------
# Process-wide board binding (mirrors trace.set_default_tracer)
# ---------------------------------------------------------------------------
#: The process-wide progress board; ``None`` = no live progress wanted.
#: The sharded coordinator resolves this once per run, before forking.
_progress_board: Optional[ShardProgressBoard] = None


def default_progress_board() -> Optional[ShardProgressBoard]:
    """The process-wide progress board (``None`` = disabled)."""
    return _progress_board


def set_progress_board(
        board: Optional[ShardProgressBoard]) -> Optional[ShardProgressBoard]:
    """Bind the process-wide progress board; returns the previous one."""
    global _progress_board
    if board is not None and not isinstance(board, ShardProgressBoard):
        raise TypeError(
            f"expected a ShardProgressBoard or None, got {board!r}")
    previous = _progress_board
    _progress_board = board
    return previous


@contextmanager
def progress_board(
        board: Optional[ShardProgressBoard]
) -> Iterator[Optional[ShardProgressBoard]]:
    """Bind ``board`` as the process default for the ``with`` body."""
    previous = set_progress_board(board)
    try:
        yield board
    finally:
        set_progress_board(previous)
