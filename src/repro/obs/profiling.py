"""Profiling hooks: cProfile + tracemalloc capture and phase timing.

Generalises what ``repro bench --profile`` used to do inline (profile,
print top-25, discard) into a reusable capture object whose results can
be *kept*: :meth:`ProfileCapture.dump` writes a binary pstats file
loadable with ``pstats.Stats(path)`` plus a small JSON sidecar with the
headline numbers, and :class:`PhaseTimer` provides the phase-tagged
wall-clock sections the scale/service benchmarks report.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import sys
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["ProfileCapture", "PhaseTimer"]


class ProfileCapture:
    """One profiling window: cProfile always, tracemalloc on request.

    >>> capture = ProfileCapture(trace_malloc=True)
    >>> with capture:
    ...     work()
    >>> capture.dump("profile.pstats")   # + profile.pstats.json sidecar
    >>> capture.print_stats(25)

    tracemalloc carries real overhead (every allocation is traced), so
    it is opt-in; wall-clock numbers from a capture with it enabled are
    not comparable to clean runs.
    """

    def __init__(self, trace_malloc: bool = False) -> None:
        self.profiler = cProfile.Profile()
        self.trace_malloc = trace_malloc
        self.elapsed: Optional[float] = None
        self.peak_traced_bytes: Optional[int] = None
        self._started: Optional[float] = None

    # ------------------------------------------------------------------
    # Capture window
    # ------------------------------------------------------------------
    def start(self) -> "ProfileCapture":
        if self.trace_malloc:
            import tracemalloc

            tracemalloc.start()
        self._started = time.perf_counter()
        self.profiler.enable()
        return self

    def stop(self) -> "ProfileCapture":
        self.profiler.disable()
        if self._started is not None:
            self.elapsed = time.perf_counter() - self._started
        if self.trace_malloc:
            import tracemalloc

            _, self.peak_traced_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        return self

    def __enter__(self) -> "ProfileCapture":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def print_stats(self, limit: int = 25, stream=None) -> None:
        """Top ``limit`` functions by cumulative time (default stderr)."""
        stats = pstats.Stats(self.profiler,
                             stream=stream if stream is not None
                             else sys.stderr)
        stats.sort_stats("cumulative").print_stats(limit)

    def top_functions(self, limit: int = 10) -> List[Dict[str, Any]]:
        """The hottest functions by cumulative time, as plain dicts."""
        stats = pstats.Stats(self.profiler, stream=io.StringIO())
        stats.sort_stats("cumulative")
        rows: List[Dict[str, Any]] = []
        for func in stats.fcn_list[:limit]:  # type: ignore[attr-defined]
            cc, nc, tt, ct, _ = stats.stats[func]  # type: ignore[attr-defined]
            filename, line, name = func
            rows.append({
                "function": f"{filename}:{line}({name})",
                "calls": nc,
                "total_seconds": round(tt, 6),
                "cumulative_seconds": round(ct, 6),
            })
        return rows

    def dump(self, path: str, limit: int = 25) -> str:
        """Write a ``pstats.Stats``-loadable binary dump plus a sidecar.

        The binary profile lands at ``path`` (load it back with
        ``pstats.Stats(path)`` or ``snakeviz``); the headline numbers --
        wall-clock, traced-allocation peak when tracemalloc ran, and the
        top ``limit`` functions -- land beside it at ``path + ".json"``.
        Returns ``path``.
        """
        self.profiler.dump_stats(path)
        sidecar = {
            "elapsed_seconds": self.elapsed,
            "peak_traced_bytes": self.peak_traced_bytes,
            "top_functions": self.top_functions(limit),
        }
        with open(path + ".json", "w") as handle:
            json.dump(sidecar, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return path


class PhaseTimer:
    """Named wall-clock sections for phase-tagged benchmark timing.

    >>> timer = PhaseTimer()
    >>> with timer.section("generate"):
    ...     build_topology()
    >>> with timer.section("simulate"):
    ...     run()
    >>> timer.seconds("simulate")

    Re-entering a section accumulates.  When a tracer is attached, each
    completed section is also emitted as a ``phase`` trace record, so
    benchmark phases appear alongside simulation events in Perfetto.
    """

    def __init__(self, tracer=None) -> None:
        self._sections: List[Tuple[str, float, float]] = []
        self._tracer = tracer
        self._origin = time.perf_counter()

    @contextmanager
    def section(self, name: str, detail: Any = None) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            self._sections.append((name, start - self._origin, end - start))
            if self._tracer is not None:
                self._tracer.phase(name, start - self._origin, end - start,
                                   detail=detail)

    def seconds(self, name: str) -> float:
        """Total wall-clock seconds accumulated under ``name``."""
        return sum(duration for section, _, duration in self._sections
                   if section == name)

    def as_dict(self) -> Dict[str, float]:
        """Accumulated seconds per section, in first-seen order."""
        out: Dict[str, float] = {}
        for name, _, duration in self._sections:
            out[name] = out.get(name, 0.0) + duration
        return out
