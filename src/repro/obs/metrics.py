"""Metrics registry: counters, gauges, histograms, and pull collectors.

Unlike the trace layer (which observes individual events as they
happen), metrics are *pull-based*: every number the collectors report is
computed on demand from structures the engines already maintain -- the
cost sinks, the calendar queue's day buckets, the service's session
table -- so keeping metrics costs the hot loops nothing at all.

:class:`MetricsRegistry` is the common vocabulary: named counters,
gauges and histograms with a :meth:`~MetricsRegistry.snapshot` that
renders everything as one stable (sorted-key) dict, ready for JSON
artifacts, the ``repro serve --metrics-out`` flag, and the CI metrics
upload.  The ``collect_*`` functions wire the registry to the seams the
repo already has:

* :func:`collect_run_metrics` -- one solo run's :class:`StatsSink`.
* :func:`collect_queue_metrics` -- calendar-queue depth and day-bucket
  occupancy (:meth:`EventQueue.occupancy`).
* :func:`collect_service_metrics` -- the multi-tenant service: engine
  tallies, session residency, per-tenant late-delivery/message counts,
  per-tenant pending queue depth.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_run_metrics",
    "collect_queue_metrics",
    "collect_service_metrics",
    "collect_shard_metrics",
    "worker_utilisation",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward")
        self.value += amount


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Any = 0

    def set(self, value: Any) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed samples (count/sum/min/max/mean).

    O(1) per observation and O(1) resident -- the full sample list is
    never kept, matching the bounded-memory discipline of the streaming
    stats sink.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else None,
        }


class MetricsRegistry:
    """Create-or-get registry of named metrics with a stable snapshot."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Any]:
        """Every metric as one flat dict, keys sorted for stable JSON."""
        out: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.as_dict()
            else:
                out[name] = metric.value
        return out


# ---------------------------------------------------------------------------
# Pull collectors
# ---------------------------------------------------------------------------
def collect_run_metrics(costs, registry: Optional[MetricsRegistry] = None,
                        prefix: str = "run") -> MetricsRegistry:
    """Fold one run's :class:`StatsSink` into a registry.

    Accepts either a sink or anything with a ``.costs`` attribute (a
    :class:`SimulationResult` / :class:`ProtocolRunResult`).
    """
    sink = getattr(costs, "costs", costs)
    registry = registry if registry is not None else MetricsRegistry()
    registry.counter(f"{prefix}.messages_sent").inc(sink.messages_sent)
    registry.counter(f"{prefix}.wireless_transmissions").inc(
        sink.wireless_transmissions)
    registry.counter(f"{prefix}.dropped_messages").inc(sink.dropped_messages)
    registry.gauge(f"{prefix}.computation_cost").set(sink.computation_cost)
    registry.gauge(f"{prefix}.time_cost").set(sink.time_cost)
    registry.gauge(f"{prefix}.accounting_bytes").set(sink.footprint_bytes())
    return registry


def collect_queue_metrics(queue, registry: Optional[MetricsRegistry] = None,
                          prefix: str = "queue") -> MetricsRegistry:
    """Calendar-queue depth and day-bucket occupancy gauges.

    ``occupancy()`` reports ``None`` for the horizon fields of an empty
    queue ("no next event" is not a number); those are skipped rather
    than gauged so snapshots stay numeric.
    """
    registry = registry if registry is not None else MetricsRegistry()
    occupancy = queue.occupancy()
    for key, value in occupancy.items():
        if value is None:
            continue
        registry.gauge(f"{prefix}.{key}").set(value)
    return registry


def collect_shard_metrics(result, registry: Optional[MetricsRegistry] = None,
                          prefix: str = "shard") -> MetricsRegistry:
    """Per-shard lane metrics from a sharded-lane run's result.

    Accepts a :class:`SimulationResult` / :class:`ProtocolRunResult`
    whose ``extra["sharded"]`` block the coordinator filled in; a result
    from any other lane folds nothing.  Emits one gauge per shard per
    numeric metric (``shard.2.barrier_wait_s``, ...) plus the shard
    count, so barrier skew and exchange volume show up next to the run
    metrics in the same snapshot.  When the block carries the per-epoch
    ``timeline``, aggregate health gauges ride along too: per-shard
    compute totals, barrier-overhead fractions, straggler counts, and
    the worst epoch's skew.
    """
    registry = registry if registry is not None else MetricsRegistry()
    info = getattr(result, "extra", None) or {}
    sharded = info.get("sharded")
    if not sharded:
        return registry
    registry.gauge(f"{prefix}.shards").set(sharded["shards"])
    for worker in sharded.get("workers", ()):
        shard = worker.get("shard")
        for key, value in sorted(worker.items()):
            if key == "shard" or not isinstance(value, (int, float)):
                continue
            registry.gauge(f"{prefix}.{shard}.{key}").set(value)
    timeline = sharded.get("timeline")
    if timeline:
        from repro.obs.timeline import ShardTimeline

        health = ShardTimeline(sharded["shards"], timeline).health()
        registry.gauge(f"{prefix}.epochs").set(health["epochs"])
        worst = health["worst_epoch"]
        if worst is not None:
            registry.gauge(f"{prefix}.worst_epoch").set(worst["epoch"])
            registry.gauge(f"{prefix}.worst_skew_s").set(worst["skew_s"])
        for k in range(health["shards"]):
            gauge = registry.gauge
            gauge(f"{prefix}.{k}.compute_s").set(health["compute_s"][k])
            gauge(f"{prefix}.{k}.barrier_overhead").set(
                health["barrier_overhead"][k])
            gauge(f"{prefix}.{k}.straggler_epochs").set(
                health["straggler_epochs"][k])
    return registry


def collect_service_metrics(service) -> Dict[str, Any]:
    """One self-describing metrics snapshot of a live QueryService.

    Includes the engine's cumulative tallies, calendar-queue occupancy,
    session residency (virtual time each session stays live) and the
    per-tenant breakdown -- pending queue depth, late deliveries and
    message counts per query id -- that the overload-control roadmap
    item needs as its admission signal.
    """
    engine = service.engine
    registry = MetricsRegistry()
    registry.counter("service.messages_sent").inc(engine.messages_sent)
    registry.counter("service.dropped_messages").inc(engine.dropped_messages)
    registry.counter("service.late_messages").inc(engine.late_messages)
    registry.counter("service.events_processed").inc(engine.events_processed)
    registry.gauge("service.active_sessions").set(engine.active_sessions)
    registry.gauge("service.peak_active_sessions").set(
        engine.max_active_sessions)
    registry.gauge("service.retired_sessions").set(len(engine.retired_order))
    registry.gauge("service.pending_queries").set(
        sum(1 for s in service._sessions.values()
            if s.status.value == "pending"))
    collect_queue_metrics(engine._queue, registry, prefix="service.queue")

    # Control-plane gauges (only when the hooks are installed, so
    # pre-sharing snapshots keep their exact key set).
    sharing = engine.sharing
    if sharing is not None:
        registry.counter("service.cache.hits").inc(sharing.hits)
        registry.counter("service.cache.leads").inc(sharing.leads)
        registry.gauge("service.cache.inflight").set(
            sharing.inflight_computations)
        registry.gauge("service.cache.recent_answers").set(
            sharing.recent_answers)
        registry.gauge("service.cache.hit_rate").set(
            round(sharing.hit_rate, 4))
    admission = engine.admission
    if admission is not None:
        registry.counter("service.admission.shed").inc(admission.shed)
        registry.counter("service.admission.degraded").inc(
            admission.degraded)
        registry.counter("service.admission.deferrals").inc(
            admission.defer_events)
        registry.gauge("service.admission.deferred_pending").set(
            admission.deferred_pending)

    residency = registry.histogram("service.session_residency")
    tenants: Dict[str, Dict[str, Any]] = {}
    pending_by_query = engine.queue_depth_by_session()
    late_by_query = engine.late_by_query
    for qid, session in sorted(service._sessions.items()):
        if session.status.value in ("running", "done"):
            residency.observe(session.termination)
        sink = session.sink
        tenants[str(qid)] = {
            "status": session.status.value,
            "protocol": session.protocol.name,
            "queue_depth": pending_by_query.get(qid, 0),
            "late_messages": late_by_query.get(qid, 0),
            "messages_sent": (sink.messages_sent
                              if sink is not None else 0),
            "residency": session.termination,
        }
    snapshot = registry.snapshot()
    snapshot["service.tenants"] = tenants
    snapshot["service.retired_order"] = list(engine.retired_order)
    return snapshot


def worker_utilisation(report) -> float:
    """Fraction of the worker pool's wall-clock budget spent in trials.

    ``sum(per-trial elapsed) / (batch elapsed * workers)`` over the
    trials a :class:`RunReport` actually executed; cached trials cost no
    worker time and are excluded.  1.0 means the pool never idled.
    """
    if report.elapsed <= 0 or report.workers <= 0:
        return 0.0
    busy = sum(r.elapsed for r in report.results if not r.cached)
    return min(1.0, busy / (report.elapsed * report.workers))
