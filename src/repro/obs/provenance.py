"""Per-estimate provenance: which hosts' values reached the declaration.

The paper's Section 4 validity semantics ask, of a declared aggregate,
*whose* values it actually absorbed -- the stable core must be covered,
hosts lost to churn may legitimately be missing.  The experiments so far
answered that question post hoc, by diffing declared values against the
Oracle's bounds.  This module makes the answer a first-class artifact:
an opt-in tracer records every delivery (unsampled) plus churn, and a
reverse temporal-reachability pass over that record yields the
contribution set of the declared estimate.

The reachability rule mirrors how aggregation protocols actually move
state: host ``s`` contributes iff some message chain carries its value
to the querying host ``q`` by the termination time ``T``.  Processing
deliveries in decreasing send-time order, ``deadline[d]`` is the latest
instant at which information arriving at ``d`` still reaches ``q`` in
time; a delivery ``s -> d`` with ``delivered <= deadline[d]`` therefore
extends ``deadline[s]`` to at least its send instant.  Equal send and
deadline instants qualify because the engines order deliveries before
timer fires at the same timestamp, so a value arriving exactly at a
host's forwarding deadline is folded into the outgoing message.

This is a *may-contribute* relation: it is exact for flooding protocols
(WILDFIRE forwards every new piece of state) and an upper bound for
protocols that fold selectively.  Its complement is sound for all of
them -- a host outside the set cannot have influenced the declaration,
which is the direction validity accounting needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Tuple

from repro.obs.trace import Tracer

__all__ = [
    "ProvenanceTracer",
    "EstimateProvenance",
    "run_protocol_with_provenance",
]


class ProvenanceTracer(Tracer):
    """Records every delivery and churn event, unsampled and unbounded.

    Meant for validity-accounting runs at experiment scale (hundreds to
    low thousands of hosts); for 100k+ hosts use the sampled
    :class:`~repro.obs.trace.RingTracer` instead.
    """

    __slots__ = ("deliveries", "failures", "joins")

    def __init__(self) -> None:
        self.deliveries: List[Tuple[int, int, float, float]] = []
        self.failures: List[Tuple[float, int]] = []
        self.joins: List[Tuple[float, int]] = []

    def deliver(self, time, sender, dest, kind, chain_depth, sent_at=0.0,
                query_id=0):
        self.deliveries.append((sender, dest, sent_at, time))

    def fail(self, time, host):
        self.failures.append((time, host))

    def join(self, time, host):
        self.joins.append((time, host))

    def provenance(self, querying_host: int, termination: float,
                   num_hosts: int) -> "EstimateProvenance":
        """Reverse temporal reachability over the recorded deliveries."""
        deadline: Dict[int, float] = {querying_host: termination}
        # Decreasing send time: when a delivery is examined, every chain
        # segment that could consume its payload (all later sends) has
        # already been processed, so ``deadline[dest]`` is final enough
        # to judge it -- the classic offline pass for temporal graphs.
        for sender, dest, sent_at, delivered_at in sorted(
                self.deliveries, key=lambda r: r[2], reverse=True):
            dest_deadline = deadline.get(dest)
            if dest_deadline is None or delivered_at > dest_deadline:
                continue
            known = deadline.get(sender)
            if known is None or sent_at > known:
                deadline[sender] = sent_at
        contributors = frozenset(h for h in deadline if h < num_hosts)
        failed = frozenset(h for _, h in self.failures if h < num_hosts)
        lost = frozenset(h for h in range(num_hosts)
                         if h not in contributors)
        return EstimateProvenance(
            querying_host=querying_host,
            termination=termination,
            num_hosts=num_hosts,
            contributors=contributors,
            failed=failed,
            lost=lost,
            deliveries=len(self.deliveries),
        )


@dataclass(frozen=True)
class EstimateProvenance:
    """The contribution DAG of one declared estimate, reduced to sets.

    Attributes:
        querying_host: the host whose declaration is attributed.
        termination: the nominal termination time the attribution used.
        num_hosts: initial network size (joined hosts are excluded --
            the paper's validity semantics range over initial hosts).
        contributors: hosts whose value may have reached the declaration.
        failed: hosts that failed during the run.
        lost: initial hosts absent from the contribution set; split by
            :attr:`lost_to_churn` / :attr:`lost_alive` into hosts the
            validity semantics excuse (they failed) and hosts whose
            absence indicts the protocol (they stayed alive).
        deliveries: number of recorded delivery edges.
    """

    querying_host: int
    termination: float
    num_hosts: int
    contributors: FrozenSet[int]
    failed: FrozenSet[int]
    lost: FrozenSet[int]
    deliveries: int = 0

    @property
    def lost_to_churn(self) -> FrozenSet[int]:
        """Missing hosts that failed -- legitimately excludable."""
        return self.lost & self.failed

    @property
    def lost_alive(self) -> FrozenSet[int]:
        """Missing hosts that never failed.

        For exact aggregation (the tree protocols with exact combiners)
        a non-empty set is a validity violation.  For sketch-based
        flooding it also contains hosts whose sketch bits were subsumed
        by earlier folds -- they truly did not change the declared
        sketch, so the complement stays sound but is not a violation by
        itself."""
        return self.lost - self.failed

    def as_dict(self) -> Dict[str, Any]:
        return {
            "querying_host": self.querying_host,
            "termination": self.termination,
            "num_hosts": self.num_hosts,
            "contributors": len(self.contributors),
            "failed": len(self.failed),
            "lost": len(self.lost),
            "lost_to_churn": len(self.lost_to_churn),
            "lost_alive": len(self.lost_alive),
            "deliveries": self.deliveries,
        }


def run_protocol_with_provenance(*args, **kwargs):
    """Run a protocol solo with provenance recording switched on.

    Same signature as :func:`repro.protocols.base.run_protocol` (minus
    ``tracer``); returns ``(result, provenance)``.  The tracer observes
    but never perturbs, so ``result`` is bit-identical to an untraced
    run with the same arguments.
    """
    from repro.protocols.base import run_protocol

    tracer = ProvenanceTracer()
    result = run_protocol(*args, tracer=tracer, **kwargs)
    topology = args[1] if len(args) > 1 else kwargs["topology"]
    provenance = tracer.provenance(
        result.querying_host, result.termination_time, topology.num_hosts)
    return result, provenance
