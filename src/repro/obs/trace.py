"""Structured trace layer: typed simulation events in a bounded ring.

The paper's evaluation is entirely about *observing* a distributed
aggregate computation; this module is the substrate that makes a run
observable without perturbing it.  A :class:`Tracer` receives typed
records at the engine's seams -- message send/deliver, timer fire, host
fail/join, session submit/declare/retire, phase transitions -- and the
concrete :class:`RingTracer` files them into a bounded ring buffer with
per-kind sampling so 100k-1M-host runs stay memory-capped.

Zero-cost-when-disabled contract
--------------------------------
Engines hold ``tracer = None`` when tracing is off and guard every
record point with a single ``if tracer is not None`` pointer check; no
record object is built, no method is called, and the goldens stay
bit-identical because a tracer only ever *observes* -- it never touches
RNG streams, event ordering, or cost accounting.

A process-wide default can be bound once per run (mirroring
``repro.simulation.stats.set_default_stats_mode``): engines resolve
:func:`default_tracer` in their constructor, never per event.

Exporters
---------
:meth:`RingTracer.export_jsonl` writes one JSON object per record with a
metadata header line; :meth:`RingTracer.export_chrome` writes the Chrome
trace-event format (``{"traceEvents": [...]}``), which loads directly in
Perfetto / ``chrome://tracing`` -- simulation seconds are mapped onto
microseconds, hosts onto threads, sessions onto async spans.

Multi-process merge
-------------------
A distributed run (the sharded lane) traces in every worker and merges
in the coordinator: each worker ships its ring's raw tuples plus exact
counts over its result pipe, and the parent tracer files them with
:meth:`RingTracer.ingest_process` under a named *process track*.  The
Chrome export then renders one Perfetto process per shard (host events
on its own pid, named via ``M`` metadata events), plus one extra
process of wall-clock epoch/barrier spans -- the view that shows the
barrier protocol's actual cross-core overlap.  Ingested counts fold
into the parent's exact counts, so ``counts["send"]`` remains the
run-wide total regardless of which process recorded the event.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "Tracer",
    "RingTracer",
    "DEFAULT_SAMPLING",
    "DEFAULT_CAPACITY",
    "default_tracer",
    "set_default_tracer",
    "tracing",
]

#: Ring capacity bounding the resident trace (records, not bytes); at
#: ~40 bytes per compact tuple this keeps even a fully hot ring well
#: under the 64 MiB export budget.
DEFAULT_CAPACITY = 200_000

#: Per-kind sampling steps: record every Nth event of a kind (exact
#: per-kind *counts* are always maintained).  Send/deliver dominate
#: traffic by orders of magnitude, so they are sampled; rare lifecycle
#: kinds are always recorded.
DEFAULT_SAMPLING: Dict[str, int] = {"send": 16, "deliver": 16, "timer": 4}


class Tracer:
    """The tracer interface: every hook is a no-op on the base class.

    Subclasses override the hooks they care about.  Engines treat a
    ``None`` tracer as *disabled* (no call at all); passing a base
    ``Tracer()`` instance exercises the call sites without recording.

    Times are simulation times (multi-tenant call sites pass session
    *virtual* time plus the session's ``query_id`` so one trace can be
    demultiplexed per tenant); ``phase`` alone takes wall-clock seconds.
    """

    __slots__ = ()

    def send(self, time: float, sender: int, dest: int, kind: str,
             count: int = 1, query_id: int = 0) -> None:
        """A message (or a ``count``-destination multicast) was sent."""

    def deliver(self, time: float, sender: int, dest: int, kind: str,
                chain_depth: int, sent_at: float = 0.0,
                query_id: int = 0) -> None:
        """A message was delivered to (and processed by) ``dest``."""

    def timer(self, time: float, host: int, name: str,
              query_id: int = 0) -> None:
        """A host timer fired."""

    def drop(self, time: float, dest: int, query_id: int = 0) -> None:
        """A message was dropped (destination failed in flight)."""

    def late(self, time: float, dest: int, query_id: int = 0) -> None:
        """A delivery arrived after its query had already declared."""

    def fail(self, time: float, host: int) -> None:
        """A host failed (churn)."""

    def join(self, time: float, host: int) -> None:
        """A host joined the network (churn)."""

    def session(self, time: float, query_id: int, event: str,
                detail: Any = None) -> None:
        """A session lifecycle transition (submit/launch/declare/...)."""

    def phase(self, name: str, start: float, duration: float,
              detail: Any = None) -> None:
        """A wall-clock phase section (profiling hook)."""


class RingTracer(Tracer):
    """Bounded-ring tracer with per-kind sampling and exact counts.

    Records are compact tuples in a ``deque(maxlen=capacity)``; when the
    ring is full the oldest records are evicted (the *end* of a run is
    usually the interesting part).  ``sampling[kind] = n`` keeps every
    n-th record of that kind; the per-kind counters in :attr:`counts`
    stay exact regardless (a multicast ``send`` with ``count=k`` bumps
    the send counter by ``k``).
    """

    __slots__ = ("capacity", "sampling", "_ring", "_state",
                 "_send_state", "_deliver_state", "_timer_state",
                 "_processes")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 sampling: Optional[Mapping[str, int]] = None) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be at least 1")
        self.capacity = int(capacity)
        self.sampling = dict(DEFAULT_SAMPLING if sampling is None
                             else sampling)
        for kind, step in self.sampling.items():
            if step < 1:
                raise ValueError(
                    f"sampling step for {kind!r} must be >= 1, got {step}")
        self._ring: deque = deque(maxlen=self.capacity)
        # Per-kind [exact_count, step, countdown]: slot attribute access
        # plus integer arithmetic per event for the three kinds on the
        # kernel's hot path, budgeted at <=1.15x untraced wall-clock.
        self._state: Dict[str, list] = {}
        for kind in ("send", "deliver", "timer"):
            self._state[kind] = [0, self.sampling.get(kind, 1), 1]
        self._send_state = self._state["send"]
        self._deliver_state = self._state["deliver"]
        self._timer_state = self._state["timer"]
        #: Ingested child-process tracks (sharded workers), in ingest
        #: order: ``{"label", "records", "counts", "spans"}`` dicts.
        self._processes: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @property
    def counts(self) -> Dict[str, int]:
        """Exact per-kind event counts (independent of sampling)."""
        return {kind: state[0] for kind, state in self._state.items()
                if state[0]}

    def _admit(self, kind: str, weight: int = 1) -> bool:
        """Bump the exact count; True when this record should be kept."""
        state = self._state.get(kind)
        if state is None:
            state = self._state[kind] = [0, self.sampling.get(kind, 1), 1]
        state[0] += weight
        countdown = state[2] - 1
        if countdown == 0:
            state[2] = state[1]
            return True
        state[2] = countdown
        return False

    # send/deliver/timer dominate event traffic; each inlines the
    # _admit logic over a pre-bound slot state list to stay one call
    # deep (and dict-lookup free) on the kernel's hot path.
    def send(self, time, sender, dest, kind, count=1, query_id=0):
        state = self._send_state
        state[0] += count
        countdown = state[2] - 1
        if countdown:
            state[2] = countdown
            return
        state[2] = state[1]
        self._ring.append(("send", time, sender, dest, kind, count,
                           query_id))

    def deliver(self, time, sender, dest, kind, chain_depth, sent_at=0.0,
                query_id=0):
        state = self._deliver_state
        state[0] += 1
        countdown = state[2] - 1
        if countdown:
            state[2] = countdown
            return
        state[2] = state[1]
        self._ring.append(("deliver", time, sender, dest, kind,
                           chain_depth, sent_at, query_id))

    def timer(self, time, host, name, query_id=0):
        state = self._timer_state
        state[0] += 1
        countdown = state[2] - 1
        if countdown:
            state[2] = countdown
            return
        state[2] = state[1]
        self._ring.append(("timer", time, host, name, query_id))

    def drop(self, time, dest, query_id=0):
        if self._admit("drop"):
            self._ring.append(("drop", time, dest, query_id))

    def late(self, time, dest, query_id=0):
        if self._admit("late"):
            self._ring.append(("late", time, dest, query_id))

    def fail(self, time, host):
        if self._admit("fail"):
            self._ring.append(("fail", time, host))

    def join(self, time, host):
        if self._admit("join"):
            self._ring.append(("join", time, host))

    def session(self, time, query_id, event, detail=None):
        if self._admit("session"):
            self._ring.append(("session", time, query_id, event, detail))

    def phase(self, name, start, duration, detail=None):
        if self._admit("phase"):
            self._ring.append(("phase", start, duration, name, detail))

    # ------------------------------------------------------------------
    # Multi-process merge
    # ------------------------------------------------------------------
    def raw_records(self) -> List[Tuple]:
        """The resident ring as raw record tuples, oldest first.

        The tuples are plain ints/floats/strings, so a forked worker can
        ship them over a result pipe and the coordinator can hand them
        to :meth:`ingest_process` unchanged.
        """
        return list(self._ring)

    def merge_counts(self, counts: Mapping[str, int]) -> None:
        """Fold another tracer's exact per-kind counts into this one."""
        for kind, value in counts.items():
            state = self._state.get(kind)
            if state is None:
                state = self._state[kind] = [
                    0, self.sampling.get(kind, 1), 1]
            state[0] += value

    def ingest_process(self, label: str, records: List[Tuple],
                       counts: Optional[Mapping[str, int]] = None,
                       spans: Optional[List[Tuple]] = None) -> None:
        """Attach one child process's trace as a named track.

        ``records`` are raw ring tuples (:meth:`raw_records`) recorded
        in the child; ``counts`` its exact per-kind counts, folded into
        this tracer's own so run-wide totals stay exact; ``spans`` an
        optional list of wall-clock ``(name, start_s, duration_s, args)``
        tuples (epoch/barrier sections) rendered as complete spans on a
        dedicated timeline process in the Chrome export.
        """
        self._processes.append({
            "label": str(label),
            "records": list(records),
            "counts": dict(counts or {}),
            "spans": list(spans or ()),
        })
        if counts:
            self.merge_counts(counts)

    @property
    def processes(self) -> List[Dict[str, Any]]:
        """Ingested process tracks (label/records/counts/spans dicts)."""
        return list(self._processes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    def records(self) -> List[Dict[str, Any]]:
        """The resident ring as a list of plain dicts, oldest first."""
        return [self._as_dict(record) for record in self._ring]

    def summary(self) -> Dict[str, Any]:
        """Exact per-kind counts plus ring occupancy/sampling config."""
        summary = {
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
            "recorded": len(self._ring),
            "capacity": self.capacity,
            "sampling": {k: self.sampling[k] for k in sorted(self.sampling)},
        }
        if self._processes:
            summary["processes"] = [
                {"label": proc["label"],
                 "recorded": len(proc["records"]),
                 "counts": {k: proc["counts"][k]
                            for k in sorted(proc["counts"])}}
                for proc in self._processes
            ]
        return summary

    @staticmethod
    def _as_dict(record: Tuple) -> Dict[str, Any]:
        kind = record[0]
        if kind == "send":
            _, time, sender, dest, msg_kind, count, qid = record
            return {"type": "send", "time": time, "sender": sender,
                    "dest": dest, "kind": msg_kind, "count": count,
                    "query_id": qid}
        if kind == "deliver":
            _, time, sender, dest, msg_kind, depth, sent_at, qid = record
            return {"type": "deliver", "time": time, "sender": sender,
                    "dest": dest, "kind": msg_kind, "chain_depth": depth,
                    "sent_at": sent_at, "query_id": qid}
        if kind == "timer":
            _, time, host, name, qid = record
            return {"type": "timer", "time": time, "host": host,
                    "name": name, "query_id": qid}
        if kind in ("drop", "late"):
            _, time, dest, qid = record
            return {"type": kind, "time": time, "dest": dest,
                    "query_id": qid}
        if kind in ("fail", "join"):
            _, time, host = record
            return {"type": kind, "time": time, "host": host}
        if kind == "session":
            _, time, qid, event, detail = record
            row = {"type": "session", "time": time, "query_id": qid,
                   "event": event}
            if detail is not None:
                row["detail"] = detail
            return row
        # phase
        _, start, duration, name, detail = record
        row = {"type": "phase", "name": name, "start": start,
               "duration": duration}
        if detail is not None:
            row["detail"] = detail
        return row

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Write a metadata header plus one JSON object per record.

        Ingested process tracks follow the main ring, each record tagged
        with its track label (``"track": "shard 2"``).  Returns the
        number of records written (header excluded).
        """
        with open(path, "w") as handle:
            header = dict(self.summary())
            header["type"] = "meta"
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            n = 0
            for record in self._ring:
                handle.write(json.dumps(self._as_dict(record),
                                        sort_keys=True) + "\n")
                n += 1
            for proc in self._processes:
                label = proc["label"]
                for record in proc["records"]:
                    row = self._as_dict(record)
                    row["track"] = label
                    handle.write(json.dumps(row, sort_keys=True) + "\n")
                    n += 1
        return n

    def export_chrome(self, path: str) -> int:
        """Write the ring in Chrome trace-event format (Perfetto-loadable).

        Mapping: one simulation second becomes one trace microsecond,
        hosts become threads of pid 0, point events are thread-scoped
        instants, sessions become async ``b``/``e`` spans keyed by query
        id, and wall-clock phases become complete (``X``) spans on their
        own pid.  Ingested process tracks (sharded workers) land on pids
        2, 3, ... -- one Perfetto process per shard, named via ``M``
        metadata events -- and their wall-clock epoch/barrier spans
        share one extra timeline process with one thread per shard.
        Returns the number of trace events written.
        """
        events: List[Dict[str, Any]] = []
        scale = 1e6  # simulation seconds -> trace microseconds
        self._append_record_events(events, self._ring, 0, scale)
        for index, proc in enumerate(self._processes):
            pid = 2 + index
            events.append({
                "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                "args": {"name": proc["label"]}})
            self._append_record_events(events, proc["records"], pid, scale)
        if self._processes:
            # One shared wall-clock timeline process: thread k carries
            # shard k's epoch/barrier complete spans, so Perfetto shows
            # the actual cross-core overlap on adjacent rows.
            timeline_pid = 2 + len(self._processes)
            events.append({
                "ph": "M", "pid": timeline_pid, "tid": 0,
                "name": "process_name",
                "args": {"name": "epoch barriers (wall clock)"}})
            for index, proc in enumerate(self._processes):
                if proc["spans"]:
                    events.append({
                        "ph": "M", "pid": timeline_pid, "tid": index,
                        "name": "thread_name",
                        "args": {"name": proc["label"]}})
                for name, start, duration, args in proc["spans"]:
                    events.append({
                        "ph": "X", "pid": timeline_pid, "tid": index,
                        "ts": start * scale, "dur": duration * scale,
                        "cat": ("barrier" if name.startswith("barrier")
                                else "epoch"),
                        "name": name, "args": dict(args or {})})
        with open(path, "w") as handle:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms",
                       "metadata": self.summary()}, handle)
            handle.write("\n")
        return len(events)

    def _append_record_events(self, events: List[Dict[str, Any]],
                              records, pid: int, scale: float) -> None:
        """Convert raw ring tuples to trace events on process ``pid``.

        Wall-clock ``phase`` records always land on pid 1 (they are
        process-global sections, not per-shard activity).
        """
        for record in records:
            row = self._as_dict(record)
            kind = row["type"]
            if kind == "send":
                events.append({
                    "ph": "i", "s": "t", "pid": pid, "tid": row["sender"],
                    "ts": row["time"] * scale, "cat": "message",
                    "name": f"send {row['kind']}",
                    "args": {"dest": row["dest"], "count": row["count"],
                             "query_id": row["query_id"]}})
            elif kind == "deliver":
                events.append({
                    "ph": "i", "s": "t", "pid": pid, "tid": row["dest"],
                    "ts": row["time"] * scale, "cat": "message",
                    "name": f"deliver {row['kind']}",
                    "args": {"sender": row["sender"],
                             "chain_depth": row["chain_depth"],
                             "sent_at": row["sent_at"],
                             "query_id": row["query_id"]}})
            elif kind == "timer":
                events.append({
                    "ph": "i", "s": "t", "pid": pid, "tid": row["host"],
                    "ts": row["time"] * scale, "cat": "timer",
                    "name": f"timer {row['name']}",
                    "args": {"query_id": row["query_id"]}})
            elif kind in ("drop", "late"):
                events.append({
                    "ph": "i", "s": "t", "pid": pid, "tid": row["dest"],
                    "ts": row["time"] * scale, "cat": "message",
                    "name": kind,
                    "args": {"query_id": row["query_id"]}})
            elif kind in ("fail", "join"):
                events.append({
                    "ph": "i", "s": "g", "pid": pid, "tid": row["host"],
                    "ts": row["time"] * scale, "cat": "churn",
                    "name": f"{kind} host {row['host']}", "args": {}})
            elif kind == "session":
                event = row["event"]
                phase = {"launch": "b", "declare": "e",
                         "failed": "e"}.get(event)
                base = {"pid": pid, "tid": 0, "ts": row["time"] * scale,
                        "cat": "session", "id": row["query_id"],
                        "name": f"query {row['query_id']}"}
                if phase is None:
                    base.update({"ph": "n",
                                 "args": {"event": event}})
                else:
                    base.update({"ph": phase,
                                 "args": {"event": event}})
                if row.get("detail") is not None:
                    base["args"]["detail"] = row["detail"]
                events.append(base)
            else:  # phase: wall-clock complete span on its own pid
                events.append({
                    "ph": "X", "pid": 1, "tid": 0,
                    "ts": row["start"] * scale,
                    "dur": row["duration"] * scale, "cat": "phase",
                    "name": row["name"],
                    "args": ({} if row.get("detail") is None
                             else {"detail": row["detail"]})})


# ---------------------------------------------------------------------------
# Process-wide default binding (mirrors stats.set_default_stats_mode)
# ---------------------------------------------------------------------------
#: The process-wide default tracer; ``None`` = tracing disabled.  Engines
#: resolve this ONCE in their constructor, so flipping it mid-run has no
#: effect on runs already built -- exactly the stats-mode contract.
_default_tracer: Optional[Tracer] = None


def default_tracer() -> Optional[Tracer]:
    """The process-wide default tracer (``None`` = disabled)."""
    return _default_tracer


def set_default_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Set the process-wide default tracer; returns the previous one."""
    global _default_tracer
    if tracer is not None and not isinstance(tracer, Tracer):
        raise TypeError(f"expected a Tracer or None, got {tracer!r}")
    previous = _default_tracer
    _default_tracer = tracer
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Bind ``tracer`` as the process default for the ``with`` body."""
    previous = set_default_tracer(tracer)
    try:
        yield tracer
    finally:
        set_default_tracer(previous)
