"""Telemetry subsystem: tracing, metrics, provenance, profiling, logging.

The observability layer for the simulation kernel and the query
service.  Everything here obeys one contract: **zero cost when
disabled**.  Tracing is off unless a tracer is passed to (or bound as
the process default before constructing) an engine; metrics are pulled
from structures the engines already maintain; profiling wraps a run
from the outside.  With everything disabled the kernel's event loop
executes the exact same instruction stream as before this package
existed, and the golden seeded snapshots stay bit-identical.

The distributed pieces keep the same contract per worker: sharded-lane
workers trace into private rings the coordinator merges into one
multi-process trace (:meth:`RingTracer.ingest_process`), the
epoch/barrier wall-clock timeline lands in
:class:`~repro.obs.timeline.ShardTimeline`, and live metrics stream out
through :mod:`repro.obs.stream` while a run is still in flight.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_queue_metrics,
    collect_run_metrics,
    collect_service_metrics,
    collect_shard_metrics,
    worker_utilisation,
)
from repro.obs.profiling import PhaseTimer, ProfileCapture
from repro.obs.stream import (
    MetricsStreamWriter,
    PeriodicSampler,
    ShardProgressBoard,
    current_rss_mb,
    default_progress_board,
    progress_board,
    set_progress_board,
)
from repro.obs.timeline import ShardTimeline
from repro.obs.provenance import (
    EstimateProvenance,
    ProvenanceTracer,
    run_protocol_with_provenance,
)
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    DEFAULT_SAMPLING,
    RingTracer,
    Tracer,
    default_tracer,
    set_default_tracer,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_queue_metrics",
    "collect_run_metrics",
    "collect_service_metrics",
    "collect_shard_metrics",
    "worker_utilisation",
    "PhaseTimer",
    "ProfileCapture",
    "MetricsStreamWriter",
    "PeriodicSampler",
    "ShardProgressBoard",
    "ShardTimeline",
    "current_rss_mb",
    "default_progress_board",
    "progress_board",
    "set_progress_board",
    "EstimateProvenance",
    "ProvenanceTracer",
    "run_protocol_with_provenance",
    "DEFAULT_CAPACITY",
    "DEFAULT_SAMPLING",
    "RingTracer",
    "Tracer",
    "default_tracer",
    "set_default_tracer",
    "tracing",
]
