"""Telemetry subsystem: tracing, metrics, provenance, profiling, logging.

The observability layer for the simulation kernel and the query
service.  Everything here obeys one contract: **zero cost when
disabled**.  Tracing is off unless a tracer is passed to (or bound as
the process default before constructing) an engine; metrics are pulled
from structures the engines already maintain; profiling wraps a run
from the outside.  With everything disabled the kernel's event loop
executes the exact same instruction stream as before this package
existed, and the golden seeded snapshots stay bit-identical.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_queue_metrics,
    collect_run_metrics,
    collect_service_metrics,
    worker_utilisation,
)
from repro.obs.profiling import PhaseTimer, ProfileCapture
from repro.obs.provenance import (
    EstimateProvenance,
    ProvenanceTracer,
    run_protocol_with_provenance,
)
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    DEFAULT_SAMPLING,
    RingTracer,
    Tracer,
    default_tracer,
    set_default_tracer,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_queue_metrics",
    "collect_run_metrics",
    "collect_service_metrics",
    "worker_utilisation",
    "PhaseTimer",
    "ProfileCapture",
    "EstimateProvenance",
    "ProvenanceTracer",
    "run_protocol_with_provenance",
    "DEFAULT_CAPACITY",
    "DEFAULT_SAMPLING",
    "RingTracer",
    "Tracer",
    "default_tracer",
    "set_default_tracer",
    "tracing",
]
