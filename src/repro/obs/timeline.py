"""Epoch/barrier timeline of a sharded-lane run, with straggler attribution.

The sharded lane advances in lockstep ``delta``-wide epochs; every epoch
each worker spends wall-clock in two places -- the pairwise barrier
exchange and the local compute over the instant's deliveries/timers --
and the *slowest* shard of an epoch sets the epoch's length for everyone
(the barrier is synchronous).  The coordinator already folds per-shard
end-of-run counters into ``extra["sharded"]``; this module holds the
per-epoch samples the workers now record alongside them and turns the
raw samples into the two views the ROADMAP's multi-core validation item
asks for:

* :meth:`ShardTimeline.skew_report` -- one row per epoch naming the
  straggler shard, the compute skew (max - min compute seconds across
  shards) and the epoch's barrier-overhead fraction;
* :meth:`ShardTimeline.health` -- aggregate per-shard compute/barrier
  totals, barrier-overhead fractions and straggler counts, plus the
  single worst epoch.

A sample is one plain dict (JSON-safe, exactly what travels over the
worker result pipe and lands in run artifacts)::

    {"shard": 2, "epoch": 7, "t": 8.0, "wall_start": 0.0123,
     "exchange_s": 0.0009, "compute_s": 0.0041,
     "barrier_wait_s": 0.0006, "cross_records": 118, "queue_depth": 240}

``wall_start`` is seconds since the coordinator's pre-fork
``perf_counter()`` base -- on Linux ``perf_counter`` is
``CLOCK_MONOTONIC``, which forked children share, so per-shard spans are
directly comparable and the merged Perfetto trace shows the *actual*
overlap of compute and barriers across cores.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ShardTimeline"]

#: The numeric fields every timeline sample carries.
SAMPLE_FIELDS = ("shard", "epoch", "t", "wall_start", "exchange_s",
                 "compute_s", "barrier_wait_s", "cross_records",
                 "queue_depth")


class ShardTimeline:
    """Per-shard per-epoch wall-clock samples of one sharded-lane run."""

    __slots__ = ("shards", "samples")

    def __init__(self, shards: int, samples: Sequence[Dict[str, Any]]):
        if shards < 1:
            raise ValueError("a timeline needs at least one shard")
        self.shards = int(shards)
        self.samples: List[Dict[str, Any]] = sorted(
            (dict(sample) for sample in samples),
            key=lambda s: (s["epoch"], s["shard"]))

    # ------------------------------------------------------------------
    # Construction from run artifacts
    # ------------------------------------------------------------------
    @classmethod
    def from_run(cls, run: Any) -> Optional["ShardTimeline"]:
        """Build a timeline from a run result or a JSON artifact.

        Accepts a :class:`~repro.simulation.engine.SimulationResult` /
        :class:`~repro.protocols.base.ProtocolRunResult` (anything with
        an ``extra`` attribute), a raw ``extra``-style dict, or a whole
        ``repro bench --json`` trajectory payload -- the first
        ``{"sharded": {... "timeline": [...]}}`` block found by a
        recursive walk wins.  Returns ``None`` when the artifact carries
        no sharded timeline (e.g. the run fell back to the spec lane).
        """
        payload = getattr(run, "extra", run)
        block = _find_sharded_block(payload)
        if block is None or not block.get("timeline"):
            return None
        return cls(block["shards"], block["timeline"])

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def epochs(self) -> int:
        """Number of distinct epochs sampled."""
        return len({sample["epoch"] for sample in self.samples})

    def _by_epoch(self) -> Dict[int, List[Dict[str, Any]]]:
        grouped: Dict[int, List[Dict[str, Any]]] = {}
        for sample in self.samples:
            grouped.setdefault(sample["epoch"], []).append(sample)
        return grouped

    def skew_report(self) -> List[Dict[str, Any]]:
        """One row per epoch: straggler shard, compute skew, barrier cost.

        The straggler is the shard with the largest compute time (ties
        break to the lower shard id -- deterministic output); ``skew_s``
        is max - min compute across shards, the wall-clock every other
        shard spent blocked waiting for the straggler at the next
        barrier.  ``barrier_frac`` is the epoch's summed barrier-wait
        over its summed (exchange + compute) wall-clock: the fraction of
        the epoch's total core-seconds the barrier protocol cost.
        """
        rows: List[Dict[str, Any]] = []
        for epoch, group in sorted(self._by_epoch().items()):
            computes = [(s["compute_s"], s["shard"]) for s in group]
            slowest = max(computes, key=lambda cs: (cs[0], -cs[1]))
            busy = sum(s["exchange_s"] + s["compute_s"] for s in group)
            barrier = sum(s["barrier_wait_s"] for s in group)
            rows.append({
                "epoch": epoch,
                "t": group[0]["t"],
                "straggler": slowest[1],
                "compute_max_s": round(max(c for c, _ in computes), 6),
                "compute_min_s": round(min(c for c, _ in computes), 6),
                "skew_s": round(max(c for c, _ in computes)
                                - min(c for c, _ in computes), 6),
                "barrier_wait_s": round(barrier, 6),
                "barrier_frac": round(barrier / busy, 4) if busy else 0.0,
                "cross_records": sum(s["cross_records"] for s in group),
            })
        return rows

    def health(self) -> Dict[str, Any]:
        """Aggregate per-shard totals and the top-line overhead summary.

        ``barrier_overhead`` is each shard's total barrier-wait over its
        total busy (exchange + compute) wall-clock; ``straggler_epochs``
        counts how often each shard was the epoch's straggler.  The
        ``worst_epoch`` entry repeats that epoch's skew row so a report
        reader sees the single most skewed moment without scanning.
        """
        compute = [0.0] * self.shards
        exchange = [0.0] * self.shards
        barrier = [0.0] * self.shards
        for sample in self.samples:
            shard = sample["shard"]
            compute[shard] += sample["compute_s"]
            exchange[shard] += sample["exchange_s"]
            barrier[shard] += sample["barrier_wait_s"]
        straggler_epochs = [0] * self.shards
        report = self.skew_report()
        worst = None
        for row in report:
            straggler_epochs[row["straggler"]] += 1
            if worst is None or row["skew_s"] > worst["skew_s"]:
                worst = row
        overhead = [
            round(barrier[s] / (exchange[s] + compute[s]), 4)
            if (exchange[s] + compute[s]) > 0 else 0.0
            for s in range(self.shards)
        ]
        return {
            "shards": self.shards,
            "epochs": len(report),
            "compute_s": [round(v, 6) for v in compute],
            "barrier_wait_s": [round(v, 6) for v in barrier],
            "barrier_overhead": overhead,
            "straggler_epochs": straggler_epochs,
            "worst_epoch": worst,
        }

    # ------------------------------------------------------------------
    # Perfetto spans
    # ------------------------------------------------------------------
    def spans_by_shard(self) -> List[List[tuple]]:
        """Per-shard ``(name, start_s, duration_s, args)`` wall spans.

        One ``barrier``/``epoch`` span pair per sample, in the format
        :meth:`RingTracer.ingest_process` files under a process track:
        the barrier span covers the exchange (rank + content phases) and
        the epoch span the local compute that follows it.
        """
        per_shard: List[List[tuple]] = [[] for _ in range(self.shards)]
        for sample in self.samples:
            shard = sample["shard"]
            start = sample["wall_start"]
            exchange_s = sample["exchange_s"]
            per_shard[shard].append((
                f"barrier e{sample['epoch']}", start, exchange_s,
                {"epoch": sample["epoch"], "t": sample["t"],
                 "barrier_wait_s": sample["barrier_wait_s"],
                 "cross_records": sample["cross_records"]}))
            per_shard[shard].append((
                f"epoch e{sample['epoch']}", start + exchange_s,
                sample["compute_s"],
                {"epoch": sample["epoch"], "t": sample["t"],
                 "queue_depth": sample["queue_depth"]}))
        return per_shard


def _find_sharded_block(payload: Any) -> Optional[Dict[str, Any]]:
    """Depth-first search for a coordinator ``sharded`` block.

    Recognises the block by shape (``shards`` plus ``timeline``) rather
    than by key alone, so a trajectory row that merely *names* a
    ``sharded`` column cannot shadow the real thing.
    """
    if isinstance(payload, dict):
        block = payload.get("sharded")
        if (isinstance(block, dict) and "shards" in block
                and isinstance(block.get("timeline"), list)):
            return block
        for value in payload.values():
            found = _find_sharded_block(value)
            if found is not None:
                return found
    elif isinstance(payload, (list, tuple)):
        for value in payload:
            found = _find_sharded_block(value)
            if found is not None:
                return found
    return None
