"""Logging setup for the ``repro`` CLI and library status lines.

One root logger (``"repro"``) covers the whole package --
``orchestration.store`` already logs under it via ``__name__`` -- and
the CLI configures exactly one stderr handler on it:

* default: INFO (progress lines, cache hits, artifact paths)
* ``--quiet``: WARNING (only problems)
* ``-v`` / ``-vv``: DEBUG (per-trial progress, cache internals)

Library code calls :func:`get_logger` and logs unconditionally; with no
handler configured (library embedding, tests) records propagate to the
root logger and follow the host application's setup, per stdlib
convention.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["configure", "get_logger", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (the root one by default)."""
    if name is None or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the CLI's stderr handler; idempotent across calls.

    Args:
        verbosity: ``< 0`` = WARNING (``--quiet``), ``0`` = INFO,
            ``>= 1`` = DEBUG (``-v``).
        stream: handler stream (default ``sys.stderr``; injectable for
            tests).
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    if verbosity < 0:
        level = logging.WARNING
    elif verbosity == 0:
        level = logging.INFO
    else:
        level = logging.DEBUG
    logger.setLevel(level)
    target = stream if stream is not None else sys.stderr
    # Replace (don't stack) the handler this module manages, so repeated
    # main() calls in one process never duplicate output lines -- and
    # close the orphan so it also releases its resources (an injected
    # test stream, the handler's I/O lock).  StreamHandler.close never
    # closes the underlying stream, so sys.stderr survives.
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli", False):
            logger.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(target)
    handler._repro_cli = True  # type: ignore[attr-defined]
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    # The CLI handler is authoritative; don't double-print through any
    # root handler the embedding application may have installed.
    logger.propagate = False
    return logger
