"""``python -m repro`` -- entry point for the orchestration CLI."""

from repro.orchestration.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
