"""In-network aggregation protocols.

* :class:`Wildfire` -- the paper's contribution: guarantees Single-Site
  Validity for duplicate-insensitive aggregates.
* :class:`AllReport` and :class:`RandomizedReport` -- the naive valid
  baselines of Section 4 (direct delivery of every value to the querying
  host, optionally sampled).
* :class:`SpanningTree` and :class:`DirectedAcyclicGraph` -- the efficient
  best-effort protocols the paper compares against.
* :class:`PushSumGossip` -- an eventual-consistency epidemic baseline from
  the related-work discussion.
"""

from repro.protocols.base import Protocol, ProtocolRunResult, run_protocol
from repro.protocols.wildfire import Wildfire, WildfireHost
from repro.protocols.spanning_tree import SpanningTree, SpanningTreeHost
from repro.protocols.dag import DirectedAcyclicGraph, DagHost
from repro.protocols.allreport import AllReport, AllReportHost
from repro.protocols.randomized_report import RandomizedReport, RandomizedReportHost
from repro.protocols.gossip import PushSumGossip, PushSumHost

__all__ = [
    "Protocol",
    "ProtocolRunResult",
    "run_protocol",
    "Wildfire",
    "WildfireHost",
    "SpanningTree",
    "SpanningTreeHost",
    "DirectedAcyclicGraph",
    "DagHost",
    "AllReport",
    "AllReportHost",
    "RandomizedReport",
    "RandomizedReportHost",
    "PushSumGossip",
    "PushSumHost",
]
