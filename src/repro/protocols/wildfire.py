"""The WILDFIRE protocol (Section 5).

WILDFIRE floods the query over the network (Broadcast) and then lets every
host repeatedly exchange partial aggregates with all of its neighbors
(Convergecast) until time ``2 * D_hat * delta``.  Because partial aggregates
travel along *every* path rather than a single spanning tree, the value of
any host with a stable path to the querying host is guaranteed to be folded
into the final answer -- this is what buys Single-Site Validity -- provided
the combine function is duplicate-insensitive (min, max, or the FM sketch
operators of Section 5.2).

The implementation batches outgoing Convergecast traffic per time instant:
all partial aggregates a host receives at time ``t`` are folded in first,
and a single (possibly multicast) message carrying the resulting aggregate
is sent at the end of the instant.  This mirrors the paper's cost model, in
which a host sends at most one update to its neighbors per ``delta`` and the
worst-case traffic is ``2 * D_hat * |E|`` messages.

Two optimisations from Section 5.3 are implemented and on by default:

* the first Convergecast message of a host is piggybacked on the Broadcast
  message it forwards, and
* a host at hop distance ``l`` from the querying host only participates
  until time ``(2 * D_hat - l + 1) * delta``.

All deadlines are computed from the delay *bound* ``delta``, never from
observed message timings: under a variable
:class:`~repro.simulation.delay.DelayModel` messages merely arrive
earlier than the deadlines assume, so every guaranteed exchange still
happens in time and Single-Site Validity is preserved.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, List, Optional, Sequence, Set

from repro.protocols.base import Protocol
from repro.queries.query import AggregateQuery
from repro.simulation.host import HostContext, ProtocolHost
from repro.simulation.messages import Message
from repro.sketches.combiners import Combiner
from repro.sketches.fm import FMSketch
from repro.topology.base import Topology

#: Message kinds used by the protocol.
BROADCAST = "wf-broadcast"
CONVERGECAST = "wf-convergecast"

#: Name of the per-instant flush timer.
FLUSH = "wf-flush"


class WildfireHost(ProtocolHost):
    """Per-host WILDFIRE state machine (slotted: one per network host)."""

    __slots__ = (
        "querying_host", "combiner", "d_hat", "delta", "rng",
        "early_termination", "active", "distance", "updates_observed",
        "_dirty", "_skip_neighbor", "_reply_to", "_flush_pending",
        "_next_flush", "_combine", "_states_equal", "_absorbs", "_deadline",
        "_packed_mode", "_packed", "_packed_stale", "_reps", "_nbits",
        "_partial_obj",
    )

    def __init__(
        self,
        host_id: int,
        value: float,
        querying_host: int,
        combiner: Combiner,
        d_hat: int,
        delta: float,
        rng: random.Random,
        early_termination: bool = True,
    ) -> None:
        super().__init__(host_id, value)
        self.querying_host = querying_host
        self.combiner = combiner
        self.d_hat = d_hat
        self.delta = delta
        self.rng = rng
        self.early_termination = early_termination

        self.active = False
        self.distance: Optional[int] = None
        self.updates_observed = 0

        # Per-instant batching state.  ``_next_flush`` rate-limits outgoing
        # Convergecast updates to one per ``delta`` (the paper's cost
        # model): under the fixed-delay model every arrival instant is
        # already a multiple of ``delta`` so the limit never delays a
        # flush, but under variable delay models it is what keeps a host
        # from flushing once per (now unique) arrival timestamp.
        # ``_reply_to`` stays None until this host actually owes a
        # neighbor a catch-up reply; most hosts in a large flood never do,
        # and one set per host is real memory at 1M hosts.
        self._dirty = False
        self._skip_neighbor: Optional[int] = None
        self._reply_to: Optional[Set[int]] = None
        self._flush_pending = False
        self._next_flush = 0.0

        # Hot-path bindings: the combine/equality hooks are resolved once,
        # and the participation deadline is cached at activation time (it
        # only depends on the hop distance, which never changes afterwards).
        # The bound-method triple is memoised on the combiner so the whole
        # host table shares three method objects instead of allocating
        # three per host.
        hot = getattr(combiner, "_hot_bindings", None)
        if hot is None:
            hot = (combiner.combine, combiner.states_equal, combiner.absorbs)
            try:
                combiner._hot_bindings = hot
            except AttributeError:  # a slotted third-party combiner
                pass
        self._combine, self._states_equal, self._absorbs = hot
        self._deadline = 2.0 * d_hat * delta

        # FM fast path: when the combiner's state is a packed bitmask
        # (count/sum sketches), convergecast folding runs on bare ints and
        # the FMSketch object is materialised lazily, only when the
        # aggregate is actually sent or read.  Outcomes are identical to
        # the combiner calls: OR <=> combine, int == <=> states_equal.
        self._packed_mode = bool(getattr(combiner, "packed_state", False))
        self._packed: Optional[int] = None
        self._packed_stale = False
        if self._packed_mode:
            self._reps = combiner.repetitions
            self._nbits = combiner.num_bits
        self._partial_obj: Any = None
        self.partial = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def partial(self) -> Any:
        """The current partial aggregate (materialised on demand)."""
        if self._packed_stale:
            self._partial_obj = FMSketch._from_packed(
                self._packed, self._reps, self._nbits)
            self._packed_stale = False
        return self._partial_obj

    @partial.setter
    def partial(self, value: Any) -> None:
        self._partial_obj = value
        self._packed_stale = False
        if self._packed_mode and value is not None:
            self._packed = value.packed

    @property
    def _global_deadline(self) -> float:
        return 2.0 * self.d_hat * self.delta

    def _participation_deadline(self) -> float:
        """The time until which this host keeps processing Convergecast."""
        if (
            self.early_termination
            and self.distance is not None
            and self.host_id != self.querying_host
        ):
            return (2.0 * self.d_hat - self.distance + 1.0) * self.delta
        return self._global_deadline

    def _activate(self, distance: int) -> None:
        self.active = True
        self.distance = distance
        self.partial = self.combiner.initial(self.value, self.rng)
        self._deadline = self._participation_deadline()

    def _payload(self) -> dict:
        return {
            "d_hat": self.d_hat,
            "dist": self.distance,
            "agg": self.partial,
        }

    def _note_reply(self, sender: int) -> None:
        """Mark ``sender`` as owed a catch-up reply (lazy set creation)."""
        reply_to = self._reply_to
        if reply_to is None:
            self._reply_to = {sender}
        else:
            reply_to.add(sender)

    def _schedule_flush(self, ctx: HostContext) -> None:
        if not self._flush_pending:
            self._flush_pending = True
            # Zero-delay timer (or the remainder of the one-per-delta rate
            # limit): timers are dispatched after all message deliveries of
            # the same instant, so every aggregate received by the flush
            # instant is folded in before the single outgoing update.
            wait = self._next_flush - ctx.now
            ctx.set_timer(wait if wait > 0.0 else 0.0, FLUSH)

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    def on_query_start(self, ctx: HostContext) -> None:
        """The querying host initiates Broadcast at time 0."""
        self._activate(distance=0)
        ctx.send_to_neighbors(BROADCAST, self._payload())

    def on_message(self, message: Message, ctx: HostContext) -> None:
        if message.kind not in (BROADCAST, CONVERGECAST):
            return
        incoming = message.payload.get("agg")

        if not self.active:
            if ctx.now >= self._global_deadline:
                return
            sender_distance = message.payload.get("dist")
            distance = (sender_distance + 1) if sender_distance is not None else 1
            self._activate(distance=distance)
            # Forward the Broadcast immediately (flooding must not wait a
            # whole instant); the current partial aggregate -- already folded
            # with the piggybacked one below -- rides along as this host's
            # first Convergecast contribution.
            self._fold(incoming, message.sender, ctx)
            ctx.send_to_neighbors(BROADCAST, self._payload(),
                                  exclude=(message.sender,))
            # The sender still needs our aggregate if it knows less than us.
            if incoming is None or not self.combiner.states_equal(self.partial, incoming):
                self._note_reply(message.sender)
                self._schedule_flush(ctx)
            self._dirty = False  # neighbors just heard our aggregate
            return

        if ctx.now > self._deadline:
            return
        # Inlined _fold (Fig. 4 rules), the hottest protocol code path.
        if incoming is None:
            return
        if self._packed_mode:
            # Sketch folding on bare packed ints; no object allocation at
            # all unless the aggregate actually grows.
            packed = self._packed
            inc = incoming.packed
            merged = packed | inc
            if merged == packed:
                if packed != inc:
                    self._note_reply(message.sender)
                    self._schedule_flush(ctx)
                return
            self._packed = merged
            self._packed_stale = True
            self.updates_observed += 1
            self._dirty = True
            # If the merge result equals what the sender already has, there
            # is no point echoing it straight back (Example 5.1).
            self._skip_neighbor = message.sender if merged == inc else None
            if self._reply_to is not None:
                self._reply_to.discard(message.sender)
            self._schedule_flush(ctx)
            return
        # Generic combiners: ``absorbs`` tests containment without
        # allocating a merged state that would be discarded.
        partial = self.partial
        if self._absorbs(partial, incoming):
            if not self._states_equal(partial, incoming):
                # Our aggregate did not change but the sender's is stale:
                # send ours back so the sender (and eventually the querying
                # host on the other side of it) catches up.
                self._note_reply(message.sender)
                self._schedule_flush(ctx)
            return
        self.partial = new_partial = self._combine(partial, incoming)
        self.updates_observed += 1
        self._dirty = True
        # If the merge result equals what the sender already has, there
        # is no point echoing it straight back (Example 5.1).
        if self._states_equal(new_partial, incoming):
            self._skip_neighbor = message.sender
        else:
            self._skip_neighbor = None
        if self._reply_to is not None:
            self._reply_to.discard(message.sender)
        self._schedule_flush(ctx)

    def _fold(self, incoming: Any, sender: int, ctx: HostContext) -> None:
        """Fold a received partial aggregate into our own (Fig. 4 rules)."""
        if incoming is None:
            return
        new_partial = self._combine(self.partial, incoming)
        if not self._states_equal(new_partial, self.partial):
            self.partial = new_partial
            self.updates_observed += 1
            self._dirty = True
            if self._states_equal(self.partial, incoming):
                self._skip_neighbor = sender
            else:
                self._skip_neighbor = None
            if self._reply_to is not None:
                self._reply_to.discard(sender)
            self._schedule_flush(ctx)
        elif not self._states_equal(self.partial, incoming):
            self._note_reply(sender)
            self._schedule_flush(ctx)

    def on_timer(self, name: str, data: Any, ctx: HostContext) -> None:
        if name != FLUSH:
            return
        self._flush_pending = False
        self._next_flush = ctx.now + self.delta
        if not self.active or ctx.now > self._deadline:
            self._dirty = False
            self._reply_to = None
            return
        if self._dirty:
            exclude = (self._skip_neighbor,) if self._skip_neighbor is not None else ()
            ctx.send_to_neighbors(CONVERGECAST, self._payload(), exclude=exclude)
            self._reply_to = None
        elif self._reply_to:
            payload = self._payload()
            for neighbor in sorted(self._reply_to):
                # ``ctx.send`` performs the alive-edge check itself (and
                # records nothing when it fails), so no neighbor-view
                # needs materialising here.
                ctx.send(neighbor, CONVERGECAST, payload)
            self._reply_to = None
        self._dirty = False
        self._skip_neighbor = None

    def local_result(self) -> Optional[float]:
        """The value this host would declare (meaningful at the querying host)."""
        if self.partial is None:
            return None
        return self.combiner.finalize(self.partial)


class WildfireVectorAdapter:
    """Protocol-side batch kernel for the vectorized lane.

    The lane (:mod:`repro.simulation.vector_lane`) drains whole calendar
    instants at once and hands each instant's delivery batch to
    :meth:`process_instant`, which runs WILDFIRE's hot ``on_message``
    branches **inlined** over the batch: per delivery it costs a couple
    of index operations and an int (or float) comparison instead of a
    :class:`~repro.simulation.messages.Message` allocation, a context
    rebind and a method-dispatch chain.  The inlined branches are exact
    transcriptions of :meth:`WildfireHost.on_message` and the FLUSH
    timer (packed-int folding for FM count/sum, the
    ``absorbs``/``combine`` hook pair for min/max, activation through
    the real ``combiner.initial`` so RNG consumption order stays that
    of the spec engine).  In packed mode, lane payloads carry the raw
    packed bitmask int instead of a sketch object -- only this adapter
    consumes in-run payloads, receivers normalise either form, and the
    querying host's declared sketch is materialised lazily by the
    ``partial`` property exactly as in the spec lane.

    The transcription is safe because deliveries are processed in the
    exact global FIFO order of the spec loop and every branch reads the
    host's *live* state (no mirrors, no staleness): the sequence of
    state transitions is the one the spec loop would have produced,
    step for step.  ``try_build`` gates engagement to host tables this
    adapter provably understands; everything else falls back to the
    spec lane.
    """

    __slots__ = ("hosts", "packed_mode", "global_deadline", "deadlines")

    @classmethod
    def try_build(cls, hosts: Sequence[Any], num_hosts: int,
                  querying_host: int) -> Optional["WildfireVectorAdapter"]:
        """An adapter for this host table, or ``None`` if unsupported.

        Supported: every host is exactly a :class:`WildfireHost` sharing
        one combiner whose state is either a packed bitmask
        (``packed_state``; FM count/sum) or a bare float with exact-
        equality semantics (:class:`~repro.sketches.combiners.MinCombiner`
        / :class:`~repro.sketches.combiners.MaxCombiner`).  Pair states
        (FM average) and third-party combiners fall back to the spec lane.
        """
        from repro.sketches.combiners import MaxCombiner, MinCombiner

        if num_hosts <= 0 or len(hosts) < num_hosts:
            return None
        combiner = getattr(hosts[querying_host], "combiner", None)
        for host in hosts:
            if type(host) is not WildfireHost or host.combiner is not combiner:
                return None
        if bool(getattr(combiner, "packed_state", False)):
            packed_mode = True
        elif type(combiner) in (MinCombiner, MaxCombiner):
            packed_mode = False
        else:
            return None
        return cls(hosts, packed_mode)

    def __init__(self, hosts: Sequence[Any], packed_mode: bool) -> None:
        self.hosts = hosts
        self.packed_mode = packed_mode
        self.global_deadline = hosts[0]._global_deadline
        #: Participation-deadline mirror, ``None`` while a host is
        #: inactive: one list load replaces a host fetch plus two
        #: attribute reads per delivery, and past-deadline deliveries
        #: (the tail of every flood) skip the host object entirely.
        #: Maintained by the inlined activation path and
        #: :meth:`refresh_host` after any real hook runs.
        self.deadlines: List[Optional[float]] = [
            host._deadline if host.active else None for host in hosts]

    def refresh_host(self, host_id: int) -> None:
        """Re-mirror one host's activation state after a real hook ran."""
        host = self.hosts[host_id]
        self.deadlines[host_id] = host._deadline if host.active else None

    def process_instant(self, now: float, entries: Sequence[Any],
                        lane: Any) -> None:
        """Process one instant's delivery records in spec FIFO order.

        ``entries`` is one lane ring bucket: per send one
        ``(sender, dests, kind, agg, dist, chain_depth)`` record, in
        send order; destinations ascend within a record.  The payload
        dict of the spec path is flattened to the two fields WILDFIRE
        handlers read -- only this adapter consumes in-run records.
        Receive-side accounting (processed counts, drops, chain depth)
        is accumulated into the ``lane``'s bulk counters; send-side
        accounting happens at submit time as usual.
        """
        hosts = self.hosts
        alive = lane.alive_bytes
        counts = lane.counts
        deadlines = self.deadlines
        timers = lane._timers
        timer_heap = lane._timer_heap
        heappush = heapq.heappush
        gdl = self.global_deadline
        packed_mode = self.packed_mode
        dropped = 0
        max_depth = lane.max_depth
        last_fire = -1.0  # memo: flush times repeat within an instant
        last_timer_bucket: Optional[list] = None
        for sender, dests, kind, incoming, dist, depth in entries:
            if kind != CONVERGECAST and kind != BROADCAST:
                # on_message ignores foreign kinds: deliveries count,
                # state never moves.
                delivered = False
                for dest in dests:
                    if alive[dest]:
                        counts[dest] += 1
                        delivered = True
                    else:
                        dropped += 1
                if delivered and depth > max_depth:
                    max_depth = depth
                continue
            # Packed mode ships the raw bitmask int in lane records
            # (only this adapter consumes them); sketch objects appear
            # only in sends from the real hooks (query start).
            if packed_mode and incoming is not None:
                inc_packed = (incoming if type(incoming) is int
                              else incoming.packed)
            else:
                inc_packed = None
            delivered = False
            for dest in dests:
                if not alive[dest]:
                    dropped += 1
                    continue
                counts[dest] += 1
                delivered = True
                deadline = deadlines[dest]
                if deadline is None:  # inactive
                    if now >= gdl:
                        continue  # spec path: return untouched
                    self._activate_host(hosts[dest], dest, sender,
                                        incoming, inc_packed, dist,
                                        now, depth, lane)
                    continue
                if now > deadline:
                    continue  # spec path: return untouched
                if incoming is None:
                    continue
                host = hosts[dest]
                # -- inlined WildfireHost.on_message, active host ------
                if packed_mode:
                    packed = host._packed
                    merged = packed | inc_packed
                    if merged == packed:
                        if packed == inc_packed:
                            continue  # pure no-op
                        # absorbed but the sender is stale: owe a reply
                        reply_to = host._reply_to
                        if reply_to is None:
                            host._reply_to = {sender}
                        else:
                            reply_to.add(sender)
                    else:
                        host._packed = merged
                        host._packed_stale = True
                        host.updates_observed += 1
                        host._dirty = True
                        host._skip_neighbor = (sender if merged == inc_packed
                                               else None)
                        if host._reply_to is not None:
                            host._reply_to.discard(sender)
                else:
                    partial = host.partial
                    if host._absorbs(partial, incoming):
                        if host._states_equal(partial, incoming):
                            continue  # pure no-op
                        reply_to = host._reply_to
                        if reply_to is None:
                            host._reply_to = {sender}
                        else:
                            reply_to.add(sender)
                    else:
                        host.partial = new_partial = host._combine(
                            partial, incoming)
                        host.updates_observed += 1
                        host._dirty = True
                        host._skip_neighbor = (
                            sender
                            if host._states_equal(new_partial, incoming)
                            else None)
                        if host._reply_to is not None:
                            host._reply_to.discard(sender)
                # inlined _schedule_flush + lane.register_timer
                if not host._flush_pending:
                    host._flush_pending = True
                    wait = host._next_flush - now
                    fire_at = now + (wait if wait > 0.0 else 0.0)
                    if fire_at != last_fire:
                        last_fire = fire_at
                        last_timer_bucket = timers.get(fire_at)
                        if last_timer_bucket is None:
                            timers[fire_at] = last_timer_bucket = []
                            heappush(timer_heap, fire_at)
                    last_timer_bucket.append((dest, FLUSH, None, depth))
            if delivered and depth > max_depth:
                max_depth = depth
        lane.dropped += dropped
        lane.max_depth = max_depth

    def _activate_host(self, host: WildfireHost, dest: int, sender: int,
                       incoming: Any, inc_packed: Optional[int],
                       sender_distance: Optional[int], now: float,
                       depth: int, lane: Any) -> None:
        """Inlined inactive branch of :meth:`WildfireHost.on_message`.

        Transcribed from ``_activate``, ``_fold`` and the Broadcast
        forwarding; the combiner hooks -- including the shared-RNG draw
        in ``initial`` -- run in exact spec order.  In packed mode the
        fold runs on the bitmask int (the packed combiners define
        ``states_equal`` as packed equality and ``combine`` as the
        union, so the int transitions are the spec transitions) and the
        onward Broadcast ships the raw int.  The two ``_schedule_flush``
        sites are coalesced into one registration after the Broadcast
        submit: nothing between them registers a timer, so the timer
        ring order is unchanged.
        """
        distance = (sender_distance + 1) if sender_distance is not None else 1
        # _activate
        host.active = True
        host.distance = distance
        host.partial = host.combiner.initial(host.value, host.rng)
        if host.early_termination and host.host_id != host.querying_host:
            host._deadline = (2.0 * host.d_hat - distance + 1.0) * host.delta
        else:
            host._deadline = self.global_deadline
        self.deadlines[dest] = host._deadline
        # _fold (the freshly set partial is never stale)
        schedule = False
        if inc_packed is not None:
            packed = host._packed
            merged = packed | inc_packed
            if merged != packed:
                host._packed = merged
                host._packed_stale = True
                host.updates_observed += 1
                host._dirty = True
                host._skip_neighbor = (sender if merged == inc_packed
                                       else None)
                if host._reply_to is not None:
                    host._reply_to.discard(sender)
                schedule = True
            elif packed != inc_packed:
                reply_to = host._reply_to
                if reply_to is None:
                    host._reply_to = {sender}
                else:
                    reply_to.add(sender)
                schedule = True
        elif incoming is not None:
            partial = host._partial_obj
            equal = host._states_equal
            new_partial = host._combine(partial, incoming)
            if not equal(new_partial, partial):
                host.partial = new_partial
                host.updates_observed += 1
                host._dirty = True
                host._skip_neighbor = (sender if equal(new_partial, incoming)
                                       else None)
                if host._reply_to is not None:
                    host._reply_to.discard(sender)
                schedule = True
            elif not equal(partial, incoming):
                reply_to = host._reply_to
                if reply_to is None:
                    host._reply_to = {sender}
                else:
                    reply_to.add(sender)
                schedule = True
        # Forward the Broadcast immediately (send_to_neighbors with
        # exclude=(sender,)); flooding must not wait a whole instant.
        nbr_cache = lane.nbr_cache
        neighbors = nbr_cache[dest]
        if neighbors is None:
            nbr_cache[dest] = neighbors = \
                lane.network.alive_neighbors_sorted(dest)
        targets = [t for t in neighbors if t != sender]
        if targets:
            lane.submit_multi(
                dest, targets, BROADCAST,
                host._packed if self.packed_mode else host._partial_obj,
                distance, now, depth + 1)
        # The sender still needs our aggregate if it knows less than us.
        if self.packed_mode:
            owes_reply = inc_packed is None or host._packed != inc_packed
        else:
            owes_reply = (incoming is None
                          or not host._states_equal(host._partial_obj,
                                                    incoming))
        if owes_reply:
            reply_to = host._reply_to
            if reply_to is None:
                host._reply_to = {sender}
            else:
                reply_to.add(sender)
            schedule = True
        if schedule and not host._flush_pending:
            host._flush_pending = True
            wait = host._next_flush - now
            lane.register_timer(now + (wait if wait > 0.0 else 0.0),
                                dest, FLUSH, None, depth)
        host._dirty = False  # neighbors just heard our aggregate

    def process_timer_bucket(self, now: float, bucket: List[tuple],
                             lane: Any) -> None:
        """Fire one instant's timers in registration (spec seq) order.

        The FLUSH handler -- :meth:`WildfireHost.on_timer` plus the
        ``send_to_neighbors`` path it calls -- is transcribed inline; a
        timer with any other name (impossible for WILDFIRE hosts, kept
        for safety) goes through the real hook.  Iteration is by index
        so timers registered while the bucket fires still run within
        this instant, matching the calendar queue's drain semantics.

        All sends from this bucket share one delivery instant
        (``now + delta``) and one accounting key
        (``(now, CONVERGECAST)``), so the lane's submit twins are
        inlined here against one lazily created ring bucket and two
        local counters folded into the lane at the end -- the same
        totals the per-send path would record, in the same FIFO ring
        order.
        """
        hosts = self.hosts
        alive = lane.alive_bytes
        network = lane.network
        has_alive_edge = network.has_alive_edge
        nbr_cache = lane.nbr_cache
        packed_mode = self.packed_mode
        wireless = lane.wireless
        deliver_at = now + lane.delta
        deliveries = lane._deliveries
        ring_bucket = None  # created on first send, never empty
        sent = 0
        wireless_extra = 0
        index = 0
        pending = len(bucket)
        while index < pending:
            host_id, name, data, depth = bucket[index]
            index += 1
            if not alive[host_id]:
                continue  # dead hosts' timers expire silently
            if name != FLUSH:
                lane.run_foreign_timer(now, host_id, name, data, depth)
                # A real hook may have registered same-instant timers.
                pending = len(bucket)
                continue
            # -- inlined WildfireHost.on_timer(FLUSH) ------------------
            host = hosts[host_id]
            host._flush_pending = False
            host._next_flush = now + host.delta
            if not host.active or now > host._deadline:
                host._dirty = False
                host._reply_to = None
                continue
            if host._dirty:
                targets = nbr_cache[host_id]
                if targets is None:
                    nbr_cache[host_id] = targets = \
                        network.alive_neighbors_sorted(host_id)
                skip = host._skip_neighbor
                if skip is not None:
                    targets = [t for t in targets if t != skip]
                if targets:
                    if wireless:
                        # One over-the-air transmission for the batch.
                        sent += 1
                        wireless_extra += len(targets) - 1
                    else:
                        sent += len(targets)
                    if ring_bucket is None:
                        ring_bucket = deliveries.get(deliver_at)
                        if ring_bucket is None:
                            deliveries[deliver_at] = ring_bucket = []
                            heapq.heappush(lane._delivery_heap,
                                           deliver_at)
                    # Packed mode ships the raw bitmask int (receivers
                    # normalise); no sketch materialisation per flush.
                    ring_bucket.append(
                        (host_id, targets, CONVERGECAST,
                         host._packed if packed_mode
                         else host._partial_obj,
                         host.distance, depth + 1))
                host._reply_to = None
            elif host._reply_to:
                agg = (host._packed if packed_mode
                       else host._partial_obj)
                distance = host.distance
                for neighbor in sorted(host._reply_to):
                    # The spec's unicast path re-checks edge liveness
                    # and records nothing when it fails.
                    if not has_alive_edge(host_id, neighbor):
                        continue
                    sent += 1
                    if ring_bucket is None:
                        ring_bucket = deliveries.get(deliver_at)
                        if ring_bucket is None:
                            deliveries[deliver_at] = ring_bucket = []
                            heapq.heappush(lane._delivery_heap,
                                           deliver_at)
                    ring_bucket.append(
                        (host_id, (neighbor,), CONVERGECAST, agg,
                         distance, depth + 1))
                host._reply_to = None
            host._dirty = False
            host._skip_neighbor = None
        if sent:
            lane._send_acc[(now, CONVERGECAST)] += sent
        if wireless_extra:
            lane._wireless_groups += wireless_extra


class Wildfire(Protocol):
    """Protocol object for WILDFIRE runs.

    Args:
        early_termination: enable the distance-based participation window
            optimisation from Section 5.3.
    """

    name = "wildfire"
    requires_duplicate_insensitive = True

    def __init__(self, early_termination: bool = True) -> None:
        self.early_termination = early_termination

    def create_hosts(
        self,
        topology: Topology,
        values: Sequence[float],
        querying_host: int,
        query: AggregateQuery,
        combiner: Combiner,
        d_hat: int,
        delta: float,
        rng: random.Random,
    ) -> List[ProtocolHost]:
        hosts: List[ProtocolHost] = []
        for host_id in range(topology.num_hosts):
            hosts.append(
                WildfireHost(
                    host_id=host_id,
                    value=values[host_id],
                    querying_host=querying_host,
                    combiner=combiner,
                    d_hat=d_hat,
                    delta=delta,
                    rng=rng,
                    early_termination=self.early_termination,
                )
            )
        return hosts

    def termination_time(self, d_hat: int, delta: float) -> float:
        return 2.0 * d_hat * delta

    def default_combiner(self, query: AggregateQuery, repetitions: int = 8):
        from repro.sketches.combiners import combiner_for_query

        # WILDFIRE always needs duplicate-insensitive combine functions.
        return combiner_for_query(query.kind.value, exact=False, repetitions=repetitions)
