"""The WILDFIRE protocol (Section 5).

WILDFIRE floods the query over the network (Broadcast) and then lets every
host repeatedly exchange partial aggregates with all of its neighbors
(Convergecast) until time ``2 * D_hat * delta``.  Because partial aggregates
travel along *every* path rather than a single spanning tree, the value of
any host with a stable path to the querying host is guaranteed to be folded
into the final answer -- this is what buys Single-Site Validity -- provided
the combine function is duplicate-insensitive (min, max, or the FM sketch
operators of Section 5.2).

The implementation batches outgoing Convergecast traffic per time instant:
all partial aggregates a host receives at time ``t`` are folded in first,
and a single (possibly multicast) message carrying the resulting aggregate
is sent at the end of the instant.  This mirrors the paper's cost model, in
which a host sends at most one update to its neighbors per ``delta`` and the
worst-case traffic is ``2 * D_hat * |E|`` messages.

Two optimisations from Section 5.3 are implemented and on by default:

* the first Convergecast message of a host is piggybacked on the Broadcast
  message it forwards, and
* a host at hop distance ``l`` from the querying host only participates
  until time ``(2 * D_hat - l + 1) * delta``.

All deadlines are computed from the delay *bound* ``delta``, never from
observed message timings: under a variable
:class:`~repro.simulation.delay.DelayModel` messages merely arrive
earlier than the deadlines assume, so every guaranteed exchange still
happens in time and Single-Site Validity is preserved.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence, Set

from repro.protocols.base import Protocol
from repro.queries.query import AggregateQuery
from repro.simulation.host import HostContext, ProtocolHost
from repro.simulation.messages import Message
from repro.sketches.combiners import Combiner
from repro.sketches.fm import FMSketch
from repro.topology.base import Topology

#: Message kinds used by the protocol.
BROADCAST = "wf-broadcast"
CONVERGECAST = "wf-convergecast"

#: Name of the per-instant flush timer.
FLUSH = "wf-flush"


class WildfireHost(ProtocolHost):
    """Per-host WILDFIRE state machine (slotted: one per network host)."""

    __slots__ = (
        "querying_host", "combiner", "d_hat", "delta", "rng",
        "early_termination", "active", "distance", "updates_observed",
        "_dirty", "_skip_neighbor", "_reply_to", "_flush_pending",
        "_next_flush", "_combine", "_states_equal", "_absorbs", "_deadline",
        "_packed_mode", "_packed", "_packed_stale", "_reps", "_nbits",
        "_partial_obj",
    )

    def __init__(
        self,
        host_id: int,
        value: float,
        querying_host: int,
        combiner: Combiner,
        d_hat: int,
        delta: float,
        rng: random.Random,
        early_termination: bool = True,
    ) -> None:
        super().__init__(host_id, value)
        self.querying_host = querying_host
        self.combiner = combiner
        self.d_hat = d_hat
        self.delta = delta
        self.rng = rng
        self.early_termination = early_termination

        self.active = False
        self.distance: Optional[int] = None
        self.updates_observed = 0

        # Per-instant batching state.  ``_next_flush`` rate-limits outgoing
        # Convergecast updates to one per ``delta`` (the paper's cost
        # model): under the fixed-delay model every arrival instant is
        # already a multiple of ``delta`` so the limit never delays a
        # flush, but under variable delay models it is what keeps a host
        # from flushing once per (now unique) arrival timestamp.
        # ``_reply_to`` stays None until this host actually owes a
        # neighbor a catch-up reply; most hosts in a large flood never do,
        # and one set per host is real memory at 1M hosts.
        self._dirty = False
        self._skip_neighbor: Optional[int] = None
        self._reply_to: Optional[Set[int]] = None
        self._flush_pending = False
        self._next_flush = 0.0

        # Hot-path bindings: the combine/equality hooks are resolved once,
        # and the participation deadline is cached at activation time (it
        # only depends on the hop distance, which never changes afterwards).
        # The bound-method triple is memoised on the combiner so the whole
        # host table shares three method objects instead of allocating
        # three per host.
        hot = getattr(combiner, "_hot_bindings", None)
        if hot is None:
            hot = (combiner.combine, combiner.states_equal, combiner.absorbs)
            try:
                combiner._hot_bindings = hot
            except AttributeError:  # a slotted third-party combiner
                pass
        self._combine, self._states_equal, self._absorbs = hot
        self._deadline = 2.0 * d_hat * delta

        # FM fast path: when the combiner's state is a packed bitmask
        # (count/sum sketches), convergecast folding runs on bare ints and
        # the FMSketch object is materialised lazily, only when the
        # aggregate is actually sent or read.  Outcomes are identical to
        # the combiner calls: OR <=> combine, int == <=> states_equal.
        self._packed_mode = bool(getattr(combiner, "packed_state", False))
        self._packed: Optional[int] = None
        self._packed_stale = False
        if self._packed_mode:
            self._reps = combiner.repetitions
            self._nbits = combiner.num_bits
        self._partial_obj: Any = None
        self.partial = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def partial(self) -> Any:
        """The current partial aggregate (materialised on demand)."""
        if self._packed_stale:
            self._partial_obj = FMSketch._from_packed(
                self._packed, self._reps, self._nbits)
            self._packed_stale = False
        return self._partial_obj

    @partial.setter
    def partial(self, value: Any) -> None:
        self._partial_obj = value
        self._packed_stale = False
        if self._packed_mode and value is not None:
            self._packed = value.packed

    @property
    def _global_deadline(self) -> float:
        return 2.0 * self.d_hat * self.delta

    def _participation_deadline(self) -> float:
        """The time until which this host keeps processing Convergecast."""
        if (
            self.early_termination
            and self.distance is not None
            and self.host_id != self.querying_host
        ):
            return (2.0 * self.d_hat - self.distance + 1.0) * self.delta
        return self._global_deadline

    def _activate(self, distance: int) -> None:
        self.active = True
        self.distance = distance
        self.partial = self.combiner.initial(self.value, self.rng)
        self._deadline = self._participation_deadline()

    def _payload(self) -> dict:
        return {
            "d_hat": self.d_hat,
            "dist": self.distance,
            "agg": self.partial,
        }

    def _note_reply(self, sender: int) -> None:
        """Mark ``sender`` as owed a catch-up reply (lazy set creation)."""
        reply_to = self._reply_to
        if reply_to is None:
            self._reply_to = {sender}
        else:
            reply_to.add(sender)

    def _schedule_flush(self, ctx: HostContext) -> None:
        if not self._flush_pending:
            self._flush_pending = True
            # Zero-delay timer (or the remainder of the one-per-delta rate
            # limit): timers are dispatched after all message deliveries of
            # the same instant, so every aggregate received by the flush
            # instant is folded in before the single outgoing update.
            wait = self._next_flush - ctx.now
            ctx.set_timer(wait if wait > 0.0 else 0.0, FLUSH)

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    def on_query_start(self, ctx: HostContext) -> None:
        """The querying host initiates Broadcast at time 0."""
        self._activate(distance=0)
        ctx.send_to_neighbors(BROADCAST, self._payload())

    def on_message(self, message: Message, ctx: HostContext) -> None:
        if message.kind not in (BROADCAST, CONVERGECAST):
            return
        incoming = message.payload.get("agg")

        if not self.active:
            if ctx.now >= self._global_deadline:
                return
            sender_distance = message.payload.get("dist")
            distance = (sender_distance + 1) if sender_distance is not None else 1
            self._activate(distance=distance)
            # Forward the Broadcast immediately (flooding must not wait a
            # whole instant); the current partial aggregate -- already folded
            # with the piggybacked one below -- rides along as this host's
            # first Convergecast contribution.
            self._fold(incoming, message.sender, ctx)
            ctx.send_to_neighbors(BROADCAST, self._payload(),
                                  exclude=(message.sender,))
            # The sender still needs our aggregate if it knows less than us.
            if incoming is None or not self.combiner.states_equal(self.partial, incoming):
                self._note_reply(message.sender)
                self._schedule_flush(ctx)
            self._dirty = False  # neighbors just heard our aggregate
            return

        if ctx.now > self._deadline:
            return
        # Inlined _fold (Fig. 4 rules), the hottest protocol code path.
        if incoming is None:
            return
        if self._packed_mode:
            # Sketch folding on bare packed ints; no object allocation at
            # all unless the aggregate actually grows.
            packed = self._packed
            inc = incoming.packed
            merged = packed | inc
            if merged == packed:
                if packed != inc:
                    self._note_reply(message.sender)
                    self._schedule_flush(ctx)
                return
            self._packed = merged
            self._packed_stale = True
            self.updates_observed += 1
            self._dirty = True
            # If the merge result equals what the sender already has, there
            # is no point echoing it straight back (Example 5.1).
            self._skip_neighbor = message.sender if merged == inc else None
            if self._reply_to is not None:
                self._reply_to.discard(message.sender)
            self._schedule_flush(ctx)
            return
        # Generic combiners: ``absorbs`` tests containment without
        # allocating a merged state that would be discarded.
        partial = self.partial
        if self._absorbs(partial, incoming):
            if not self._states_equal(partial, incoming):
                # Our aggregate did not change but the sender's is stale:
                # send ours back so the sender (and eventually the querying
                # host on the other side of it) catches up.
                self._note_reply(message.sender)
                self._schedule_flush(ctx)
            return
        self.partial = new_partial = self._combine(partial, incoming)
        self.updates_observed += 1
        self._dirty = True
        # If the merge result equals what the sender already has, there
        # is no point echoing it straight back (Example 5.1).
        if self._states_equal(new_partial, incoming):
            self._skip_neighbor = message.sender
        else:
            self._skip_neighbor = None
        if self._reply_to is not None:
            self._reply_to.discard(message.sender)
        self._schedule_flush(ctx)

    def _fold(self, incoming: Any, sender: int, ctx: HostContext) -> None:
        """Fold a received partial aggregate into our own (Fig. 4 rules)."""
        if incoming is None:
            return
        new_partial = self._combine(self.partial, incoming)
        if not self._states_equal(new_partial, self.partial):
            self.partial = new_partial
            self.updates_observed += 1
            self._dirty = True
            if self._states_equal(self.partial, incoming):
                self._skip_neighbor = sender
            else:
                self._skip_neighbor = None
            if self._reply_to is not None:
                self._reply_to.discard(sender)
            self._schedule_flush(ctx)
        elif not self._states_equal(self.partial, incoming):
            self._note_reply(sender)
            self._schedule_flush(ctx)

    def on_timer(self, name: str, data: Any, ctx: HostContext) -> None:
        if name != FLUSH:
            return
        self._flush_pending = False
        self._next_flush = ctx.now + self.delta
        if not self.active or ctx.now > self._deadline:
            self._dirty = False
            self._reply_to = None
            return
        if self._dirty:
            exclude = (self._skip_neighbor,) if self._skip_neighbor is not None else ()
            ctx.send_to_neighbors(CONVERGECAST, self._payload(), exclude=exclude)
            self._reply_to = None
        elif self._reply_to:
            payload = self._payload()
            for neighbor in sorted(self._reply_to):
                # ``ctx.send`` performs the alive-edge check itself (and
                # records nothing when it fails), so no neighbor-view
                # needs materialising here.
                ctx.send(neighbor, CONVERGECAST, payload)
            self._reply_to = None
        self._dirty = False
        self._skip_neighbor = None

    def local_result(self) -> Optional[float]:
        """The value this host would declare (meaningful at the querying host)."""
        if self.partial is None:
            return None
        return self.combiner.finalize(self.partial)


class Wildfire(Protocol):
    """Protocol object for WILDFIRE runs.

    Args:
        early_termination: enable the distance-based participation window
            optimisation from Section 5.3.
    """

    name = "wildfire"
    requires_duplicate_insensitive = True

    def __init__(self, early_termination: bool = True) -> None:
        self.early_termination = early_termination

    def create_hosts(
        self,
        topology: Topology,
        values: Sequence[float],
        querying_host: int,
        query: AggregateQuery,
        combiner: Combiner,
        d_hat: int,
        delta: float,
        rng: random.Random,
    ) -> List[ProtocolHost]:
        hosts: List[ProtocolHost] = []
        for host_id in range(topology.num_hosts):
            hosts.append(
                WildfireHost(
                    host_id=host_id,
                    value=values[host_id],
                    querying_host=querying_host,
                    combiner=combiner,
                    d_hat=d_hat,
                    delta=delta,
                    rng=rng,
                    early_termination=self.early_termination,
                )
            )
        return hosts

    def termination_time(self, d_hat: int, delta: float) -> float:
        return 2.0 * d_hat * delta

    def default_combiner(self, query: AggregateQuery, repetitions: int = 8):
        from repro.sketches.combiners import combiner_for_query

        # WILDFIRE always needs duplicate-insensitive combine functions.
        return combiner_for_query(query.kind.value, exact=False, repetitions=repetitions)
