"""Push-sum gossip: an eventual-consistency baseline (Section 2.2).

Epidemic algorithms compute aggregates by having every host repeatedly
exchange state with randomly chosen neighbors.  They tolerate random
failures well but only offer *eventual* consistency -- there is no instant
at which the answer carries Single-Site Validity guarantees.  This module
implements the classic push-sum protocol (Kempe et al.) over the network's
neighbor relation so the experiment harness and tests can contrast the two
semantics.

Each host maintains a pair ``(s, w)``.  For sum/avg queries ``s`` starts as
the host's value; for count queries ``s`` starts as 1.  The querying host
starts with weight 1, every other host with weight 0.  Every round each host
splits its pair in half, keeps one half, and sends the other half to a
random alive neighbor; ``s / w`` at the querying host converges to the
average of the initial ``s`` values, from which sum and count follow by
multiplying with the (known or estimated) network size -- here we instead
track the mass-conservation form where the querying host's estimate of
``sum = s / w`` directly, since total weight is 1.

Rounds are paced by ``delta`` timers, i.e. by the delay *bound*: under a
variable :class:`~repro.simulation.delay.DelayModel` a share sent in
round ``r`` still arrives before the recipient's round ``r + 1`` timer
fires, so mass conservation (and hence convergence) is unaffected.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence

from repro.protocols.base import Protocol
from repro.queries.query import AggregateQuery, QueryKind
from repro.simulation.host import HostContext, ProtocolHost
from repro.simulation.messages import Message
from repro.sketches.combiners import Combiner
from repro.topology.base import Topology

START = "gs-start"
SHARE = "gs-share"


class PushSumHost(ProtocolHost):
    """Per-host push-sum state machine driven by per-round timers (slotted)."""

    __slots__ = (
        "querying_host", "query", "num_rounds", "delta", "rng",
        "mass", "weight", "extremum", "rounds_done", "started",
    )

    def __init__(
        self,
        host_id: int,
        value: float,
        querying_host: int,
        query: AggregateQuery,
        num_rounds: int,
        delta: float,
        rng: random.Random,
    ) -> None:
        super().__init__(host_id, value)
        self.querying_host = querying_host
        self.query = query
        self.num_rounds = num_rounds
        self.delta = delta
        self.rng = rng

        if query.kind is QueryKind.COUNT:
            self.mass = 1.0
        elif query.kind in (QueryKind.SUM, QueryKind.AVG):
            self.mass = float(value)
        else:
            # Min/max gossip degenerates to flooding the extremum.
            self.mass = float(value)
        if query.kind is QueryKind.AVG:
            # For averages every host starts with weight 1, so s/w converges
            # to (sum of values) / (number of hosts).
            self.weight = 1.0
        else:
            # For sum/count only the querying host holds weight, so the total
            # weight is 1 and s/w converges to the total mass.
            self.weight = 1.0 if host_id == querying_host else 0.0
        self.extremum = float(value)
        self.rounds_done = 0
        self.started = False

    def on_query_start(self, ctx: HostContext) -> None:
        # The querying host kicks every host off by flooding a start signal.
        self.started = True
        ctx.send_to_neighbors(START, {"rounds": self.num_rounds})
        ctx.set_timer(self.delta, "round")

    def on_message(self, message: Message, ctx: HostContext) -> None:
        if message.kind == START:
            if not self.started:
                self.started = True
                ctx.send_to_neighbors(START, {"rounds": self.num_rounds},
                                      exclude=(message.sender,))
                ctx.set_timer(self.delta, "round")
            return
        if message.kind == SHARE:
            self.mass += float(message.payload["mass"])
            self.weight += float(message.payload["weight"])
            self.extremum = self._combine_extremum(
                self.extremum, float(message.payload["extremum"])
            )

    def _combine_extremum(self, a: float, b: float) -> float:
        if self.query.kind is QueryKind.MIN:
            return min(a, b)
        return max(a, b)

    def on_timer(self, name: str, data: Any, ctx: HostContext) -> None:
        if name != "round" or self.rounds_done >= self.num_rounds:
            return
        self.rounds_done += 1
        # The packed sorted view is element-for-element what
        # ``sorted(ctx.neighbors())`` produced, so the rng draw -- and the
        # golden bitstream -- is unchanged.
        neighbors = ctx.neighbors_sorted()
        if neighbors:
            target = self.rng.choice(neighbors)
            half_mass = self.mass / 2.0
            half_weight = self.weight / 2.0
            self.mass -= half_mass
            self.weight -= half_weight
            ctx.send(target, SHARE, {
                "mass": half_mass,
                "weight": half_weight,
                "extremum": self.extremum,
            })
        if self.rounds_done < self.num_rounds:
            ctx.set_timer(self.delta, "round")

    def local_result(self) -> Optional[float]:
        if self.query.kind in (QueryKind.MIN, QueryKind.MAX):
            return self.extremum
        if self.weight <= 0.0:
            return None
        return self.mass / self.weight


class PushSumGossip(Protocol):
    """Protocol object for push-sum gossip runs.

    Args:
        num_rounds: gossip rounds to execute; the answer only converges as
            the number of rounds grows (eventual consistency).
    """

    name = "push-sum-gossip"
    requires_duplicate_insensitive = False

    stochastic = True  # random neighbor choice every round

    def __init__(self, num_rounds: int = 50) -> None:
        if num_rounds < 1:
            raise ValueError("num_rounds must be at least 1")
        self.num_rounds = num_rounds

    def config_spec(self) -> tuple:
        return (self.num_rounds,)

    def create_hosts(
        self,
        topology: Topology,
        values: Sequence[float],
        querying_host: int,
        query: AggregateQuery,
        combiner: Combiner,
        d_hat: int,
        delta: float,
        rng: random.Random,
    ) -> List[ProtocolHost]:
        return [
            PushSumHost(
                host_id=host_id,
                value=values[host_id],
                querying_host=querying_host,
                query=query,
                num_rounds=self.num_rounds,
                delta=delta,
                rng=rng,
            )
            for host_id in range(topology.num_hosts)
        ]

    def termination_time(self, d_hat: int, delta: float) -> float:
        # One flood to start plus the configured number of rounds.
        return (self.num_rounds + d_hat + 1) * delta
