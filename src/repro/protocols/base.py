"""Shared protocol plumbing: the Protocol interface and the run harness."""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.queries.query import AggregateQuery, QueryKind
from repro.simulation.churn import ChurnSchedule
from repro.simulation.delay import DelayModel, delay_model_from_spec
from repro.simulation.engine import SimulationResult, Simulator
from repro.simulation.host import ProtocolHost
from repro.simulation.network import DynamicNetwork
from repro.simulation.stats import StatsSink
from repro.sketches.combiners import Combiner, combiner_for_query
from repro.topology.base import Topology


@dataclass
class ProtocolRunResult:
    """The outcome of running one protocol once on one network.

    Attributes:
        protocol: the protocol's short name.
        query: the aggregate query that was processed.
        value: the answer declared at the querying host (``None`` if the
            protocol produced none, e.g. the querying host failed).
        costs: message/computation/time cost accounting for the run.
        finished_at: simulation time when the run stopped.
        querying_host: id of the querying host.
        d_hat: the stable-diameter overestimate used by the run.
        termination_time: the protocol's nominal termination time ``T``.
        extra: protocol-specific details (tree depth, reports received, ...).
        fallback_reason: why an opt-in kernel lane (``vector`` /
            ``sharded``) declined this run and the spec loop ran instead
            (``None``: the requested lane ran, or the spec lane was
            requested).
    """

    protocol: str
    query: AggregateQuery
    value: Optional[float]
    costs: StatsSink
    finished_at: float
    querying_host: int
    d_hat: int
    termination_time: float
    extra: Dict[str, Any] = field(default_factory=dict)
    fallback_reason: Optional[str] = None


class Protocol(abc.ABC):
    """A runnable aggregation protocol.

    Concrete protocols know how to build their per-host state machines and
    how long they nominally run; everything else (network construction,
    churn, cost accounting) is shared in :func:`run_protocol`.
    """

    #: Short name used in experiment tables.
    name: str = "protocol"

    #: Whether the protocol needs a duplicate-insensitive combiner to return
    #: meaningful answers for count/sum/avg.
    requires_duplicate_insensitive: bool = False

    #: Whether the protocol's message schedule itself consumes the run RNG
    #: (beyond combiner state), so its declared result can depend on the
    #: seed even with an exact combiner under fixed delay.  Protocols whose
    #: stochasticity depends on configuration set this per instance.
    stochastic: bool = False

    def config_spec(self) -> tuple:
        """Digest-relevant constructor configuration not already in ``name``.

        The shared-flood cache keys computations on ``(name, *config_spec())``
        so two same-name protocol objects configured differently (e.g.
        ALLREPORT at different report probabilities) never share a flood.
        """
        return ()

    @abc.abstractmethod
    def create_hosts(
        self,
        topology: Topology,
        values: Sequence[float],
        querying_host: int,
        query: AggregateQuery,
        combiner: Combiner,
        d_hat: int,
        delta: float,
        rng: random.Random,
    ) -> List[ProtocolHost]:
        """Build one protocol host per topology host."""

    @abc.abstractmethod
    def termination_time(self, d_hat: int, delta: float) -> float:
        """The nominal time ``T`` at which the querying host declares."""

    def default_combiner(self, query: AggregateQuery, repetitions: int = 8) -> Combiner:
        """The combiner this protocol would pick for a query by default."""
        exact = not self.requires_duplicate_insensitive and not query.kind.duplicate_insensitive_exact
        return combiner_for_query(query.kind.value, exact=exact, repetitions=repetitions)


def protocol_from_spec(spec: "Protocol | str") -> Protocol:
    """Build a protocol from a compact spec string.

    A ready-made :class:`Protocol` passes through unchanged.  Strings name
    the registered protocols: ``wildfire``, ``spanning-tree``, ``dagK``
    (K >= 2 parents, e.g. ``dag2``), ``allreport``, ``randomized-report``
    and ``gossip``.  This is the single resolver behind ``repro bench``,
    ``repro serve``, the orchestration runners and the query-mix workload
    generator, so every surface accepts the same names.
    """
    if isinstance(spec, Protocol):
        return spec
    name = str(spec).strip().lower().replace("_", "-")
    if name == "wildfire":
        from repro.protocols.wildfire import Wildfire

        return Wildfire()
    if name == "spanning-tree":
        from repro.protocols.spanning_tree import SpanningTree

        return SpanningTree()
    if name.startswith("dag"):
        from repro.protocols.dag import DirectedAcyclicGraph

        suffix = name[3:] or "2"
        if suffix.startswith("-k"):  # the protocol's own name, "dag-kK"
            suffix = suffix[2:]
        if suffix.isdigit() and int(suffix) >= 2:
            return DirectedAcyclicGraph(num_parents=int(suffix))
    elif name == "allreport":
        from repro.protocols.allreport import AllReport

        return AllReport()
    elif name == "randomized-report":
        from repro.protocols.randomized_report import RandomizedReport

        return RandomizedReport()
    elif name in ("gossip", "push-sum-gossip"):
        from repro.protocols.gossip import PushSumGossip

        return PushSumGossip()
    raise KeyError(
        f"unknown protocol {spec!r}; known: wildfire, spanning-tree, dagK "
        f"(K >= 2, e.g. dag2), allreport, randomized-report, gossip"
    )


def resolve_d_hat(
    topology: Topology,
    d_hat: Optional[int],
    overestimate_factor: float = 1.5,
    seed: int = 0,
) -> int:
    """Pick a stable-diameter overestimate when the caller did not give one.

    The paper assumes the querying host can overestimate the stable diameter
    by a reasonably small constant; we estimate the diameter by double-sweep
    BFS and pad it.
    """
    if d_hat is not None:
        if d_hat < 1:
            raise ValueError("d_hat must be at least 1")
        return int(d_hat)
    estimate = topology.diameter_estimate(seed=seed)
    return max(1, int(round(estimate * overestimate_factor)) + 1)


@dataclass
class PreparedRun:
    """Everything one protocol execution derives from ``(query, seed)``.

    This is the shared seed-derivation seam between :func:`run_protocol`
    (one private simulator per query) and the multi-tenant
    :class:`~repro.service.QueryService` (many queries multiplexed over
    one shared simulator): both build their per-query state through
    :func:`prepare_protocol_run`, so a query executed inside the service
    with seed ``s`` is bit-identical to ``run_protocol(..., seed=s)``.

    Attributes:
        query: the parsed aggregate query.
        combiner: the combine function the run will use.
        d_hat: the resolved stable-diameter overestimate.
        termination: the protocol's nominal termination time ``T``.
        hosts: one freshly built protocol state machine per topology host.
        rng: the run RNG (already consumed by host construction).
        delay_model: resolved realised-delay model (``None`` = fixed).
    """

    query: AggregateQuery
    combiner: Combiner
    d_hat: int
    termination: float
    hosts: List[ProtocolHost]
    rng: random.Random
    delay_model: Optional[DelayModel]


def prepare_protocol_run(
    protocol: Protocol,
    topology: Topology,
    values: Sequence[float],
    query: "AggregateQuery | str",
    querying_host: int = 0,
    combiner: Optional[Combiner] = None,
    d_hat: Optional[int] = None,
    delta: float = 1.0,
    seed: int = 0,
    repetitions: int = 8,
    delay: "DelayModel | str | None" = None,
) -> PreparedRun:
    """Derive one protocol execution's state from its seed.

    The derivation order is load-bearing: ``rng`` seeds both sketch
    initialisation and protocol randomness, stochastic delay models are
    reseeded from a *separate* stream (consuming the shared RNG there
    would shift every host's sketch randomness, making fixed- and
    variable-delay columns of one sweep differ by coin noise rather than
    timing alone), and the golden snapshots pin the resulting fixed-delay
    bitstream.  Any caller that goes through this function -- the solo
    harness or the query service -- reproduces the same derivation.
    """
    if isinstance(query, str):
        query = AggregateQuery.of(query)
    if len(values) < topology.num_hosts:
        raise ValueError("need one attribute value per host")
    if not 0 <= querying_host < topology.num_hosts:
        raise ValueError("querying_host is not part of the topology")

    rng = random.Random(seed)
    delay_model = delay_model_from_spec(delay, float(delta), seed=seed)
    if delay_model is not None and delay_model.stochastic:
        delay_model.reseed(
            random.Random(f"{seed}:delay-model").getrandbits(64))
    resolved_d_hat = resolve_d_hat(topology, d_hat, seed=seed)
    if combiner is None:
        combiner = protocol.default_combiner(query, repetitions=repetitions)
    if protocol.requires_duplicate_insensitive and not combiner.duplicate_insensitive:
        raise ValueError(
            f"{protocol.name} floods partial aggregates along multiple paths and "
            f"requires a duplicate-insensitive combiner; got {combiner.name!r}"
        )
    hosts = protocol.create_hosts(
        topology=topology,
        values=values,
        querying_host=querying_host,
        query=query,
        combiner=combiner,
        d_hat=resolved_d_hat,
        delta=delta,
        rng=rng,
    )
    return PreparedRun(
        query=query,
        combiner=combiner,
        d_hat=resolved_d_hat,
        termination=protocol.termination_time(resolved_d_hat, delta),
        hosts=hosts,
        rng=rng,
        delay_model=delay_model,
    )


def run_protocol(
    protocol: Protocol,
    topology: Topology,
    values: Sequence[float],
    query: AggregateQuery | str,
    querying_host: int = 0,
    combiner: Optional[Combiner] = None,
    d_hat: Optional[int] = None,
    delta: float = 1.0,
    churn: Optional[ChurnSchedule] = None,
    wireless: bool = False,
    seed: int = 0,
    repetitions: int = 8,
    max_time: Optional[float] = None,
    delay: "DelayModel | str | None" = None,
    stats: "StatsSink | str | None" = None,
    tracer=None,
    lane: str = "python",
    shards: int = 1,
) -> ProtocolRunResult:
    """Run ``protocol`` once and return its declared answer and costs.

    This is the seam between the experiment drivers and the batched
    simulation kernel: the topology hands its freshly built adjacency to
    :class:`~repro.simulation.network.DynamicNetwork` without re-copying
    or re-validating, the diameter estimate behind ``d_hat`` is memoised
    on the topology (drivers re-run many trials on one graph), and the
    per-trial RNG seeds both sketch initialisation and protocol
    randomness so a (topology, seed) pair is fully reproducible at any
    network size.

    Args:
        protocol: the protocol to execute.
        topology: initial network topology.
        values: one attribute value per host.
        query: the aggregate query (an :class:`AggregateQuery` or a string
            kind such as ``"count"``).
        querying_host: host at which the query is issued at time 0.
        combiner: combine function; defaults to the protocol's natural choice
            for the query (FM sketches for WILDFIRE count/sum, exact addition
            for the tree protocols).
        d_hat: stable-diameter overestimate ``D_hat``; estimated from the
            topology when omitted.
        delta: per-hop message delay.
        churn: failure schedule applied during the run (``None`` = static).
        wireless: model a broadcast medium (sensor grid experiments).
        seed: RNG seed for sketch initialisation and protocol randomness.
        repetitions: FM repetitions used when a default combiner is built.
        max_time: override for the simulator's runaway backstop (defaults
            to four times the nominal termination time; tighten it to
            fail fast on non-terminating regressions in large-scale runs).
        delay: realised link-delay model (a spec string such as
            ``"uniform"`` / ``"heavy_tail:1.5"``, a ready-made
            :class:`~repro.simulation.delay.DelayModel` with bound
            ``delta``, or ``None``/``"fixed"`` for the paper's exact-
            ``delta`` worst case).  ``delta`` stays the *bound* the
            protocols' timer math uses regardless of the model.
        stats: cost accounting mode -- ``"full"`` (default),
            ``"streaming"`` for the bounded-memory sink used by
            million-host runs, or a ready-made sink.
        tracer: structured trace sink from :mod:`repro.obs.trace`
            (``None`` = the process default, usually disabled).  Tracers
            observe; the declared value and every cost counter are
            bit-identical with tracing on or off.
        lane: kernel lane -- ``"python"`` (the executable spec, default),
            ``"vector"`` for the opt-in per-tick vectorized lane
            (:mod:`repro.simulation.vector_lane`), or ``"sharded"`` for
            the multiprocess epoch-synchronous lane
            (:mod:`repro.simulation.sharded`); both opt-in lanes are
            locked bit-identical to the spec path and fall back to it
            when the run is unsupported.
        shards: worker-process count for the sharded lane (ignored by
            the other lanes).
    """
    prepared = prepare_protocol_run(
        protocol, topology, values, query,
        querying_host=querying_host, combiner=combiner, d_hat=d_hat,
        delta=delta, seed=seed, repetitions=repetitions, delay=delay,
    )
    network = topology.to_network()
    termination = prepared.termination
    simulator = Simulator(
        network=network,
        hosts=prepared.hosts,
        querying_host=querying_host,
        delta=delta,
        churn=churn,
        wireless=wireless,
        max_time=termination * 4 + 16 if max_time is None else max_time,
        delay_model=prepared.delay_model,
        stats=stats,
        tracer=tracer,
        lane=lane,
        shards=shards,
    )
    sim_result: SimulationResult = simulator.run(until=termination)
    return ProtocolRunResult(
        protocol=protocol.name,
        query=prepared.query,
        value=sim_result.value,
        costs=sim_result.costs,
        finished_at=sim_result.finished_at,
        querying_host=querying_host,
        d_hat=prepared.d_hat,
        termination_time=termination,
        extra=dict(sim_result.extra),
        fallback_reason=sim_result.fallback_reason,
    )
