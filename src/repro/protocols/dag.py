"""The DIRECTEDACYCLICGRAPH best-effort protocol (Section 4.4).

A DAG protocol gives every host up to ``k`` parents instead of one, so a
single parent failure no longer discards the whole subtree.  Because a
host's partial aggregate now reaches the querying host along several paths,
the protocol must use duplicate-insensitive combine functions for count and
sum -- the paper's implementation (and ours) uses the FM sketch operators.

Report deadlines are computed from the delay *bound* ``delta`` (see the
spanning-tree module for the argument); extra parents are only adopted
from strictly shallower hosts, which keeps the parent relation acyclic
under any realised delay model bounded by ``delta``.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence

from repro.protocols.base import Protocol
from repro.queries.query import AggregateQuery
from repro.simulation.host import HostContext, ProtocolHost
from repro.simulation.messages import Message
from repro.sketches.combiners import Combiner, combiner_for_query
from repro.topology.base import Topology

BROADCAST = "dag-broadcast"
REPORT = "dag-report"


class DagHost(ProtocolHost):
    """Per-host DIRECTEDACYCLICGRAPH state machine (slotted)."""

    __slots__ = (
        "querying_host", "combiner", "d_hat", "delta", "rng", "num_parents",
        "active", "parents", "depth", "partial", "reports_received",
        "reported",
    )

    def __init__(
        self,
        host_id: int,
        value: float,
        querying_host: int,
        combiner: Combiner,
        d_hat: int,
        delta: float,
        rng: random.Random,
        num_parents: int = 2,
    ) -> None:
        super().__init__(host_id, value)
        if num_parents < 1:
            raise ValueError("num_parents must be at least 1")
        self.querying_host = querying_host
        self.combiner = combiner
        self.d_hat = d_hat
        self.delta = delta
        self.rng = rng
        self.num_parents = num_parents

        self.active = False
        self.parents: List[int] = []
        self.depth: Optional[int] = None
        self.partial: Any = None
        self.reports_received = 0
        self.reported = False

    def on_query_start(self, ctx: HostContext) -> None:
        self.active = True
        self.depth = 0
        self.partial = self.combiner.initial(self.value, self.rng)
        ctx.send_to_neighbors(BROADCAST, {"depth": 0, "d_hat": self.d_hat})

    def on_message(self, message: Message, ctx: HostContext) -> None:
        if message.kind == BROADCAST:
            self._on_broadcast(message, ctx)
        elif message.kind == REPORT:
            self._on_report(message, ctx)

    def _on_broadcast(self, message: Message, ctx: HostContext) -> None:
        sender_depth = int(message.payload["depth"])
        if not self.active:
            self.active = True
            self.parents = [message.sender]
            self.depth = sender_depth + 1
            self.partial = self.combiner.initial(self.value, self.rng)
            ctx.send_to_neighbors(
                BROADCAST,
                {"depth": self.depth, "d_hat": self.d_hat},
                exclude=(message.sender,),
            )
            report_time = (2.0 * self.d_hat - self.depth) * self.delta
            ctx.set_timer(max(0.0, report_time - ctx.now), "report")
            return
        # Additional Broadcasts from hosts no deeper than us become extra
        # parents, up to k; this keeps the parent relation acyclic.
        if (
            len(self.parents) < self.num_parents
            and message.sender not in self.parents
            and self.depth is not None
            and sender_depth < self.depth
            and message.sender != self.host_id
        ):
            self.parents.append(message.sender)

    def _on_report(self, message: Message, ctx: HostContext) -> None:
        if not self.active or self.reported:
            return
        self.partial = self.combiner.combine(self.partial, message.payload["agg"])
        self.reports_received += 1

    def on_timer(self, name: str, data: Any, ctx: HostContext) -> None:
        if name != "report" or self.reported or not self.parents:
            return
        self.reported = True
        payload = {"agg": self.partial}
        for parent in self.parents:
            # ``ctx.send`` performs the alive-edge check itself and
            # records nothing when it fails, so the guarded send needs no
            # materialised neighbor view.
            ctx.send(parent, REPORT, payload)

    def local_result(self) -> Optional[float]:
        if self.partial is None:
            return None
        return self.combiner.finalize(self.partial)


class DirectedAcyclicGraph(Protocol):
    """Protocol object for DIRECTEDACYCLICGRAPH runs.

    Args:
        num_parents: the fan-out ``k`` (the paper evaluates k = 2 and k = 3).
    """

    requires_duplicate_insensitive = False

    def __init__(self, num_parents: int = 2) -> None:
        if num_parents < 1:
            raise ValueError("num_parents must be at least 1")
        self.num_parents = num_parents
        self.name = f"dag-k{num_parents}"

    def create_hosts(
        self,
        topology: Topology,
        values: Sequence[float],
        querying_host: int,
        query: AggregateQuery,
        combiner: Combiner,
        d_hat: int,
        delta: float,
        rng: random.Random,
    ) -> List[ProtocolHost]:
        return [
            DagHost(
                host_id=host_id,
                value=values[host_id],
                querying_host=querying_host,
                combiner=combiner,
                d_hat=d_hat,
                delta=delta,
                rng=rng,
                num_parents=self.num_parents,
            )
            for host_id in range(topology.num_hosts)
        ]

    def termination_time(self, d_hat: int, delta: float) -> float:
        return 2.0 * d_hat * delta

    def default_combiner(self, query: AggregateQuery, repetitions: int = 8) -> Combiner:
        # With multiple parents the same partial aggregate reaches the root
        # along several paths, so count/sum/avg must use the FM operators.
        return combiner_for_query(query.kind.value, exact=False, repetitions=repetitions)
