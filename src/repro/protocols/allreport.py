"""The ALLREPORT protocol (Fig. 2): direct delivery of every value.

ALLREPORT is the constructive proof that Single-Site Validity is achievable:
the querying host floods the query, every host that hears it sends its raw
attribute value back to the querying host, and at time ``2 * D_hat * delta``
the querying host aggregates whatever arrived.  Values are routed hop-by-hop
back along the reverse of the Broadcast path (with a fallback to any other
alive neighbor when the upstream hop has failed), so the communication cost
is one message per hop of every value's route -- the "Direct Delivery" price
the paper contrasts with in-network aggregation.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.protocols.base import Protocol
from repro.queries.query import AggregateQuery
from repro.simulation.host import HostContext, ProtocolHost
from repro.simulation.messages import Message
from repro.sketches.combiners import Combiner
from repro.topology.base import Topology

BROADCAST = "ar-broadcast"
REPORT = "ar-report"


class AllReportHost(ProtocolHost):
    """Per-host ALLREPORT state machine (slotted: one per network host)."""

    __slots__ = (
        "querying_host", "query", "d_hat", "delta", "rng",
        "report_probability", "active", "upstream", "collected",
        "forward_targets",
    )

    def __init__(
        self,
        host_id: int,
        value: float,
        querying_host: int,
        query: AggregateQuery,
        d_hat: int,
        delta: float,
        rng: random.Random,
        report_probability: float = 1.0,
    ) -> None:
        super().__init__(host_id, value)
        if not 0.0 < report_probability <= 1.0:
            raise ValueError("report_probability must be in (0, 1]")
        self.querying_host = querying_host
        self.query = query
        self.d_hat = d_hat
        self.delta = delta
        self.rng = rng
        self.report_probability = report_probability

        self.active = False
        self.upstream: Optional[int] = None
        self.collected: Dict[int, float] = {}
        # Per-origin set of neighbors this host has already forwarded the
        # origin's report to; a report is never resent to the same target.
        self.forward_targets: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    @property
    def _deadline(self) -> float:
        return 2.0 * self.d_hat * self.delta

    def on_query_start(self, ctx: HostContext) -> None:
        self.active = True
        self.collected[self.host_id] = self.value
        ctx.send_to_neighbors(BROADCAST, {"d_hat": self.d_hat})

    def on_message(self, message: Message, ctx: HostContext) -> None:
        if message.kind == BROADCAST:
            self._on_broadcast(message, ctx)
        elif message.kind == REPORT:
            self._on_report(message, ctx)

    def _on_broadcast(self, message: Message, ctx: HostContext) -> None:
        if self.active or ctx.now >= self._deadline:
            return
        self.active = True
        self.upstream = message.sender
        ctx.send_to_neighbors(BROADCAST, {"d_hat": self.d_hat},
                              exclude=(self.upstream,))
        if self.rng.random() <= self.report_probability:
            self._emit_report(
                origin=self.host_id,
                value=self.value,
                ttl=2 * self.d_hat,
                came_from=None,
                ctx=ctx,
            )

    def _on_report(self, message: Message, ctx: HostContext) -> None:
        origin = int(message.payload["origin"])
        value = float(message.payload["value"])
        ttl = int(message.payload["ttl"])
        if self.host_id == self.querying_host:
            if ctx.now <= self._deadline:
                self.collected[origin] = value
            return
        if ctx.now > self._deadline or ttl <= 0:
            return
        self._emit_report(origin=origin, value=value, ttl=ttl - 1,
                          came_from=message.sender, ctx=ctx)

    def _emit_report(
        self,
        origin: int,
        value: float,
        ttl: int,
        came_from: Optional[int],
        ctx: HostContext,
    ) -> None:
        """Forward a value one hop toward the querying host.

        The preferred next hop is the querying host itself (if adjacent),
        then the upstream neighbor recorded during Broadcast, then any other
        alive neighbor; the neighbor the report arrived from is used only as
        a last resort.  A host never sends the same origin's report to the
        same target twice, which bounds traffic and prevents loops while
        still letting reports route around failed hosts (e.g. the long way
        around a ring).  A retry timer re-routes reports whose chosen target
        failed while the message was in flight.
        """
        used = self.forward_targets.setdefault(origin, set())
        alive = ctx.neighbors()
        payload = {"origin": origin, "value": value, "ttl": ttl}

        preferences = []
        if self.querying_host in alive:
            preferences.append(self.querying_host)
        if self.upstream is not None and self.upstream != came_from:
            # Routing back where the report came from would just bounce it
            # between the two hosts; prefer making progress elsewhere.
            preferences.append(self.upstream)
        preferences.extend(sorted(h for h in alive if h != came_from))
        if came_from is not None:
            preferences.append(came_from)

        for target in preferences:
            if target in used or target not in alive:
                continue
            used.add(target)
            ctx.send(target, REPORT, payload)
            if target != self.querying_host:
                # Re-check later: if the target failed before delivery, the
                # report is silently dropped by the network, so re-route it.
                ctx.set_timer(2.0 * self.delta, "ar-retry",
                              data={"origin": origin, "value": value,
                                    "ttl": ttl, "target": target})
            return

    def on_timer(self, name: str, data, ctx: HostContext) -> None:
        if name != "ar-retry" or not isinstance(data, dict):
            return
        if ctx.now > self._deadline:
            return
        target = data.get("target")
        if target in ctx.neighbors():
            return  # target survived; the report was delivered
        self._emit_report(origin=data["origin"], value=data["value"],
                          ttl=int(data["ttl"]) - 1, came_from=None, ctx=ctx)

    def local_result(self) -> Optional[float]:
        if self.host_id != self.querying_host or not self.collected:
            return None
        values = list(self.collected.values())
        if self.report_probability < 1.0 and self.query.kind.value == "count":
            # RANDOMIZEDREPORT estimate: |M| / p.
            return len(values) / self.report_probability
        return self.query.evaluate(values)


class AllReport(Protocol):
    """Protocol object for ALLREPORT (Direct Delivery) runs."""

    name = "allreport"
    requires_duplicate_insensitive = False

    def __init__(self, report_probability: float = 1.0) -> None:
        if not 0.0 < report_probability <= 1.0:
            raise ValueError("report_probability must be in (0, 1]")
        self.report_probability = report_probability
        # At p = 1.0 every host reports regardless of its coin flips, so
        # the run is seed-independent; any true sampling is not.
        self.stochastic = report_probability < 1.0

    def config_spec(self) -> tuple:
        return (self.report_probability,)

    def create_hosts(
        self,
        topology: Topology,
        values: Sequence[float],
        querying_host: int,
        query: AggregateQuery,
        combiner: Combiner,
        d_hat: int,
        delta: float,
        rng: random.Random,
    ) -> List[ProtocolHost]:
        return [
            AllReportHost(
                host_id=host_id,
                value=values[host_id],
                querying_host=querying_host,
                query=query,
                d_hat=d_hat,
                delta=delta,
                rng=rng,
                report_probability=self.report_probability,
            )
            for host_id in range(topology.num_hosts)
        ]

    def termination_time(self, d_hat: int, delta: float) -> float:
        return 2.0 * d_hat * delta
