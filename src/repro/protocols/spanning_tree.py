"""The SPANNINGTREE best-effort protocol (Section 4.4).

Broadcast builds a spanning tree rooted at the querying host (each host
adopts the sender of the first Broadcast message it hears as its parent).
Convergecast then propagates partial aggregates up the tree: a host at hop
depth ``l`` sends its partial aggregate -- its own value combined with
whatever its children reported in time -- to its parent at the deadline
``(2 * D_hat - l) * delta``.  A single interior host failing after Broadcast
silently discards the contribution of its entire subtree, which is exactly
the failure mode the paper's validity experiments expose.

Deadlines use the delay *bound* ``delta``: a child at depth ``l + 1``
reports at ``(2 * D_hat - l - 1) * delta`` and the report needs at most
one more ``delta`` to arrive, exactly meeting the parent's deadline --
for any realised delay model bounded by ``delta``.  (Under variable
delays the first Broadcast heard may have travelled a many-hop fast
path, so ``depth`` can exceed the hop distance; the report timer is
clamped at "now" in that case and correctness is unaffected.)
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence

from repro.protocols.base import Protocol
from repro.queries.query import AggregateQuery
from repro.simulation.host import HostContext, ProtocolHost
from repro.simulation.messages import Message
from repro.sketches.combiners import Combiner
from repro.topology.base import Topology

BROADCAST = "st-broadcast"
REPORT = "st-report"


class SpanningTreeHost(ProtocolHost):
    """Per-host SPANNINGTREE state machine (slotted: one per network host)."""

    __slots__ = (
        "querying_host", "combiner", "d_hat", "delta", "rng",
        "active", "parent", "depth", "partial", "reports_received",
        "reported",
    )

    def __init__(
        self,
        host_id: int,
        value: float,
        querying_host: int,
        combiner: Combiner,
        d_hat: int,
        delta: float,
        rng: random.Random,
    ) -> None:
        super().__init__(host_id, value)
        self.querying_host = querying_host
        self.combiner = combiner
        self.d_hat = d_hat
        self.delta = delta
        self.rng = rng

        self.active = False
        self.parent: Optional[int] = None
        self.depth: Optional[int] = None
        self.partial: Any = None
        self.reports_received = 0
        self.reported = False

    # ------------------------------------------------------------------
    def on_query_start(self, ctx: HostContext) -> None:
        self.active = True
        self.depth = 0
        self.partial = self.combiner.initial(self.value, self.rng)
        ctx.send_to_neighbors(BROADCAST, {"depth": 0, "d_hat": self.d_hat})

    def on_message(self, message: Message, ctx: HostContext) -> None:
        if message.kind == BROADCAST:
            self._on_broadcast(message, ctx)
        elif message.kind == REPORT:
            self._on_report(message, ctx)

    def _on_broadcast(self, message: Message, ctx: HostContext) -> None:
        if self.active:
            return  # duplicate Broadcast: already have a parent
        self.active = True
        self.parent = message.sender
        self.depth = int(message.payload["depth"]) + 1
        self.partial = self.combiner.initial(self.value, self.rng)
        ctx.send_to_neighbors(
            BROADCAST,
            {"depth": self.depth, "d_hat": self.d_hat},
            exclude=(self.parent,),
        )
        report_time = (2.0 * self.d_hat - self.depth) * self.delta
        delay = max(0.0, report_time - ctx.now)
        ctx.set_timer(delay, "report")

    def _on_report(self, message: Message, ctx: HostContext) -> None:
        if not self.active or self.reported:
            # Reports arriving after this host already pushed its own partial
            # aggregate up the tree are lost -- the best-effort behaviour.
            return
        incoming = message.payload["agg"]
        self.partial = self.combiner.combine(self.partial, incoming)
        self.reports_received += 1

    def on_timer(self, name: str, data: Any, ctx: HostContext) -> None:
        if name != "report" or self.reported or self.parent is None:
            return
        self.reported = True
        ctx.send(self.parent, REPORT, {"agg": self.partial})

    def local_result(self) -> Optional[float]:
        if self.partial is None:
            return None
        return self.combiner.finalize(self.partial)


class SpanningTree(Protocol):
    """Protocol object for SPANNINGTREE runs."""

    name = "spanning-tree"
    requires_duplicate_insensitive = False

    def create_hosts(
        self,
        topology: Topology,
        values: Sequence[float],
        querying_host: int,
        query: AggregateQuery,
        combiner: Combiner,
        d_hat: int,
        delta: float,
        rng: random.Random,
    ) -> List[ProtocolHost]:
        return [
            SpanningTreeHost(
                host_id=host_id,
                value=values[host_id],
                querying_host=querying_host,
                combiner=combiner,
                d_hat=d_hat,
                delta=delta,
                rng=rng,
            )
            for host_id in range(topology.num_hosts)
        ]

    def termination_time(self, d_hat: int, delta: float) -> float:
        return 2.0 * d_hat * delta
