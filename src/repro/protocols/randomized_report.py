"""The RANDOMIZEDREPORT protocol (Section 4.3).

A sampled variant of ALLREPORT used to estimate the network size with
Approximate Single-Site Validity: the Broadcast message carries a report
probability ``p``; each host reports with probability ``p`` and the querying
host declares ``|M| / p`` where ``M`` is the set of reports received.  The
required ``p`` for a target (epsilon, zeta) is ``p >= 4 / (eps^2 n) ln(2 / zeta)``.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from repro.protocols.allreport import AllReport, AllReportHost
from repro.protocols.base import Protocol
from repro.queries.query import AggregateQuery
from repro.simulation.host import ProtocolHost
from repro.sketches.combiners import Combiner
from repro.topology.base import Topology


def report_probability_for(epsilon: float, zeta: float, network_size: int) -> float:
    """The sampling probability required by the Approximate SSV analysis.

    Args:
        epsilon: target multiplicative error.
        zeta: target failure probability.
        network_size: (an estimate of) the network size ``n``.

    Returns:
        A probability clamped to (0, 1].
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    if not 0.0 < zeta < 1.0:
        raise ValueError("zeta must be in (0, 1)")
    if network_size < 1:
        raise ValueError("network_size must be positive")
    p = 4.0 / (epsilon ** 2 * network_size) * math.log(2.0 / zeta)
    return min(1.0, max(p, 1.0 / network_size))


class RandomizedReportHost(AllReportHost):
    """Identical to :class:`AllReportHost` with ``report_probability < 1``."""

    __slots__ = ()


class RandomizedReport(Protocol):
    """Protocol object for RANDOMIZEDREPORT runs.

    Args:
        epsilon: target multiplicative error for the size estimate.
        zeta: target failure probability.
        expected_size: prior estimate of the network size used to derive the
            sampling probability; defaults to the topology size at run time.
        report_probability: set the probability directly (overrides the
            epsilon/zeta derivation).
    """

    name = "randomized-report"
    requires_duplicate_insensitive = False

    def __init__(
        self,
        epsilon: float = 0.1,
        zeta: float = 0.05,
        expected_size: int | None = None,
        report_probability: float | None = None,
    ) -> None:
        self.epsilon = epsilon
        self.zeta = zeta
        self.expected_size = expected_size
        self.report_probability = report_probability
        # With the probability left to the epsilon/zeta derivation the
        # resolved value depends on the run-time topology size, so the
        # protocol is conservatively stochastic unless pinned to 1.0.
        self.stochastic = report_probability != 1.0

    def config_spec(self) -> tuple:
        return (self.epsilon, self.zeta, self.expected_size,
                self.report_probability)

    def create_hosts(
        self,
        topology: Topology,
        values: Sequence[float],
        querying_host: int,
        query: AggregateQuery,
        combiner: Combiner,
        d_hat: int,
        delta: float,
        rng: random.Random,
    ) -> List[ProtocolHost]:
        if self.report_probability is not None:
            probability = self.report_probability
        else:
            size = self.expected_size or topology.num_hosts
            probability = report_probability_for(self.epsilon, self.zeta, size)
        return [
            RandomizedReportHost(
                host_id=host_id,
                value=values[host_id],
                querying_host=querying_host,
                query=query,
                d_hat=d_hat,
                delta=delta,
                rng=rng,
                report_probability=probability,
            )
            for host_id in range(topology.num_hosts)
        ]

    def termination_time(self, d_hat: int, delta: float) -> float:
        return 2.0 * d_hat * delta
