"""Cross-tenant shared-flood cache: compute one flood, answer many tenants.

The PR 4 benchmark showed the service's mix cost is dominated by
WILDFIRE floods that identical concurrent queries each pay again.  This
module is the sharing layer of ROADMAP item 4: sessions whose *derived
computation key* matches an in-flight computation **subscribe** to it
instead of flooding, forking only per-tenant accounting, clocks and
outcome records -- each subscriber's reported result stays bit-identical
to the run it would have executed alone.

The correctness invariant, locked by ``tests/service/test_sharing_key.py``:

    two sessions may share a computation key **iff** their solo
    ``run_protocol`` executions declare bit-identical results
    (value and cost fingerprint).

The key therefore contains exactly the digest-relevant inputs of a run:

* protocol name and configuration, the full aggregate query (kind /
  attribute / epsilon / confidence -- the paper's predicate/value
  model), querying host;
* the combiner spec -- name, plus ``(repetitions, num_bits)`` only for
  the sketch-based combiners (exact combiners ignore both);
* the resolved stable-diameter overestimate ``d_hat`` and the canonical
  delay-model spec;
* the session seed, **only when the run consumes randomness** -- a
  stochastic combiner (FM sketches), a coin-flipping protocol, or a
  stochastic delay model.  A spanning-tree exact count under fixed
  delay declares the identical value with identical costs for every
  seed, so two such sessions share regardless of their seeds; folding
  the seed in unconditionally would break the *only-if* direction.

Subscription is additionally gated on the **network epoch**: the shared
answer is only bit-identical to the subscriber's own run when no churn
event falls inside the union of the leader's and the subscriber's
execution windows (results are launch-time-translation-invariant on a
quiet network; churn breaks the symmetry).  The gate is exact because
the service's churn schedule is fixed at construction.

Completed leaders additionally feed a small **recent-answer store**
(keyed by the same computation key) that the admission controller's
``degrade`` policy serves from, tagged with staleness.
"""

from __future__ import annotations

import bisect
import copy
import random
from collections import OrderedDict
from typing import Any, List, Optional, Tuple

from repro.protocols.base import Protocol
from repro.queries.query import AggregateQuery
from repro.simulation.churn import ChurnSchedule
from repro.simulation.delay import delay_model_from_spec
from repro.sketches.combiners import Combiner

__all__ = [
    "STOCHASTIC_PROTOCOLS",
    "SharedComputation",
    "SharedFloodCache",
    "canonical_delay_spec",
    "computation_key",
    "consensus_seed",
    "delay_is_stochastic",
    "protocol_is_stochastic",
    "seed_sensitive",
]

#: Fallback classification for duck-typed protocol objects that lack the
#: ``Protocol.stochastic`` trait: names whose message schedule may consume
#: the run RNG under some configuration.  Repo protocols carry the trait
#: (configuration-aware: ALLREPORT at p = 1.0 is deterministic, at p < 1
#: it samples), so this set only decides for foreign objects.
STOCHASTIC_PROTOCOLS = frozenset({
    "allreport", "randomized-report", "push-sum-gossip",
})


def protocol_is_stochastic(protocol: Protocol) -> bool:
    """Whether the protocol's schedule consumes the run RNG."""
    flag = getattr(protocol, "stochastic", None)
    if flag is None:
        return protocol.name in STOCHASTIC_PROTOCOLS
    return bool(flag)


def _protocol_spec(protocol: Protocol) -> Tuple:
    """The protocol's digest-relevant identity: name plus configuration.

    Two same-name protocol objects configured differently (ALLREPORT at
    different report probabilities, gossip with different round counts)
    declare different results, so the configuration belongs in the key.
    """
    config = getattr(protocol, "config_spec", None)
    return (protocol.name,) + (tuple(config()) if config else ())


def canonical_delay_spec(delay: Any) -> Any:
    """One hashable token per distinct delay model configuration.

    ``None`` and ``"fixed"`` are the same model (the paper's exact-delta
    worst case); spec strings canonicalise to themselves; a ready-made
    model object is identified by identity -- the service shares one
    spec object across every session, so identity is exactly
    "same realised-delay configuration" there, and two *different*
    model objects are conservatively never key-equal.
    """
    if delay is None:
        return "fixed"
    if isinstance(delay, str):
        spec = delay.strip().lower()
        return spec or "fixed"
    return ("model", id(delay))


def delay_is_stochastic(delay: Any, delta: float = 1.0) -> bool:
    """Whether the delay spec samples randomness (seed-sensitive timing)."""
    if delay is None:
        return False
    if isinstance(delay, str):
        model = delay_model_from_spec(delay, float(delta), seed=0)
        return model is not None and model.stochastic
    return bool(getattr(delay, "stochastic", True))


def _combiner_spec(combiner: Combiner) -> Tuple:
    """The combiner's digest-relevant identity.

    Sketch shape parameters are folded in only for the sketch-based
    (stochastic) combiners: ``repetitions`` never reaches an exact
    combiner, so keying on it there would split shareable sessions.
    """
    if combiner.stochastic:
        return (combiner.name,
                getattr(combiner, "repetitions", None),
                getattr(combiner, "num_bits", None))
    return (combiner.name,)


def seed_sensitive(protocol: Protocol, combiner: Combiner,
                   delay_stochastic: bool) -> bool:
    """Whether a run's declared result can depend on its seed."""
    return (combiner.stochastic
            or protocol_is_stochastic(protocol)
            or delay_stochastic)


def consensus_seed(service_seed, protocol: Protocol, query: AggregateQuery,
                   querying_host: int, combiner: Combiner,
                   d_hat: int) -> int:
    """The *content-derived* session seed (the submit-path default).

    Deriving seeds from the query's content rather than its session id
    is what the consensus-answers framing calls serving one best shared
    answer: two tenants submitting the same FM count draw the same
    sketch stream, declare the same estimate, and -- because the seed
    lands in both computation keys -- can share one flood, with results
    unchanged whether sharing is on or off.  Unlike the cache key, this
    derivation must be stable across processes and runs (the sharded
    drive re-derives it in workers), so it uses no object identities;
    the delay spec is deliberately left out -- it cannot be stably
    tokenised when passed as a model object, and seed *collisions*
    between different-delay submissions are harmless (their cache keys
    still differ).

    The ``consensus-v2`` tag pins the derivation version.  Changing it
    re-draws every session's stochastic-delay latencies, and the
    mux-vs-solo equivalence under variable-delay models holds only when
    no session's absolute launch offset collides a ``(t0 + k) + d`` sum
    with a ``t0 + (k + d)`` one (the float-tie collapse
    ``test_multiplexed_query_matches_run_protocol`` documents for its
    gossip/per-edge carve-out) -- so any retag must clear that test's
    full delay matrix.
    """
    material = (
        _protocol_spec(protocol),
        (query.kind.value, query.attribute, query.epsilon,
         query.confidence),
        querying_host,
        _combiner_spec(combiner),
        int(d_hat),
    )
    return random.Random(
        f"{service_seed}:consensus-v2:{material!r}").getrandbits(64)


def computation_key(
    protocol: Protocol,
    query: AggregateQuery,
    querying_host: int,
    combiner: Combiner,
    d_hat: int,
    delay: Any,
    seed: int,
    delay_stochastic: Optional[bool] = None,
) -> Tuple:
    """Derive one session's computation key (see the module invariant).

    ``combiner`` must be the resolved combiner the run will actually use
    (pass ``protocol.default_combiner(query, repetitions=...)`` when the
    submission did not name one); ``d_hat`` the resolved overestimate.
    """
    if delay_stochastic is None:
        delay_stochastic = delay_is_stochastic(delay)
    key: Tuple = (
        _protocol_spec(protocol),
        (query.kind.value, query.attribute, query.epsilon,
         query.confidence),
        querying_host,
        _combiner_spec(combiner),
        int(d_hat),
        canonical_delay_spec(delay),
    )
    if seed_sensitive(protocol, combiner, delay_stochastic):
        key += (("seed", seed),)
    return key


class SharedComputation:
    """One in-flight flood and the tenants riding it.

    ``leader`` is the session actually executing protocol state on the
    network; ``subscribers`` the query ids that attached.  ``resolve``
    is called from a subscriber's ``finalize`` and returns the declared
    value plus a *private deep copy* of the leader's cost sink -- the
    stimulus stream the leader consumed (in virtual time) is exactly the
    stream each subscriber's solo run would have consumed, so the copied
    accounting is the subscriber's own accounting, bit for bit.
    """

    __slots__ = ("key", "leader", "subscribers")

    def __init__(self, key: Tuple, leader) -> None:
        self.key = key
        self.leader = leader
        self.subscribers: List[int] = []

    def resolve(self):
        """The computation's final ``(value, private sink copy)``.

        A subscriber whose retirement instant ties with the leader's can
        pop from the deadline heap first (heap order is ``(ends_at,
        qid)``); every leader event has been consumed by then, so
        force-finalizing the leader here is exact, and the leader's own
        later retirement becomes a no-op.
        """
        leader = self.leader
        from repro.service.session import QueryStatus

        if leader.status is QueryStatus.RUNNING:
            leader.finalize()
        return leader.value, copy.deepcopy(leader.sink)


class SharedFloodCache:
    """In-flight computation registry plus the recent-answer store.

    Args:
        churn: the service's fixed churn schedule; its event times gate
            subscription (see :meth:`quiet_window`).
        subscribe: whether sessions may attach to in-flight computations
            (``False`` keeps only the recent-answer store alive, for an
            admission controller running the ``degrade`` policy with
            flood sharing off).
        recent_capacity: bound on the recent-answer store.
    """

    __slots__ = ("subscribe_enabled", "hits", "leads",
                 "_churn_times", "_inflight", "_recent",
                 "_recent_capacity")

    def __init__(self, churn: Optional[ChurnSchedule] = None,
                 subscribe: bool = True,
                 recent_capacity: int = 256) -> None:
        times: List[float] = []
        if churn is not None:
            times.extend(time for time, _ in churn.failures)
            times.extend(join.time for join in churn.joins)
        self._churn_times = sorted(times)
        self.subscribe_enabled = bool(subscribe)
        self.hits = 0
        self.leads = 0
        self._inflight: dict = {}
        self._recent: "OrderedDict[Tuple, Tuple[float, float, int]]" = (
            OrderedDict())
        self._recent_capacity = int(recent_capacity)

    # ------------------------------------------------------------------
    # In-flight sharing
    # ------------------------------------------------------------------
    def quiet_window(self, start: float, end: float) -> bool:
        """No churn event in ``[start, end]`` (endpoints included).

        Endpoint inclusion is deliberately conservative: a failure at
        the leader's exact launch instant is applied *after* the
        QUERY_START (FAIL has the lowest same-instant priority), so it
        is inside the leader's window but might not be inside a later
        subscriber's.
        """
        index = bisect.bisect_left(self._churn_times, start)
        return not (index < len(self._churn_times)
                    and self._churn_times[index] <= end)

    def try_subscribe(self, session, now: float):
        """The in-flight computation ``session`` may attach to, if any."""
        key = session.share_key
        if not self.subscribe_enabled or key is None:
            return None
        comp = self._inflight.get(key)
        if comp is None:
            return None
        leader = comp.leader
        if not self.quiet_window(leader.t0, now + leader.termination):
            return None
        return comp

    def register(self, session) -> None:
        """Record a freshly launched session as a leader for its key."""
        if session.share_key is None:
            return
        self.leads += 1
        # A same-key leader can already be registered when subscription
        # is disabled, or when churn between the launches forced a fresh
        # flood; the newer computation reflects the newer network epoch.
        self._inflight[session.share_key] = SharedComputation(
            session.share_key, session)

    def on_retired(self, session) -> None:
        """Migrate a retiring leader's answer into the recent store."""
        key = session.share_key
        if key is None or session.extra.get("cache_hit"):
            return
        comp = self._inflight.get(key)
        if comp is not None and comp.leader is session:
            del self._inflight[key]
        if session.value is None or session.declared_at is None:
            return
        recent = self._recent
        recent[key] = (session.value, session.declared_at, session.qid)
        recent.move_to_end(key)
        while len(recent) > self._recent_capacity:
            recent.popitem(last=False)

    # ------------------------------------------------------------------
    # Recent-answer store (the degrade policy's source)
    # ------------------------------------------------------------------
    def recent_answer(self, key: Optional[Tuple], now: float,
                      max_staleness: float):
        """``(value, staleness, source qid)`` for ``key``, or ``None``.

        Only answers whose key matches exactly qualify (same invariant
        as subscription: a key match means the cached run *is* this
        query's run), and only within the staleness bound.
        """
        if key is None:
            return None
        entry = self._recent.get(key)
        if entry is None:
            return None
        value, declared_at, source = entry
        staleness = now - declared_at
        if staleness > max_staleness:
            return None
        return value, staleness, source

    @property
    def inflight_computations(self) -> int:
        return len(self._inflight)

    @property
    def recent_answers(self) -> int:
        return len(self._recent)

    @property
    def hit_rate(self) -> float:
        """Subscriptions per keyable launch-or-subscription."""
        total = self.hits + self.leads
        return self.hits / total if total else 0.0
