"""The multiplexing event loop: one calendar queue, many queries.

:class:`MuxEngine` is the service counterpart of the solo
:class:`~repro.simulation.engine.Simulator`: the same calendar
:class:`~repro.simulation.events.EventQueue`, the same
:class:`~repro.simulation.network.DynamicNetwork`, the same churn event
handling -- but instead of one host table it demultiplexes every stimulus
to the per-query protocol instances of the session it belongs to:

* message deliveries route on ``Message.query_id`` (stamped at send time
  by the session-scoped context);
* timers route on the ``(session, name)`` tag the session context filed
  them under;
* churn events (FAIL / JOIN) are *shared*: they mutate the one network
  every session runs on, and fan out to every live session's host table.

Per-session state (seed stream, delay-model stream, cost sink, virtual
clock) is fully private, so the stimulus sequence one query observes is
independent of what other queries are doing on the same substrate --
which is what makes per-query results bit-identical to solo runs and
reproducible under any interleaving.

Sessions retire from the demux table the moment simulation time passes
their termination instant: their declared value and cost sink are kept,
their per-host protocol state (the dominant memory cost at 10k+ hosts)
is released, and any of their messages still in flight are counted as
``late_messages`` and dropped without waking protocol code.  Resident
state is therefore proportional to the number of *concurrently active*
queries, not to the total number served.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Any

from repro.obs.trace import Tracer, default_tracer
from repro.service.session import QuerySession, QueryStatus, SessionContext
from repro.simulation.churn import ChurnSchedule
from repro.simulation.clock import SimulationClock
from repro.simulation.events import Event, EventKind, EventQueue, _DeliverBatch
from repro.simulation.messages import Message
from repro.simulation.network import DynamicNetwork


class MuxEngine:
    """Event-driven executor multiplexing query sessions on one network.

    Args:
        network: the shared dynamic network all sessions run on.
        delta: the per-hop delay bound every session's timer math uses.
        churn: service-wide schedule of host failures/joins.
        wireless: broadcast-medium accounting (shared by all sessions).
        max_time: hard stop for the engine clock (runaway backstop).
        tracer: structured trace sink (``None`` resolves the process
            default once; trace times are session *virtual* times plus
            the query id, so one trace demultiplexes per tenant).
    """

    def __init__(
        self,
        network: DynamicNetwork,
        delta: float = 1.0,
        churn: Optional[ChurnSchedule] = None,
        wireless: bool = False,
        max_time: float = 1_000_000.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.network = network
        self.delta = float(delta)
        self.wireless = wireless
        self.max_time = float(max_time)
        self.clock = SimulationClock()
        self._queue = EventQueue(width=self.delta)
        self._churn = churn or ChurnSchedule.empty()
        self._churn_scheduled = False
        # qid -> live session (the demux table); retirement deadline heap.
        self._active: Dict[int, QuerySession] = {}
        self._ends_heap: List[Tuple[float, int]] = []
        self._sctx = SessionContext(self)
        # Service-wide tallies (per-query accounting lives on the sessions).
        self.messages_sent = 0
        self.dropped_messages = 0
        self.late_messages = 0
        self.events_processed = 0
        # Introspection: high-water mark of concurrently live sessions,
        # the order sessions left the demux table (declared), and late
        # deliveries per query (only bumped on the rare late path).
        self.max_active_sessions = 0
        self.retired_order: List[int] = []
        self.late_by_query: Dict[int, int] = {}
        self.tracer = tracer if tracer is not None else default_tracer()
        # Optional control-plane hooks, installed by the service:
        # a SharedFloodCache and/or an AdmissionController.  Both sit on
        # the QUERY_START dispatch path only -- the hot message/timer
        # loop is untouched when they are off.
        self.sharing = None
        self.admission = None

    # ------------------------------------------------------------------
    # Session scheduling
    # ------------------------------------------------------------------
    def schedule_session(self, session: QuerySession) -> None:
        """File a session's launch into the calendar queue.

        QUERY_START outranks every other event kind at the same instant,
        so a query launching at ``t`` sees all of ``t``'s traffic -- the
        same ordering a solo run gives its time-0 start event.
        """
        self._queue.push(session.launch_at, EventKind.QUERY_START,
                         data=session)

    def schedule_custom(self, time: float, handler) -> None:
        """Schedule ``handler(engine)`` at an absolute engine time."""
        self._queue.push(time, EventKind.CUSTOM, data=handler)

    @property
    def active_sessions(self) -> int:
        """Number of sessions currently holding live protocol state."""
        return len(self._active)

    def pending_events(self) -> int:
        return len(self._queue)

    def queue_depth_by_session(self) -> Dict[int, int]:
        """Pending queued work per query id, computed on demand.

        Walks the calendar queue's live entries (never the drain path):
        unicasts count 1 under their ``query_id``, multicast batches
        count their not-yet-delivered destinations, and mux timers route
        on the session carried in their tag.  This is the per-tenant
        queue-depth signal the admission-control roadmap item needs.
        """
        depths: Dict[int, int] = {}
        for entry, weight in self._queue.iter_pending():
            cls = entry.__class__
            if cls is Message or cls is _DeliverBatch:
                qid = entry.query_id
            elif cls is Event and entry.kind is EventKind.TIMER:
                tag = entry.timer_name
                if type(tag) is not tuple:
                    continue
                qid = tag[0].qid
            else:
                continue
            depths[qid] = depths.get(qid, 0) + weight
        return depths

    # ------------------------------------------------------------------
    # Session-context API (the per-query analogue of Simulator.submit_*)
    # ------------------------------------------------------------------
    def session_send(
        self,
        session: QuerySession,
        sender: int,
        dest: int,
        kind: str,
        payload: Mapping[str, Any],
        vnow: float,
        chain_depth: int,
    ) -> bool:
        """Queue one unicast on behalf of ``session``.

        ``vnow`` is the session's virtual time; the sink is keyed by it
        (so per-tick histograms match a solo run) while the delivery is
        filed at the corresponding absolute engine time.
        """
        network = self.network
        if not network.is_alive(sender):
            return False
        if not network.has_alive_edge(sender, dest):
            return False
        sample = session.sample
        delay = self.delta if sample is None else sample(sender, dest, vnow)
        # The virtual delivery instant is computed with the exact same
        # arithmetic a solo run performs (``vnow + delay``); the absolute
        # instant only orders the shared calendar.  IEEE addition is
        # monotone, so ``t0 + v`` never reorders a session's events.
        vdeliver = vnow + delay
        message = Message(sender, dest, kind, dict(payload),
                          session.t0 + vnow, chain_depth, False,
                          session.qid, vdeliver)
        session.sink.record_send(kind, vnow)
        self.messages_sent += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.send(vnow, sender, dest, kind, query_id=session.qid)
        self._queue.push_deliver(session.t0 + vdeliver, message)
        return True

    def session_multicast(
        self,
        session: QuerySession,
        sender: int,
        dests: Sequence[int],
        kind: str,
        payload: Mapping[str, Any],
        vnow: float,
        chain_depth: int,
        trusted_dests: bool = False,
    ) -> None:
        """Queue one multicast on behalf of ``session``.

        Mirrors :meth:`Simulator.submit_multicast` exactly (shared payload
        snapshot, one ring slot under fixed delay, per-destination
        sampling under variable delay, wireless batch accounting) with
        costs attributed to the session's private sink.
        """
        network = self.network
        if not network.is_alive(sender):
            return
        if not trusted_dests:
            neighbors = network.neighbors(sender)
            dests = [dest for dest in dests if dest in neighbors]
        if not dests:
            return
        abs_now = session.t0 + vnow
        shared_payload = dict(payload)
        wireless = self.wireless
        qid = session.qid
        t0 = session.t0
        sample = session.sample
        if sample is None:
            # Fixed delay: one lazily expanded batch in the shared ring
            # (same memory layout as the solo kernel's multicast path).
            vdeliver = vnow + self.delta
            self._queue.push_multicast(t0 + vdeliver, sender, dests, kind,
                                       shared_payload, abs_now, chain_depth,
                                       wireless, qid, vdeliver)
        else:
            push_deliver = self._queue.push_deliver
            for dest in dests:
                vdeliver = vnow + sample(sender, dest, vnow)
                message = Message(sender, dest, kind, shared_payload,
                                  abs_now, chain_depth, wireless, qid,
                                  vdeliver)
                push_deliver(t0 + vdeliver, message)
        sink = session.sink
        if wireless:
            sink.record_send(kind, vnow)
            sink.record_wireless_group(len(dests) - 1)
            self.messages_sent += 1
        else:
            sink.record_send_batch(kind, vnow, len(dests))
            self.messages_sent += len(dests)
        tracer = self.tracer
        if tracer is not None:
            tracer.send(vnow, sender, -1, kind, count=len(dests),
                        query_id=qid)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Drain the shared event loop and return the final engine time.

        With no ``until`` the loop runs until the calendar queue drains
        (every submitted query has launched, run to its deadline, and
        stopped producing traffic).  With ``until``, events beyond the
        horizon stay queued and a later ``run`` call resumes them, which
        lets drivers interleave simulation with submission.
        """
        horizon = min(until, self.max_time) if until is not None else self.max_time
        if not self._churn_scheduled:
            self._schedule_churn()
            self._churn_scheduled = True

        # Same loop discipline as the solo kernel: hot kinds inline, one
        # reused context, direct clock assignment, GC paused (the object
        # graph is acyclic; allocation-rate-triggered gen-0 scans are pure
        # overhead).  The extra work per stimulus is exactly the demux:
        # one dict lookup for messages, one tuple unpack for timers, and
        # the deadline check that retires finished sessions.
        import gc

        queue = self._queue
        pop_due = queue.pop_due
        clock = self.clock
        # Same packed alive bitmap the solo kernel binds (bytearray; grows
        # in place on joins): one memory layout for both paths.
        alive_flags = self.network._alive
        active = self._active
        ends_heap = self._ends_heap
        timer = EventKind.TIMER
        sctx = self._sctx
        tracer = self.tracer
        events = 0
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while True:
                front = pop_due(horizon)
                if front is None:
                    break
                time, entry = front
                clock._now = time
                events += 1
                # Retire sessions whose deadline has strictly passed.
                # Safe: IEEE addition is monotone, so every event of a
                # session with virtual time <= T sits at an absolute time
                # <= fl(t0 + T) == the session's heap key, and has
                # therefore already been popped.
                while ends_heap and ends_heap[0][0] < time:
                    self._retire_front()
                if entry.__class__ is Message:
                    session = active.get(entry.query_id)
                    # The horizon check runs in *virtual* time (exact, the
                    # same comparison a solo run's drain horizon makes).
                    if session is None or entry.vtime > session.termination:
                        # Sender's query already declared: a solo run
                        # would have left this delivery unconsumed.
                        self.late_messages += 1
                        qid = entry.query_id
                        late = self.late_by_query
                        late[qid] = late.get(qid, 0) + 1
                        if tracer is not None:
                            tracer.late(entry.vtime, entry.dest, qid)
                        continue
                    dest = entry.dest
                    if not alive_flags[dest]:
                        self.dropped_messages += 1
                        session.sink.record_dropped()
                        if tracer is not None:
                            tracer.drop(entry.vtime, dest, entry.query_id)
                        continue
                    chain_depth = entry.chain_depth
                    session.sink.record_processed(dest, chain_depth)
                    if tracer is not None:
                        tracer.deliver(entry.vtime, entry.sender, dest,
                                       entry.kind, chain_depth,
                                       entry.sent_at - session.t0,
                                       entry.query_id)
                    sctx.session = session
                    sctx.host_id = dest
                    sctx.now = entry.vtime
                    sctx._chain_depth = chain_depth
                    session.hosts[dest].on_message(entry, sctx)
                elif entry.kind is timer:
                    host = entry.host
                    if not alive_flags[host]:
                        continue
                    session, name, vfire = entry.timer_name
                    if (session.status is not QueryStatus.RUNNING
                            or vfire > session.termination):
                        continue
                    data, chain_depth = entry.data
                    if tracer is not None:
                        tracer.timer(vfire, host, name, session.qid)
                    sctx.session = session
                    sctx.host_id = host
                    sctx.now = vfire
                    sctx._chain_depth = chain_depth
                    session.hosts[host].on_timer(name, data, sctx)
                else:
                    self._dispatch(time, entry)
        finally:
            if gc_was_enabled:
                gc.enable()
        self.events_processed += events
        # ``pop_due(horizon)`` consumed every event at time <= horizon, so
        # any session whose deadline lies within the horizon is final --
        # declare it even if no later event popped to trigger retirement
        # (a horizon-bounded drive must leave poll() accurate).
        while ends_heap and ends_heap[0][0] <= horizon:
            self._retire_front()
        if not queue:
            # Queue drained: no stimulus can ever reach a session again,
            # so every running query's state is final -- declare them all.
            for qid in list(active):
                session = active.pop(qid)
                self._finalize_session(session)
                self.retired_order.append(qid)
                if tracer is not None:
                    tracer.session(session.termination, qid, "declare",
                                   session.value)
            ends_heap.clear()
        return clock.now

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _retire_front(self) -> None:
        _, qid = heapq.heappop(self._ends_heap)
        session = self._active.pop(qid, None)
        if session is not None:
            self._finalize_session(session)
            self.retired_order.append(qid)
            if self.tracer is not None:
                self.tracer.session(session.termination, qid, "declare",
                                    session.value)

    def _finalize_session(self, session: QuerySession) -> None:
        """Declare a session and run the control-plane retirement hooks."""
        session.finalize()
        if self.sharing is not None:
            self.sharing.on_retired(session)
        if self.admission is not None:
            self.admission.charge(session)

    def _schedule_churn(self) -> None:
        for time, host in self._churn.failures:
            if time <= self.max_time:
                self._queue.push(time, EventKind.FAIL, host=host)
        for join in self._churn.joins:
            if join.time <= self.max_time:
                self._queue.push(
                    join.time, EventKind.JOIN, data=tuple(join.neighbors))

    def _dispatch(self, time: float, event: Event) -> None:
        kind = event.kind
        if kind is EventKind.QUERY_START:
            session = event.data
            sharing = self.sharing
            if sharing is not None:
                comp = sharing.try_subscribe(session, time)
                if comp is not None:
                    # Shared-flood hit: ride the in-flight computation
                    # instead of launching another flood.  The session
                    # still occupies a demux slot until its own deadline
                    # so retirement order and residency stay faithful.
                    sharing.hits += 1
                    session.attach_shared(comp, time)
                    self._active[session.qid] = session
                    if len(self._active) > self.max_active_sessions:
                        self.max_active_sessions = len(self._active)
                    heapq.heappush(self._ends_heap,
                                   (session.ends_at, session.qid))
                    if self.tracer is not None:
                        self.tracer.session(
                            0.0, session.qid, "subscribe",
                            f"leader={comp.leader.qid}")
                    return
            admission = self.admission
            if admission is not None and admission.decide(self, session, time):
                return
            try:
                launched = session.launch(self, time)
            except Exception as exc:
                # A session that cannot materialise (bad combiner shape,
                # protocol construction error) fails alone; aborting the
                # shared loop would strand every other tenant.
                session.status = QueryStatus.FAILED
                session.hosts = None
                session.extra["error"] = repr(exc)
                if self.tracer is not None:
                    self.tracer.session(time, session.qid, "failed",
                                        repr(exc))
                return
            if launched:
                self._active[session.qid] = session
                if len(self._active) > self.max_active_sessions:
                    self.max_active_sessions = len(self._active)
                heapq.heappush(self._ends_heap,
                               (session.ends_at, session.qid))
                if admission is not None:
                    admission.note_admitted(time, session)
                if sharing is not None:
                    sharing.register(session)
                if self.tracer is not None:
                    self.tracer.session(0.0, session.qid, "launch",
                                        session.protocol.name)
                sctx = self._sctx
                sctx.session = session
                sctx.host_id = session.querying_host
                sctx.now = 0.0
                sctx._chain_depth = 0
                session.hosts[session.querying_host].on_query_start(sctx)
        elif kind is EventKind.FAIL:
            host = event.host
            if not self.network.is_alive(host):
                return
            self.network.fail_host(host, time)
            if self.tracer is not None:
                self.tracer.fail(time, host)
            for session in self._active.values():
                # Subscribers hold no host table (their leader's hosts
                # see the failure); the subscription quiet-window gate
                # guarantees no churn falls inside their window anyway.
                if time <= session.ends_at and session.hosts is not None:
                    session.hosts[host].on_fail(time - session.t0)
        elif kind is EventKind.JOIN:
            neighbors = [
                h for h in (event.data or ()) if self.network.is_alive(h)
            ]
            if not neighbors:
                return
            new_id = self.network.join_host(neighbors, time)
            if self.tracer is not None:
                self.tracer.join(time, new_id)
            for session in self._active.values():
                session.on_join(new_id)
        elif kind is EventKind.CUSTOM:
            handler = event.data
            if callable(handler):
                handler(self)


def merge_shard_summaries(summaries: Sequence[Mapping[str, Any]],
                          rows: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard service summaries into one service-level summary.

    The sharded ``repro serve`` drive partitions the query mix by id
    across worker processes, each running its own :class:`MuxEngine`
    over a private (identically seeded) copy of the network.  Because
    per-session state is private and churn is a fixed service-wide
    schedule, every per-query row is bit-identical to the
    single-process run; this helper reassembles the *service-level*
    tallies from the shard summaries:

    * engine tallies (``messages_sent``, ``late_messages``,
      ``dropped_messages``, ``events_processed``), query counts and
      wall-clock ``elapsed_seconds`` are additive -- note that
      ``events_processed`` counts *work done*, and every shard's engine
      replays the shared churn schedule on its private network copy, so
      the sum exceeds the single-process tally by
      ``(shards - 1) * churn_events``;
    * ``finished_at`` is the max over shards;
    * ``retired_order`` is rebuilt from the merged ``rows`` by sorting
      declared queries on ``(declared_at, query_id)`` -- the engine
      retires same-instant declarations in submission (id) order, so
      this reproduces the single-process order;
    * ``late_by_query`` is a disjoint union (each query lives on
      exactly one shard);
    * ``peak_active_sessions`` is summed: the shards run concurrently,
      so the sum is the faithful residency bound for the sharded drive
      (and an upper bound on the single-process peak).
    """
    if not summaries:
        raise ValueError("merge_shard_summaries needs at least one summary")
    merged: Dict[str, Any] = dict(summaries[0])
    for key in ("queries", "answered", "failed", "messages_sent",
                "late_messages", "dropped_messages", "events_processed",
                "peak_active_sessions"):
        merged[key] = sum(s[key] for s in summaries)
    # Control-plane tallies (absent from pre-sharing summaries).
    for key in ("shed", "deferred", "degraded", "cache_hits", "deferrals"):
        if any(key in s for s in summaries):
            merged[key] = sum(s.get(key, 0) for s in summaries)
    merged["finished_at"] = max(s["finished_at"] for s in summaries)
    merged["elapsed_seconds"] = round(
        sum(s["elapsed_seconds"] for s in summaries), 4)
    merged["queries_per_second"] = round(
        merged["answered"] / merged["elapsed_seconds"], 2
    ) if merged["elapsed_seconds"] > 0 else 0.0
    late_by_query: Dict[str, int] = {}
    for summary in summaries:
        late_by_query.update(summary.get("late_by_query", {}))
    merged["late_by_query"] = {
        key: late_by_query[key]
        for key in sorted(late_by_query, key=int)
    }
    # Degraded answers carry a declared_at (the instant they were served
    # from the recent-answer store) but never occupied a demux slot, so
    # they are not part of the engine's retirement order.
    declared = [row for row in rows
                if row.get("declared_at") is not None
                and not row.get("degraded")]
    declared.sort(key=lambda row: (row["declared_at"], row["query_id"]))
    merged["retired_order"] = [row["query_id"] for row in declared]
    merged["retired"] = len(merged["retired_order"])
    return merged
