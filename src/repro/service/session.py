"""Per-query sessions and the session-scoped host context.

A :class:`QuerySession` is one tenant of the multi-tenant query service:
one aggregate query, its per-query protocol state machines, its private
seed stream, its private cost accounting, and its private *virtual clock*.

The virtual clock is what makes multiplexing invisible to protocol code:
every protocol in this repository computes its deadlines assuming the
query starts at time 0 (``2 * D_hat * delta`` and friends), so the
session translates between engine time and query-local time -- a session
launched at engine time ``t0`` hands its hosts a context whose ``now`` is
``engine_now - t0`` and schedules their timers at ``t0 + virtual_time``.
Combined with per-session RNG, delay-model and accounting streams, a
query's stimulus sequence inside the service is *bit-identical* to a solo
:func:`~repro.protocols.base.run_protocol` execution with the same seed
(the service test suite pins this).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, Mapping, Optional, Sequence

from repro.protocols.base import Protocol, prepare_protocol_run
from repro.queries.query import AggregateQuery
from repro.simulation.engine import InertHost
from repro.simulation.host import HostContext, ProtocolHost
from repro.simulation.stats import StatsSink, make_stats_sink
from repro.sketches.combiners import Combiner
from repro.topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.service.engine import MuxEngine


class QueryStatus(enum.Enum):
    """Lifecycle of one query session inside the service."""

    PENDING = "pending"    # submitted; launch instant not reached yet
    RUNNING = "running"    # protocol instances live on the shared network
    DONE = "done"          # declared a value at its termination time
    FAILED = "failed"      # querying host was dead at the launch instant
    SHED = "shed"          # rejected by admission control (terminal)
    DEFERRED = "deferred"  # requeued by admission control (transient)


@dataclass
class QueryOutcome:
    """The externally visible record of one query (returned by ``poll``).

    Attributes:
        query_id: the service-assigned session id.
        protocol: short protocol name.
        query: the aggregate query.
        querying_host: host the query was issued at.
        status: current :class:`QueryStatus`.
        seed: the session's private seed (reusable for a solo replay).
        submitted_at: engine time the query was scheduled to launch.
        declared_at: engine time of the declaration (``None`` until done).
        value: the declared aggregate (``None`` until done / if failed).
        costs: the session's private cost accounting sink.
        d_hat: the stable-diameter overestimate the session used.
        termination: the protocol's nominal duration ``T`` (virtual time).
        stream: caller-supplied user-stream tag (reports of one
            continuous query share it); ``None`` when untagged.
        extra: caller-supplied metadata attached at submit time.
    """

    query_id: int
    protocol: str
    query: AggregateQuery
    querying_host: int
    status: QueryStatus
    seed: int
    submitted_at: float
    declared_at: Optional[float] = None
    value: Optional[float] = None
    costs: Optional[StatsSink] = None
    d_hat: int = 0
    termination: float = 0.0
    stream: Optional[int] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_row(self) -> Dict[str, Any]:
        """Flatten into a report-table row (submit-time metadata included,
        so JSON report consumers can group continuous streams)."""
        row: Dict[str, Any] = {
            "query_id": self.query_id,
            "protocol": self.protocol,
            "aggregate": self.query.kind.value,
            "querying_host": self.querying_host,
            "status": self.status.value,
            "submitted_at": self.submitted_at,
            "declared_at": self.declared_at,
            "value": self.value,
            "seed": self.seed,
        }
        if self.stream is not None:
            row["stream"] = self.stream
        row.update(self.extra)
        if self.costs is not None:
            row.update(self.costs.summary())
        return row


class QuerySession:
    """One query multiplexed onto the shared simulated network.

    Constructed by :meth:`~repro.service.service.QueryService.submit`;
    all protocol state is built lazily at the launch instant (so a session
    scheduled far in the future costs nothing until then, and its host
    table is sized to the network as of launch time).
    """

    __slots__ = (
        "qid", "protocol", "query", "querying_host", "seed", "launch_at",
        "repetitions", "combiner", "d_hat_hint", "stats_mode", "delay_spec",
        "topology", "values", "join_factory", "stream", "extra",
        # launch-time state
        "status", "hosts", "sink", "sample", "delay_model", "d_hat",
        "termination", "t0", "ends_at", "value", "declared_at",
        # shared-flood cache wiring
        "share_key", "shared_from",
    )

    def __init__(
        self,
        qid: int,
        protocol: Protocol,
        query: AggregateQuery,
        querying_host: int,
        seed: int,
        launch_at: float,
        topology: Topology,
        values: Sequence[float],
        repetitions: int = 8,
        combiner: Optional[Combiner] = None,
        d_hat: Optional[int] = None,
        stats: "StatsSink | str | None" = None,
        delay: Any = None,
        join_factory: Optional[Callable[[int], ProtocolHost]] = None,
        stream: Optional[int] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.qid = qid
        self.protocol = protocol
        self.query = query
        self.querying_host = querying_host
        self.seed = seed
        self.launch_at = float(launch_at)
        self.repetitions = repetitions
        self.combiner = combiner
        self.d_hat_hint = d_hat
        self.stats_mode = stats
        self.delay_spec = delay
        self.topology = topology
        self.values = values
        self.join_factory = join_factory
        self.stream = stream
        self.extra = dict(extra or {})

        self.status = QueryStatus.PENDING
        self.hosts: Optional[list] = None
        self.sink: Optional[StatsSink] = None
        self.sample = None
        self.delay_model = None
        self.d_hat = 0
        self.termination = 0.0
        self.t0 = 0.0
        self.ends_at = float("inf")
        self.value: Optional[float] = None
        self.declared_at: Optional[float] = None
        # Set by the service when flood sharing is on: the session's
        # computation key, and (after subscription) the in-flight
        # computation this session rides instead of flooding itself.
        self.share_key = None
        self.shared_from = None

    # ------------------------------------------------------------------
    # Lifecycle (driven by the engine)
    # ------------------------------------------------------------------
    def launch(self, engine: "MuxEngine", now: float) -> bool:
        """Materialise protocol state at the launch instant.

        Returns True when the session went live; False when the querying
        host was dead at launch (status becomes ``FAILED``), mirroring the
        solo engine's QUERY_START liveness check.
        """
        if not engine.network.is_alive(self.querying_host):
            # Fail before building the O(N) per-host state table; the
            # outcome still reports the horizon arithmetic, which is
            # cheap (the diameter estimate is memoised on the topology).
            from repro.protocols.base import resolve_d_hat

            self.d_hat = resolve_d_hat(self.topology, self.d_hat_hint,
                                       seed=self.seed)
            self.termination = self.protocol.termination_time(
                self.d_hat, engine.delta)
            self.status = QueryStatus.FAILED
            return False
        prepared = prepare_protocol_run(
            self.protocol, self.topology, self.values, self.query,
            querying_host=self.querying_host, combiner=self.combiner,
            d_hat=self.d_hat_hint, delta=engine.delta, seed=self.seed,
            repetitions=self.repetitions, delay=self.delay_spec,
        )
        self.query = prepared.query
        self.d_hat = prepared.d_hat
        self.termination = prepared.termination
        self.hosts = prepared.hosts
        # The shared network may have grown past the pristine topology
        # (joins before this launch); pad so the host table stays
        # indexable by every live host id.
        for host_id in range(len(self.hosts), engine.network.num_hosts):
            self.hosts.append(self._joined_host(host_id))
        self.delay_model = prepared.delay_model
        self.sample = (None if prepared.delay_model is None
                       else prepared.delay_model.sample)
        self.sink = make_stats_sink(
            self.stats_mode, num_hosts=engine.network.num_hosts,
            tick_width=engine.delta)
        self.t0 = now
        self.ends_at = now + self.termination
        self.status = QueryStatus.RUNNING
        return True

    def attach_shared(self, comp, now: float) -> None:
        """Go live as a *subscriber* of an in-flight shared computation.

        The session builds no protocol state of its own: its horizon
        arithmetic is copied from the leader (a key match guarantees the
        leader resolved the same ``d_hat``, hence the same termination
        time), its virtual clock starts at its own launch instant, and
        its declared value and cost sink are forked from the leader at
        finalize time.  Only per-tenant bookkeeping is private -- which
        is the whole point of the shared-flood cache.
        """
        leader = comp.leader
        self.query = leader.query
        self.d_hat = leader.d_hat
        self.termination = leader.termination
        self.t0 = now
        self.ends_at = now + self.termination
        self.status = QueryStatus.RUNNING
        self.shared_from = comp
        self.extra["cache_hit"] = True
        self.extra["shared_with"] = leader.qid
        comp.subscribers.append(self.qid)

    def _joined_host(self, host_id: int) -> ProtocolHost:
        if self.join_factory is not None:
            return self.join_factory(host_id)
        return InertHost(host_id)

    def on_join(self, host_id: int) -> None:
        """Extend the host table for a host that joined mid-session."""
        if self.hosts is not None:
            self.hosts.append(self._joined_host(host_id))

    def finalize(self) -> None:
        """Declare the query's value and release its protocol state."""
        if self.status is not QueryStatus.RUNNING:
            return
        if self.shared_from is not None:
            # Subscriber: fork the declared value and a private copy of
            # the leader's cost accounting (bit-identical to the solo
            # run this session would have executed -- see sharing.py).
            self.value, self.sink = self.shared_from.resolve()
            self.declared_at = self.ends_at
            self.status = QueryStatus.DONE
            self.shared_from = None
            return
        assert self.hosts is not None
        self.value = self.hosts[self.querying_host].local_result()
        self.declared_at = self.ends_at
        self.status = QueryStatus.DONE
        # Per-host protocol state dominates a session's footprint (one
        # state machine per network host); the result and the cost sink
        # are all that outlives the declaration.
        self.hosts = None
        self.sample = None
        self.delay_model = None

    def outcome(self) -> QueryOutcome:
        """Snapshot the session as an externally visible record."""
        return QueryOutcome(
            query_id=self.qid,
            protocol=self.protocol.name,
            query=self.query,
            querying_host=self.querying_host,
            status=self.status,
            seed=self.seed,
            submitted_at=self.launch_at,
            declared_at=self.declared_at,
            value=self.value,
            costs=self.sink,
            d_hat=self.d_hat,
            termination=self.termination,
            stream=self.stream,
            extra=dict(self.extra),
        )


class SessionContext(HostContext):
    """A :class:`HostContext` bound to one session's virtual clock.

    ``now`` is query-local time (engine time minus the session's launch
    instant), sends stamp the session's query id onto every message and
    account against the session's private sink, and timers are filed back
    into the shared calendar queue at ``t0 + virtual_time`` with a
    ``(session, name)`` demux tag.  The engine reuses one instance across
    stimuli, rebinding it per handler call exactly like the solo kernel's
    context; protocol code cannot tell the difference.
    """

    __slots__ = ("session",)

    def __init__(self, engine: "MuxEngine") -> None:
        super().__init__(engine, 0, 0.0, 0)
        self.session: Optional[QuerySession] = None

    def send(self, dest: int, kind: str, payload: Mapping[str, Any]) -> bool:
        return self._simulator.session_send(
            self.session, self.host_id, dest, kind, payload,
            self.now, self._chain_depth + 1,
        )

    def send_to_neighbors(
        self,
        kind: str,
        payload: Mapping[str, Any],
        exclude: Optional[Iterable[int]] = None,
    ) -> int:
        engine = self._simulator
        targets = engine.network.alive_neighbors_sorted(self.host_id)
        if exclude is not None:
            excluded = set(exclude)
            if excluded:
                targets = [t for t in targets if t not in excluded]
        if not targets:
            return 0
        engine.session_multicast(
            self.session, self.host_id, targets, kind, payload,
            self.now, self._chain_depth + 1, True,
        )
        return len(targets)

    def set_timer(self, delay: float, name: str, data: Any = None) -> None:
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        session = self.session
        # The virtual fire time rides in the demux tag: re-deriving it
        # from the absolute instant (``abs - t0``) would lose float
        # precision and perturb deadline comparisons vs a solo run.
        vfire = self.now + delay
        self._simulator._queue.push_timer(
            session.t0 + vfire, self.host_id,
            (session, name, vfire), (data, self._chain_depth),
        )
