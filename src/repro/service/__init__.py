"""Multi-tenant query service: many concurrent aggregate queries, one
shared simulated network.

The paper's setting is a P2P network where *many* users continuously
issue aggregate queries; every experiment driver elsewhere in this
repository builds a private simulator per query, which scales hosts but
not concurrent query load.  This subsystem is the missing layer:

* :class:`~repro.service.service.QueryService` -- the session manager
  (``submit`` / ``poll`` / ``retire``) over one live network;
* :class:`~repro.service.engine.MuxEngine` -- one calendar-queue event
  loop driving every session's protocol instances, demultiplexing on the
  query id carried in every :class:`~repro.simulation.messages.Message`;
* :class:`~repro.service.session.QuerySession` -- per-query protocol
  state, seed stream, cost sink and virtual clock, which together make a
  query's result bit-identical to a solo run regardless of interleaving.

The open-world workload side (Poisson arrivals, mixed protocols, mixed
one-shot/continuous queries) lives in
:mod:`repro.workloads.query_mix`, the experiment driver in
:mod:`repro.experiments.query_mix`, and the CLI in ``repro serve``.
"""

from repro.service.engine import MuxEngine
from repro.service.service import QueryService, ServiceReport
from repro.service.session import (
    QueryOutcome,
    QuerySession,
    QueryStatus,
    SessionContext,
)

__all__ = [
    "MuxEngine",
    "QueryService",
    "ServiceReport",
    "QueryOutcome",
    "QuerySession",
    "QueryStatus",
    "SessionContext",
]
