"""Multi-tenant query service: many concurrent aggregate queries, one
shared simulated network.

The paper's setting is a P2P network where *many* users continuously
issue aggregate queries; every experiment driver elsewhere in this
repository builds a private simulator per query, which scales hosts but
not concurrent query load.  This subsystem is the missing layer:

* :class:`~repro.service.service.QueryService` -- the session manager
  (``submit`` / ``poll`` / ``retire``) over one live network;
* :class:`~repro.service.engine.MuxEngine` -- one calendar-queue event
  loop driving every session's protocol instances, demultiplexing on the
  query id carried in every :class:`~repro.simulation.messages.Message`;
* :class:`~repro.service.session.QuerySession` -- per-query protocol
  state, seed stream, cost sink and virtual clock, which together make a
  query's result bit-identical to a solo run regardless of interleaving;
* :class:`~repro.service.sharing.SharedFloodCache` -- the cross-tenant
  shared-flood cache: sessions whose computation key matches an
  in-flight computation subscribe to it instead of flooding;
* :class:`~repro.service.admission.AdmissionController` -- the overload
  control loop (shed / defer / degrade) driven by the live per-tenant
  queue-depth, late-delivery and budget signals.

The open-world workload side (Poisson arrivals, mixed protocols, mixed
one-shot/continuous queries) lives in
:mod:`repro.workloads.query_mix`, the experiment driver in
:mod:`repro.experiments.query_mix`, and the CLI in ``repro serve``.
"""

from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.engine import MuxEngine
from repro.service.service import QueryService, ServiceReport
from repro.service.session import (
    QueryOutcome,
    QuerySession,
    QueryStatus,
    SessionContext,
)
from repro.service.sharing import (
    SharedComputation,
    SharedFloodCache,
    computation_key,
    consensus_seed,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "MuxEngine",
    "QueryService",
    "ServiceReport",
    "QueryOutcome",
    "QuerySession",
    "QueryStatus",
    "SessionContext",
    "SharedComputation",
    "SharedFloodCache",
    "computation_key",
    "consensus_seed",
]
