"""The multi-tenant query service: submit / poll / retire over one network.

:class:`QueryService` is the front door of the service subsystem.  One
instance owns one live simulated network (topology + churn schedule +
delay-bound ``delta``) and multiplexes any number of aggregate queries
over it through the :class:`~repro.service.engine.MuxEngine`:

>>> service = QueryService(topology, values, seed=0)
>>> q1 = service.submit("wildfire", "count", at=0.0)
>>> q2 = service.submit("spanning-tree", "sum", at=3.0, querying_host=7)
>>> report = service.run()
>>> service.poll(q1).value            # doctest: +SKIP

Determinism contract: each session's seed is derived from the service
seed and the query's *content* (or passed explicitly) -- two tenants
submitting the same aggregate draw the same streams and receive the
same answer, the consensus-answer property the shared-flood cache
builds on -- and every source of randomness a query touches -- sketch
initialisation, protocol coin flips, stochastic link delays -- draws
from session-private streams.
Re-running the same submission sequence therefore reproduces every
query's value and per-query cost accounting bit-for-bit, regardless of
how the queries interleave on the shared substrate; and a query run solo
(through :func:`~repro.protocols.base.run_protocol` with the session's
seed and the service's ``d_hat``) declares the identical value with
identical costs whenever no cross-query churn interferes.

One float-arithmetic caveat on the solo comparison: two session events
separated by a single ulp of virtual time (an artefact of addition
order, e.g. ``(a + k) + d`` vs ``(a + d) + k`` under the fixed-latency
``per_edge`` model) may collapse into one calendar slot on the shared
clock, where the deliver-before-timer priority -- the model's actual
simultaneity rule -- resolves them.  The solo kernel instead keeps the
artificial ulp gap.  The paper's protocols are insensitive to this
(their folds are idempotent and deadline math uses the bound); only
order-sensitive float accumulation (push-sum gossip) can differ in the
last digits on such knife-edge ties.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.protocols.base import Protocol, protocol_from_spec, resolve_d_hat
from repro.queries.query import AggregateQuery
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.engine import MuxEngine
from repro.service.session import QueryOutcome, QuerySession, QueryStatus
from repro.service.sharing import (SharedFloodCache, computation_key,
                                   consensus_seed, delay_is_stochastic)
from repro.simulation.churn import ChurnSchedule
from repro.simulation.host import ProtocolHost
from repro.simulation.stats import validate_stats_mode
from repro.sketches.combiners import Combiner
from repro.topology.base import Topology


@dataclass
class ServiceReport:
    """Summary of one :meth:`QueryService.run` drive.

    Attributes:
        outcomes: one :class:`QueryOutcome` per non-retired query, in
            submission order (includes still-pending/running ones when the
            run was horizon-bounded; queries the tenant already retired
            are gone from the service's records).
        finished_at: engine time when the loop stopped.
        elapsed: cumulative wall-clock seconds spent inside the loop,
            across every ``run`` call of this service -- the message and
            query tallies are cumulative, so the throughput ratio must
            be too.
        messages_sent: total messages across all sessions.
        late_messages: deliveries that arrived after their query declared.
        dropped_messages: deliveries lost to host failures.
        events_processed: events the engine's loop consumed (cumulative).
        peak_active_sessions: high-water mark of concurrently live
            sessions -- the resident-state bound the retirement design
            promises.
        retired_order: query ids in the order their sessions declared
            and left the demux table.
        late_by_query: late-delivery count per query id (queries with
            no late deliveries are absent).
        shed: queries terminally rejected by admission control.
        deferred: queries currently requeued by the defer policy
            (zero after a run to drain: every deferral ends in a launch
            or a shed).
        degraded: queries answered from the recent-answer store with a
            staleness tag (counted inside ``answered`` too -- they did
            declare a value).
        cache_hits: sessions that subscribed to an in-flight shared
            flood instead of flooding themselves.
        deferrals: individual defer events (one query can defer several
            times before launching or being shed).
    """

    outcomes: List[QueryOutcome] = field(default_factory=list)
    finished_at: float = 0.0
    elapsed: float = 0.0
    messages_sent: int = 0
    late_messages: int = 0
    dropped_messages: int = 0
    events_processed: int = 0
    peak_active_sessions: int = 0
    retired_order: List[int] = field(default_factory=list)
    late_by_query: Dict[int, int] = field(default_factory=dict)
    shed: int = 0
    deferred: int = 0
    degraded: int = 0
    cache_hits: int = 0
    deferrals: int = 0

    @property
    def answered(self) -> int:
        """Number of queries that declared a value."""
        return sum(1 for o in self.outcomes if o.status is QueryStatus.DONE)

    @property
    def queries_per_second(self) -> float:
        """Answered queries per wall-clock second of simulation."""
        return self.answered / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "queries": len(self.outcomes),
            "answered": self.answered,
            "failed": sum(1 for o in self.outcomes
                          if o.status is QueryStatus.FAILED),
            "finished_at": self.finished_at,
            "elapsed_seconds": round(self.elapsed, 4),
            "queries_per_second": round(self.queries_per_second, 2),
            "messages_sent": self.messages_sent,
            "late_messages": self.late_messages,
            "dropped_messages": self.dropped_messages,
            "events_processed": self.events_processed,
            "peak_active_sessions": self.peak_active_sessions,
            "retired": len(self.retired_order),
            "retired_order": list(self.retired_order),
            "late_by_query": {str(qid): count for qid, count
                              in sorted(self.late_by_query.items())},
            "shed": self.shed,
            "deferred": self.deferred,
            "degraded": self.degraded,
            "cache_hits": self.cache_hits,
            "deferrals": self.deferrals,
        }


class QueryService:
    """Session manager multiplexing aggregate queries over one network.

    Args:
        topology: the shared network's initial topology.
        values: one attribute value per topology host (shared by every
            query, as in the paper's ad-hoc query model).
        delta: per-hop delay bound for every session's timer math.
        churn: service-wide failure/join schedule (applied once, seen by
            every session that overlaps it).
        seed: service seed; per-query seeds derive from it and the
            query's content (see
            :func:`~repro.service.sharing.consensus_seed`).
        stats: per-query cost accounting mode (``"full"`` or
            ``"streaming"``); every session gets its own private sink.
        delay: realised link-delay model spec shared by all sessions
            *as a spec* -- each session instantiates its own model with a
            session-derived seed, so delay randomness never couples
            queries.
        wireless: broadcast-medium accounting.
        d_hat: stable-diameter overestimate shared by sessions that do
            not pass their own; resolved once from the topology (the
            shared-substrate service resolves it with the *service* seed,
            so concurrent queries agree on the horizon arithmetic).
        max_time: engine runaway backstop.
        tracer: structured trace sink handed to the engine (``None``
            resolves the process default once at construction).
        share_floods: enable the cross-tenant shared-flood cache --
            sessions whose computation key matches an in-flight
            computation subscribe to it instead of flooding (results
            are bit-identical either way; see
            :mod:`repro.service.sharing`).
        admission: an :class:`~repro.service.admission.AdmissionConfig`
            arming the overload control loop (``None`` admits
            everything, the pre-control behaviour).
    """

    def __init__(
        self,
        topology: Topology,
        values: Sequence[float],
        delta: float = 1.0,
        churn: Optional[ChurnSchedule] = None,
        seed: int = 0,
        stats: str = "full",
        delay: Any = None,
        wireless: bool = False,
        d_hat: Optional[int] = None,
        max_time: float = 1_000_000.0,
        tracer=None,
        share_floods: bool = False,
        admission: Optional[AdmissionConfig] = None,
    ) -> None:
        if len(values) < topology.num_hosts:
            raise ValueError("need one attribute value per host")
        self.topology = topology
        self.values = list(values)
        self.delta = float(delta)
        self.churn = churn or ChurnSchedule.empty()
        self.seed = seed
        self.stats_mode = validate_stats_mode(stats)
        self.delay_spec = delay
        self.d_hat = resolve_d_hat(topology, d_hat, seed=seed)
        self.engine = MuxEngine(
            topology.to_network(), delta=self.delta, churn=self.churn,
            wireless=wireless, max_time=max_time, tracer=tracer,
        )
        self._sessions: Dict[int, QuerySession] = {}
        self._next_qid = 1
        self._elapsed_total = 0.0
        self.share_floods = bool(share_floods)
        self._delay_stochastic = delay_is_stochastic(delay, self.delta)
        # The cache also backs the degrade policy's recent-answer store,
        # so it exists (with subscription off) when only degrading.
        if self.share_floods or (admission is not None
                                 and admission.policy == "degrade"):
            self.engine.sharing = SharedFloodCache(
                self.churn, subscribe=self.share_floods)
        if admission is not None:
            self.engine.admission = AdmissionController(admission)

    # ------------------------------------------------------------------
    # Tenant API
    # ------------------------------------------------------------------
    def derive_seed(self, query_id: int) -> int:
        """An id-derived session seed under the service seed.

        String seeding hashes with SHA-512 under the hood, so the streams
        of different sessions (and of the same session id under different
        service seeds) are independent and version-stable.  This is *not*
        the submit-path default (that is the content-derived consensus
        seed); pass ``seed=service.derive_seed(qid)`` explicitly to give
        a session an id-private stream.
        """
        return random.Random(
            f"{self.seed}:query:{query_id}").getrandbits(64)

    def submit(
        self,
        protocol: Union[Protocol, str],
        query: Union[AggregateQuery, str],
        querying_host: int = 0,
        at: float = 0.0,
        seed: Optional[int] = None,
        combiner: Optional[Combiner] = None,
        d_hat: Optional[int] = None,
        repetitions: int = 8,
        join_factory: Optional[Callable[[int], ProtocolHost]] = None,
        stream: Optional[int] = None,
        extra: Optional[Dict[str, Any]] = None,
        query_id: Optional[int] = None,
    ) -> int:
        """Register one aggregate query and return its session id.

        The query launches at engine time ``at`` (protocol state is built
        lazily at that instant) and declares at ``at + T`` where ``T`` is
        the protocol's nominal termination time.  ``seed`` defaults to
        the *content-derived* consensus seed (identical submissions get
        identical seeds, hence identical answers -- see
        :func:`~repro.service.sharing.consensus_seed`); pass it
        explicitly to replay a session solo or to force private streams.

        ``query_id`` pins the session id instead of taking the next free
        one -- the sharded service drive uses this so a worker holding
        every ``K``-th query still derives the exact per-session seeds
        (and therefore rows) of the single-process run.  Auto-assignment
        continues above any pinned id.
        """
        if at < 0:
            raise ValueError("queries cannot launch at negative times")
        if at < self.engine.clock.now:
            # After a horizon-bounded run() the network has already lived
            # through churn past ``at``; launching in the past would run
            # the query on a future network state, matching no schedule.
            raise ValueError(
                f"cannot launch at {at}: the service clock is already at "
                f"{self.engine.clock.now}"
            )
        if not 0 <= querying_host < self.topology.num_hosts:
            raise ValueError("querying_host is not part of the topology")
        if isinstance(query, str):
            query = AggregateQuery.of(query)
        protocol = protocol_from_spec(protocol)
        # Fail bad submissions at the front door, as run_protocol does --
        # raising mid-run() would strand every other tenant's session.
        if (combiner is not None
                and protocol.requires_duplicate_insensitive
                and not combiner.duplicate_insensitive):
            raise ValueError(
                f"{protocol.name} floods partial aggregates along multiple "
                f"paths and requires a duplicate-insensitive combiner; got "
                f"{combiner.name!r}"
            )
        if query_id is None:
            qid = self._next_qid
            self._next_qid += 1
        else:
            qid = int(query_id)
            if qid < 1:
                raise ValueError("query ids start at 1")
            if qid in self._sessions:
                raise ValueError(f"query id {qid} is already in use")
            self._next_qid = max(self._next_qid, qid + 1)
        # Resolve what the run will actually use so the consensus seed
        # and the computation key see the same inputs as the launch.
        resolved_combiner = (combiner if combiner is not None else
                             protocol.default_combiner(
                                 query, repetitions=repetitions))
        resolved_d_hat = self.d_hat if d_hat is None else int(d_hat)
        if seed is None:
            seed = consensus_seed(self.seed, protocol, query,
                                  querying_host, resolved_combiner,
                                  resolved_d_hat)
        session = QuerySession(
            qid=qid,
            protocol=protocol,
            query=query,
            querying_host=querying_host,
            seed=seed,
            launch_at=float(at),
            topology=self.topology,
            values=self.values,
            repetitions=repetitions,
            combiner=combiner,
            d_hat=resolved_d_hat,
            stats=self.stats_mode,
            delay=self.delay_spec,
            join_factory=join_factory,
            stream=stream,
            extra=extra,
        )
        if self.engine.sharing is not None and join_factory is None:
            # A join factory customises per-session behaviour the key
            # cannot capture, so such sessions never share.
            session.share_key = computation_key(
                protocol, query, querying_host, resolved_combiner,
                resolved_d_hat, self.delay_spec, seed,
                delay_stochastic=self._delay_stochastic)
        self._sessions[qid] = session
        self.engine.schedule_session(session)
        tracer = self.engine.tracer
        if tracer is not None:
            tracer.session(float(at), qid, "submit", protocol.name)
        return qid

    def poll(self, query_id: int) -> QueryOutcome:
        """Snapshot one query's status/value/costs (raises on unknown id)."""
        return self._sessions[query_id].outcome()

    def retire(self, query_id: int) -> QueryOutcome:
        """Remove a finished query's record from the service and return it.

        The tenant has read its answer; after retirement the id no longer
        polls and the session's cost sink is released with it.  Only
        sessions that already declared (or failed) can retire -- dropping
        the record of a pending/running session would leave the engine
        driving a query nobody can ever read.
        """
        session = self._sessions[query_id]
        if session.status not in (QueryStatus.DONE, QueryStatus.FAILED,
                                  QueryStatus.SHED):
            raise ValueError(
                f"query {query_id} is {session.status.value}; only done, "
                f"failed or shed queries can be retired"
            )
        outcome = self._sessions.pop(query_id).outcome()
        tracer = self.engine.tracer
        if tracer is not None:
            tracer.session(self.engine.clock.now, query_id, "retire")
        return outcome

    def run(self, until: Optional[float] = None) -> ServiceReport:
        """Drive the shared event loop (to drain, or to ``until``)."""
        engine = self.engine
        start = _time.perf_counter()
        finished = engine.run(until=until)
        self._elapsed_total += _time.perf_counter() - start
        outcomes = [s.outcome() for s in self._sessions.values()]
        return ServiceReport(
            outcomes=outcomes,
            finished_at=finished,
            elapsed=self._elapsed_total,
            messages_sent=engine.messages_sent,
            late_messages=engine.late_messages,
            dropped_messages=engine.dropped_messages,
            events_processed=engine.events_processed,
            peak_active_sessions=engine.max_active_sessions,
            retired_order=list(engine.retired_order),
            late_by_query=dict(engine.late_by_query),
            shed=sum(1 for o in outcomes
                     if o.status is QueryStatus.SHED),
            deferred=sum(1 for o in outcomes
                         if o.status is QueryStatus.DEFERRED),
            degraded=sum(1 for o in outcomes
                         if o.extra.get("degraded")),
            cache_hits=(engine.sharing.hits
                        if engine.sharing is not None else 0),
            deferrals=(engine.admission.defer_events
                       if engine.admission is not None else 0),
        )

    def outcomes(self) -> List[QueryOutcome]:
        """Snapshots of every non-retired query, in submission order."""
        return [s.outcome() for s in self._sessions.values()]
