"""Admission control: the service's first overload control loop.

ROADMAP item 4's second half.  The controller sits on the QUERY_START
dispatch path (after shared-flood subscription, before launch) and
decides -- from the *live* signals PRs 6/9 exposed: active-session and
event-queue depth, per-tenant ``queue_depth_by_session``, late-delivery
counters and message-cost residency -- whether launching one more flood
would push the service past its configured envelope.  Overloaded
submissions are resolved by policy:

* ``shed``    -- reject now; the query terminates with status SHED.
* ``defer``   -- requeue the QUERY_START ``defer_retry`` simulated
  seconds later; retries repeat until admission succeeds or the query
  has been pending ``defer_deadline`` seconds, then it is shed.
* ``degrade`` -- answer from the shared-flood cache's recent-answer
  store, tagged with staleness; fall back to ``shed`` on a miss or a
  stale entry.

Every submitted query reaches **exactly one terminal outcome** (DONE,
FAILED, SHED, or deferred-then-one-of-those); the overload matrix in
``tests/service/test_admission.py`` locks this together with the
fairness balance ``answered + failed + shed == submitted``.

Budgets are *per tenant*: a continuous query's reports share one stream
budget, one-shot queries are each their own tenant.  Leaders are charged
their flood's message cost at retirement; shared-flood subscribers ride
an already-paid flood and are not charged, which is precisely why
sharing moves the saturation knee right.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.simulation.events import EventKind

__all__ = ["AdmissionConfig", "AdmissionController"]

_POLICIES = ("shed", "defer", "degrade")


@dataclass(frozen=True)
class AdmissionConfig:
    """Envelope and policy for the admission controller.

    All limits default to "off" (``None``); any subset can be armed.
    The config is a frozen dataclass so shard workers can ship it
    through the multiprocessing payload unchanged.

    Args:
        policy: what to do with a blocked submission (``shed`` /
            ``defer`` / ``degrade``).
        max_active_sessions: cap on concurrently running sessions.
        max_queue_depth: cap on total pending simulation events.
        max_qps: cap on admitted launches per simulated second
            (sliding one-second window).
        tenant_message_budget: per-tenant cap on charged message cost;
            a tenant whose retired queries already spent this much is
            blocked.
        max_tenant_queue_depth: per-tenant cap on pending events
            (``queue_depth_by_session``); blocks the flood-heavy tenant
            while light tenants keep flowing.
        max_late_messages: circuit breaker on the engine-wide late
            delivery counter -- late deliveries mean floods outliving
            their termination windows, the earliest overload signal.
        defer_retry: simulated seconds between defer retries.
        defer_deadline: how long (simulated seconds past the original
            launch time) a deferred query may wait before being shed.
        max_staleness: oldest recent answer the degrade policy may
            serve, in simulated seconds.
    """

    policy: str = "shed"
    max_active_sessions: Optional[int] = None
    max_queue_depth: Optional[int] = None
    max_qps: Optional[float] = None
    tenant_message_budget: Optional[int] = None
    max_tenant_queue_depth: Optional[int] = None
    max_late_messages: Optional[int] = None
    defer_retry: float = 2.0
    defer_deadline: float = 30.0
    max_staleness: float = math.inf

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ValueError(
                f"policy must be one of {_POLICIES}, got {self.policy!r}")
        if self.defer_retry <= 0:
            raise ValueError("defer_retry must be positive")
        if self.defer_deadline < 0:
            raise ValueError("defer_deadline must be non-negative")
        if self.max_qps is not None and self.max_qps <= 0:
            raise ValueError("max_qps must be positive")


def _tenant(session) -> Tuple[str, object]:
    """The budget key: continuous streams pool, one-shots stand alone."""
    if session.stream is not None:
        return ("stream", session.stream)
    return ("query", session.qid)


class AdmissionController:
    """Applies an :class:`AdmissionConfig` on the QUERY_START path."""

    __slots__ = ("config", "shed", "degraded", "defer_events",
                 "_admit_times", "_spent", "_deferred")

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        #: Queries terminally rejected (includes defer/degrade fallbacks).
        self.shed = 0
        #: Queries answered from the recent-answer store.
        self.degraded = 0
        #: Individual defer events (one query can defer repeatedly).
        self.defer_events = 0
        self._admit_times: deque = deque()
        self._spent: Dict[Tuple[str, object], int] = {}
        self._deferred: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # The decision
    # ------------------------------------------------------------------
    def overloaded(self, engine, session, now: float) -> Optional[str]:
        """The first tripped gate's name, or ``None`` when admissible."""
        cfg = self.config
        if (cfg.max_active_sessions is not None
                and len(engine._active) >= cfg.max_active_sessions):
            return "active_sessions"
        if cfg.max_queue_depth is not None or cfg.max_tenant_queue_depth is not None:
            depths = engine.queue_depth_by_session()
            if (cfg.max_queue_depth is not None
                    and sum(depths.values()) >= cfg.max_queue_depth):
                return "queue_depth"
            if cfg.max_tenant_queue_depth is not None:
                tenant = _tenant(session)
                tenant_depth = sum(
                    depth for qid, depth in depths.items()
                    if qid in engine._active
                    and _tenant(engine._active[qid]) == tenant)
                if tenant_depth >= cfg.max_tenant_queue_depth:
                    return "tenant_queue_depth"
        if cfg.max_qps is not None:
            window = self._admit_times
            while window and window[0] <= now - 1.0:
                window.popleft()
            if len(window) >= cfg.max_qps:
                return "qps"
        if (cfg.tenant_message_budget is not None
                and self._spent.get(_tenant(session), 0)
                >= cfg.tenant_message_budget):
            return "tenant_budget"
        if (cfg.max_late_messages is not None
                and engine.late_messages >= cfg.max_late_messages):
            return "late_messages"
        return None

    def decide(self, engine, session, now: float) -> bool:
        """Apply policy to one QUERY_START; True means "do not launch".

        Terminal rejections set the session's status (SHED, or DONE for
        a degraded answer) and leave it out of the active set; a defer
        re-pushes the QUERY_START and keeps the session pending.
        """
        reason = self.overloaded(engine, session, now)
        if reason is None:
            return False
        policy = self.config.policy
        if policy == "defer":
            if now - session.launch_at < self.config.defer_deadline:
                self._defer(engine, session, now, reason)
                return True
        elif policy == "degrade":
            if self._degrade(engine, session, now, reason):
                return True
        self._shed(engine, session, now, reason)
        return True

    # ------------------------------------------------------------------
    # Policy outcomes
    # ------------------------------------------------------------------
    def _defer(self, engine, session, now: float, reason: str) -> None:
        from repro.service.session import QueryStatus

        self.defer_events += 1
        retries = self._deferred.get(session.qid, 0) + 1
        self._deferred[session.qid] = retries
        session.status = QueryStatus.DEFERRED
        session.extra["deferred_retries"] = retries
        session.extra["defer_reason"] = reason
        engine._queue.push(now + self.config.defer_retry,
                           EventKind.QUERY_START, data=session)
        if engine.tracer is not None:
            engine.tracer.session(now, session.qid, "defer",
                                  f"{reason} retry={retries}")

    def _degrade(self, engine, session, now: float, reason: str) -> bool:
        from repro.service.session import QueryStatus

        sharing = engine.sharing
        if sharing is None:
            return False
        hit = sharing.recent_answer(session.share_key, now,
                                    self.config.max_staleness)
        if hit is None:
            return False
        value, staleness, source = hit
        self.degraded += 1
        session.status = QueryStatus.DONE
        session.value = value
        session.declared_at = now
        session.extra["degraded"] = True
        session.extra["staleness"] = staleness
        session.extra["source_query"] = source
        session.extra["admission_reason"] = reason
        self._deferred.pop(session.qid, None)
        if engine.tracer is not None:
            engine.tracer.session(now, session.qid, "degrade",
                                  f"{reason} staleness={staleness:.3f}")
        return True

    def _shed(self, engine, session, now: float, reason: str) -> None:
        from repro.service.session import QueryStatus

        self.shed += 1
        session.status = QueryStatus.SHED
        session.declared_at = None
        session.extra["shed_reason"] = reason
        self._deferred.pop(session.qid, None)
        if engine.tracer is not None:
            engine.tracer.session(now, session.qid, "shed", reason)

    # ------------------------------------------------------------------
    # Accounting hooks
    # ------------------------------------------------------------------
    def note_admitted(self, time: float, session) -> None:
        """Record a launch for the rate window and close any deferral."""
        self._admit_times.append(time)
        retries = self._deferred.pop(session.qid, None)
        if retries is not None:
            session.extra["deferred_for"] = time - session.launch_at

    def charge(self, session) -> None:
        """Charge a retiring leader's flood cost to its tenant budget.

        Subscribers are not charged: their flood was already paid for.
        """
        if session.extra.get("cache_hit") or session.sink is None:
            return
        tenant = _tenant(session)
        self._spent[tenant] = (self._spent.get(tenant, 0)
                               + session.sink.messages_sent)

    @property
    def deferred_pending(self) -> int:
        """Queries currently waiting on a defer retry."""
        return len(self._deferred)
