"""Beyond-paper scale benchmarks for the simulation kernel.

The paper's experiments top out at the ~39k-host Gnutella crawl; the
batched-ring kernel opens network sizes an order of magnitude past that,
and the streaming stats sink (``stats="streaming"``) keeps cost
accounting memory bounded all the way to million-host runs.
:func:`run_scale_benchmark` runs one protocol/topology/aggregate cell at an
arbitrary host count and reports wall-clock throughput alongside the
paper's cost measures, the process's peak RSS, and the accounting
footprint, so kernel regressions show up as a number, not a feeling.
The ``repro bench`` CLI and ``benchmarks/test_kernel_scale.py`` both
route through here.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.profiling import PhaseTimer
from repro.protocols.base import run_protocol
from repro.topology.base import Topology


def peak_rss_mb() -> Optional[float]:
    """The process's peak resident set size in MiB (None if unavailable).

    On Linux this reads ``VmHWM`` from ``/proc/self/status`` rather than
    ``getrusage``'s ``ru_maxrss``: the kernel does *not* reset
    ``ru_maxrss`` across ``execve``, so a benchmark subprocess spawned
    from a large parent (e.g. the perf-smoke pytest session) would
    inherit the parent's high-water mark and report it as its own.
    ``VmHWM`` lives on the fresh ``mm`` and measures only this process.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return round(int(line.split()[1]) / 1024.0, 1)
    except OSError:  # pragma: no cover - non-Linux platform
        pass
    try:
        import resource
    except ImportError:  # pragma: no cover - non-unix platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux/BSD but *bytes* on macOS.
    import sys

    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return round(peak / divisor, 1)


def _build_topology(name: str, num_hosts: int, seed: int) -> Topology:
    from repro.orchestration.runners import TOPOLOGY_BUILDERS

    if name not in TOPOLOGY_BUILDERS:
        raise KeyError(
            f"unknown topology {name!r}; known: {sorted(TOPOLOGY_BUILDERS)}"
        )
    return TOPOLOGY_BUILDERS[name](num_hosts, seed)


def _build_protocol(name: str):
    from repro.protocols.base import protocol_from_spec

    return protocol_from_spec(name)


def run_scale_benchmark(
    num_hosts: int,
    topology: str = "gnutella",
    protocol: str = "wildfire",
    aggregate: str = "count",
    seed: int = 0,
    repetitions: int = 8,
    values: Optional[Sequence[float]] = None,
    prebuilt_topology: Optional[Topology] = None,
    stats: str = "full",
    delay: str = "fixed",
    tracer=None,
    lane: str = "python",
    shards: int = 1,
) -> Dict[str, Any]:
    """Run one protocol once at ``num_hosts`` scale and measure it.

    Returns one table row with the wall-clock split (topology generation
    vs. simulation), the three paper cost measures, the kernel throughput
    in delivered messages per second, the process's peak RSS and the
    accounting structures' footprint.

    Args:
        num_hosts: network size (the paper stops at ~39k; with
            ``stats="streaming"`` a 1,000,000-host run completes).
        topology: a :data:`~repro.orchestration.runners.TOPOLOGY_BUILDERS`
            key (``gnutella``, ``power-law``, ``grid``, ``random``, ...).
        protocol: ``wildfire``, ``spanning-tree`` or ``dagK``.
        aggregate: query kind (``count``, ``sum``, ``min``, ...).
        seed: seed for topology generation, values and the protocol run.
        repetitions: FM repetitions for sketch-based combiners.
        values: per-host attribute values (default: uniform floats in
            [0, 100) drawn from ``seed``).
        prebuilt_topology: reuse an existing topology (e.g. to time several
            protocols on one graph without regenerating it).
        stats: cost accounting mode, ``"full"`` or ``"streaming"``.
        delay: link-delay model spec (``"fixed"``, ``"uniform"``,
            ``"per_edge"``, ``"heavy_tail"``, with optional ``:``
            arguments).
        tracer: structured trace sink threaded into the simulation; the
            benchmark's own phases (topology generation, simulation)
            land in the same trace as wall-clock ``phase`` spans.
        lane: kernel lane, ``"python"`` (the executable spec),
            ``"vector"`` (the opt-in per-tick vectorized lane) or
            ``"sharded"`` (the epoch-synchronous multiprocess lane);
            the opt-in lanes fall back to the spec loop when the run is
            unsupported.
        shards: worker-process count for ``lane="sharded"`` (ignored by
            the other lanes beyond validation).
    """
    if num_hosts < 2:
        raise ValueError("scale benchmarks need at least 2 hosts")

    timer = PhaseTimer(tracer=tracer)
    with timer.section("generate_topology", detail=num_hosts):
        if prebuilt_topology is not None:
            topo = prebuilt_topology
        else:
            topo = _build_topology(topology, num_hosts, seed)

    if values is None:
        rng = random.Random(seed)
        values = [rng.random() * 100.0 for _ in range(topo.num_hosts)]

    with timer.section("simulate", detail=num_hosts):
        result = run_protocol(
            _build_protocol(protocol),
            topo,
            values,
            aggregate,
            querying_host=0,
            seed=seed,
            repetitions=repetitions,
            stats=stats,
            delay=delay,
            tracer=tracer,
            lane=lane,
            shards=shards,
        )
    gen_seconds = timer.seconds("generate_topology")
    run_seconds = timer.seconds("simulate")

    # Opt-in lanes may decline the run; the row records both what was
    # *asked for* (``lane``) and what actually *ran* (``lane_used``),
    # plus the machine-readable reason when they differ.
    fallback_reason = result.fallback_reason
    lane_used = "python" if fallback_reason is not None else lane
    messages = result.costs.messages_sent
    row = {
        "hosts": topo.num_hosts,
        "topology": topology if prebuilt_topology is None else topo.name,
        "protocol": protocol,
        "aggregate": aggregate,
        "seed": seed,
        "stats": stats,
        "delay": delay,
        "lane": lane,
        "lane_used": lane_used,
        "fallback_reason": fallback_reason,
        "shards": shards,
        "value": result.value,
        "d_hat": result.d_hat,
        "messages": messages,
        "computation_cost": result.costs.computation_cost,
        "time_cost": result.costs.time_cost,
        "gen_seconds": round(gen_seconds, 4),
        "run_seconds": round(run_seconds, 4),
        "messages_per_second": (
            round(messages / run_seconds) if run_seconds > 0 else 0
        ),
        "peak_rss_mb": peak_rss_mb(),
        "accounting_bytes": result.costs.footprint_bytes(),
    }
    sharded_info = (result.extra or {}).get("sharded")
    if sharded_info is not None:
        # The coordinator's per-shard block (worker metrics + the
        # epoch/barrier timeline) rides along verbatim so ``repro obs
        # report`` can read straggler attribution straight off a saved
        # bench artifact.
        row["sharded"] = sharded_info
    return row


def run_service_benchmark(
    num_hosts: int,
    qps: float = 1.0,
    duration: float = 20.0,
    topology: str = "gnutella",
    seed: int = 0,
    stats: str = "streaming",
    delay: Optional[str] = None,
    tracer=None,
    **mix_overrides,
) -> Dict[str, Any]:
    """Measure concurrent-query throughput of the multi-tenant service.

    Runs one Poisson query mix (WILDFIRE/tree/DAG, see
    :mod:`repro.workloads.query_mix`) over a shared ``num_hosts``-host
    network and reports queries answered, wall-clock queries/sec and
    message throughput alongside the determinism digest -- the service
    counterpart of :func:`run_scale_benchmark`'s single-query row.
    """
    from repro.experiments.query_mix import run_query_mix

    result = run_query_mix(
        num_hosts=num_hosts, topology=topology, qps=qps,
        duration=duration, seed=seed, stats=stats, delay=delay,
        tracer=tracer, **mix_overrides)
    summary = result["summary"]
    elapsed = summary["elapsed_seconds"]
    return {
        "hosts": summary["hosts"],
        "topology": summary["topology"],
        "qps": qps,
        "duration": duration,
        "seed": seed,
        "stats": stats,
        "queries": summary["queries"],
        "answered": summary["answered"],
        "failed": summary["failed"],
        "run_seconds": elapsed,
        "queries_per_second": summary["queries_per_second"],
        "messages": summary["messages_sent"],
        "messages_per_second": (
            round(summary["messages_sent"] / elapsed) if elapsed > 0 else 0
        ),
        "peak_rss_mb": peak_rss_mb(),
        "determinism_digest": summary["determinism_digest"],
    }


def run_scale_sweep(
    host_counts: Sequence[int],
    topology: str = "gnutella",
    protocol: str = "wildfire",
    aggregate: str = "count",
    seed: int = 0,
    repetitions: int = 8,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    stats: str = "full",
    delay: str = "fixed",
    tracer=None,
    lane: str = "python",
    shards: int = 1,
) -> List[Dict[str, Any]]:
    """Run :func:`run_scale_benchmark` for each host count, in order.

    Note that ``peak_rss_mb`` is a process-wide high-water mark, so
    within one sweep it is non-decreasing and attributable to the
    largest run so far.
    """
    rows: List[Dict[str, Any]] = []
    for num_hosts in host_counts:
        row = run_scale_benchmark(
            int(num_hosts), topology=topology, protocol=protocol,
            aggregate=aggregate, seed=seed, repetitions=repetitions,
            stats=stats, delay=delay, tracer=tracer, lane=lane,
            shards=shards,
        )
        rows.append(row)
        if progress is not None:
            progress(row)
    return rows
