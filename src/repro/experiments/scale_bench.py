"""Beyond-paper scale benchmarks for the simulation kernel.

The paper's experiments top out at the ~39k-host Gnutella crawl; the
batched-ring kernel opens network sizes an order of magnitude past that.
:func:`run_scale_benchmark` runs one protocol/topology/aggregate cell at an
arbitrary host count and reports wall-clock throughput alongside the
paper's cost measures, so kernel regressions show up as a number, not a
feeling.  The ``repro bench`` CLI and ``benchmarks/test_kernel_scale.py``
both route through here.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.protocols.base import run_protocol
from repro.topology.base import Topology


def _build_topology(name: str, num_hosts: int, seed: int) -> Topology:
    from repro.orchestration.runners import TOPOLOGY_BUILDERS

    if name not in TOPOLOGY_BUILDERS:
        raise KeyError(
            f"unknown topology {name!r}; known: {sorted(TOPOLOGY_BUILDERS)}"
        )
    return TOPOLOGY_BUILDERS[name](num_hosts, seed)


def _build_protocol(name: str):
    from repro.protocols.dag import DirectedAcyclicGraph
    from repro.protocols.spanning_tree import SpanningTree
    from repro.protocols.wildfire import Wildfire

    if name == "wildfire":
        return Wildfire()
    if name == "spanning-tree":
        return SpanningTree()
    if name.startswith("dag"):
        suffix = name[3:] or "2"
        if suffix.isdigit() and int(suffix) >= 2:
            return DirectedAcyclicGraph(num_parents=int(suffix))
    raise KeyError(
        f"unknown protocol {name!r}; known: wildfire, spanning-tree, dagK "
        f"(K >= 2, e.g. dag2)"
    )


def run_scale_benchmark(
    num_hosts: int,
    topology: str = "gnutella",
    protocol: str = "wildfire",
    aggregate: str = "count",
    seed: int = 0,
    repetitions: int = 8,
    values: Optional[Sequence[float]] = None,
    prebuilt_topology: Optional[Topology] = None,
) -> Dict[str, Any]:
    """Run one protocol once at ``num_hosts`` scale and measure it.

    Returns one table row with the wall-clock split (topology generation
    vs. simulation), the three paper cost measures, and the kernel
    throughput in delivered messages per second.

    Args:
        num_hosts: network size (the paper stops at ~39k; 100k+ works).
        topology: a :data:`~repro.orchestration.runners.TOPOLOGY_BUILDERS`
            key (``gnutella``, ``power-law``, ``grid``, ``random``, ...).
        protocol: ``wildfire``, ``spanning-tree`` or ``dagK``.
        aggregate: query kind (``count``, ``sum``, ``min``, ...).
        seed: seed for topology generation, values and the protocol run.
        repetitions: FM repetitions for sketch-based combiners.
        values: per-host attribute values (default: uniform floats in
            [0, 100) drawn from ``seed``).
        prebuilt_topology: reuse an existing topology (e.g. to time several
            protocols on one graph without regenerating it).
    """
    if num_hosts < 2:
        raise ValueError("scale benchmarks need at least 2 hosts")

    gen_start = time.perf_counter()
    if prebuilt_topology is not None:
        topo = prebuilt_topology
    else:
        topo = _build_topology(topology, num_hosts, seed)
    gen_seconds = time.perf_counter() - gen_start

    if values is None:
        rng = random.Random(seed)
        values = [rng.random() * 100.0 for _ in range(topo.num_hosts)]

    run_start = time.perf_counter()
    result = run_protocol(
        _build_protocol(protocol),
        topo,
        values,
        aggregate,
        querying_host=0,
        seed=seed,
        repetitions=repetitions,
    )
    run_seconds = time.perf_counter() - run_start

    messages = result.costs.messages_sent
    return {
        "hosts": topo.num_hosts,
        "topology": topology if prebuilt_topology is None else topo.name,
        "protocol": protocol,
        "aggregate": aggregate,
        "seed": seed,
        "value": result.value,
        "d_hat": result.d_hat,
        "messages": messages,
        "computation_cost": result.costs.computation_cost,
        "time_cost": result.costs.time_cost,
        "gen_seconds": round(gen_seconds, 4),
        "run_seconds": round(run_seconds, 4),
        "messages_per_second": (
            round(messages / run_seconds) if run_seconds > 0 else 0
        ),
    }


def run_scale_sweep(
    host_counts: Sequence[int],
    topology: str = "gnutella",
    protocol: str = "wildfire",
    aggregate: str = "count",
    seed: int = 0,
    repetitions: int = 8,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> List[Dict[str, Any]]:
    """Run :func:`run_scale_benchmark` for each host count, in order."""
    rows: List[Dict[str, Any]] = []
    for num_hosts in host_counts:
        row = run_scale_benchmark(
            int(num_hosts), topology=topology, protocol=protocol,
            aggregate=aggregate, seed=seed, repetitions=repetitions,
        )
        rows.append(row)
        if progress is not None:
            progress(row)
    return rows
