"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Sequence


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value)}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of row dictionaries as an aligned plain-text table.

    Args:
        rows: the data; each row is a mapping of column name to value.
        columns: column order; defaults to the keys of the first row.
        title: optional heading printed above the table.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_render_cell(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * widths[i] for i in range(len(cols))))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
