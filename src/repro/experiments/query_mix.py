"""Concurrent query-mix experiment: drive the service with an open world.

This is the driver behind ``repro serve`` and the service benchmarks: it
builds one shared network, generates a Poisson query mix
(:mod:`repro.workloads.query_mix`), multiplexes every query over the
:class:`~repro.service.QueryService`, and reports per-query rows plus a
service-level summary (queries answered, wall-clock throughput, message
totals and a determinism digest over every per-query result).
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Callable, Dict, List, Optional

from repro.experiments.scale_bench import _build_topology
from repro.obs.metrics import collect_service_metrics
from repro.obs.stream import current_rss_mb
from repro.service import QueryService
from repro.simulation.churn import ChurnSchedule, uniform_failure_schedule
from repro.topology.base import Topology
from repro.workloads.query_mix import QueryMixConfig, generate_query_mix


def run_query_mix(
    num_hosts: int = 1000,
    topology: str = "gnutella",
    qps: float = 2.0,
    duration: float = 60.0,
    seed: int = 0,
    stats: str = "full",
    delay: Optional[str] = None,
    departures: int = 0,
    mix: Optional[QueryMixConfig] = None,
    prebuilt_topology: Optional[Topology] = None,
    tracer=None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    progress_interval: Optional[float] = None,
    metrics_interval: Optional[float] = None,
    metrics_stream=None,
    shards: int = 1,
    share_floods: bool = False,
    admission=None,
    _session_slice: Optional[tuple] = None,
    **mix_overrides,
) -> Dict[str, Any]:
    """Run one open-world query mix over a shared service.

    Args:
        num_hosts: network size.
        topology: a :data:`~repro.orchestration.runners.TOPOLOGY_BUILDERS`
            key.
        qps: mean Poisson arrival rate of query streams.
        duration: arrival window; the service then runs to drain, so
            every launched query declares.
        seed: seeds topology generation, values, churn, the mix and the
            per-query seed streams.
        stats: per-query cost accounting mode (``full`` / ``streaming``).
        delay: link-delay model spec shared by all queries (each session
            samples its own stream).
        departures: number of hosts failed uniformly over the arrival
            window (0 = static network).
        mix: explicit :class:`QueryMixConfig`; ``mix_overrides`` tweak
            its fields (``continuous_fraction=...``, ``max_queries=...``).
        prebuilt_topology: reuse an existing topology.
        tracer: structured trace sink handed to the service's engine.
        progress: when given, the drive is sliced into simulated-time
            windows of ``progress_interval`` (default: a tenth of the
            arrival window) and ``progress(snapshot)`` is called after
            each slice with live engine tallies.  Horizon-bounded drives
            pop the exact same event sequence as one drain, so results
            are bit-identical with or without progress reporting.
        progress_interval: simulated seconds per progress slice.
        metrics_interval: simulated seconds between live metrics
            samples; enables the same sliced drive as ``progress``
            (bit-identical results) with a full
            :func:`~repro.obs.metrics.collect_service_metrics` snapshot
            appended to ``metrics_stream`` after every slice.  Sampling
            at slice boundaries -- never from a thread -- keeps the
            reads race-free against the engine's own mutation.
        metrics_stream: a
            :class:`~repro.obs.stream.MetricsStreamWriter` (anything
            with a ``sample(payload)`` method) receiving the live
            snapshots; required when ``metrics_interval`` is set.
        shards: partition the mix by query id across this many worker
            processes, each driving its own engine over an identically
            seeded copy of the network.  Sessions are private and churn
            is a fixed schedule, so every per-query row -- and therefore
            the recomputed determinism digest -- is bit-identical to the
            single-process run; service-level tallies are merged by
            :func:`repro.service.engine.merge_shard_summaries`.
        share_floods: enable the cross-tenant shared-flood cache.
            Content-derived seeds make every per-query result
            bit-identical with sharing on or off; only the message
            totals (and the digest-independent service tallies) shrink.
        admission: an :class:`~repro.service.AdmissionConfig` arming
            the overload control loop (picklable, so it ships to shard
            workers unchanged).  Note that admission decisions read
            live engine state, so a sharded drive -- where each worker
            sees only its slice of the load -- can shed a different set
            of queries than the single-process run.
        _session_slice: internal ``(worker, shards)`` filter -- submit
            only queries whose id lands on this worker (ids are pinned
            so per-session seeds match the unsharded run).

    Returns:
        ``{"rows": [...], "summary": {...}, "metrics": {...}}``.  The
        summary's ``determinism_digest`` hashes every query's declared
        value and cost fingerprint, so two identically seeded runs can be
        compared with one string; ``metrics`` is the service metrics
        snapshot (engine tallies, queue occupancy, per-tenant breakdown).
    """
    if int(shards) < 1:
        raise ValueError("shards must be at least 1")
    if shards > 1:
        if _session_slice is not None:
            raise ValueError("worker slices cannot themselves shard")
        if (tracer is not None or progress is not None
                or metrics_stream is not None):
            raise ValueError(
                "sharded query mixes cannot carry a tracer, progress "
                "callback or metrics stream across process boundaries; "
                "run with shards=1")
        if prebuilt_topology is not None:
            raise ValueError(
                "sharded query mixes rebuild the topology per worker; "
                "pass the generator name instead of a prebuilt topology")
        return _run_sharded_query_mix(
            shards=int(shards), num_hosts=num_hosts, topology=topology,
            qps=qps, duration=duration, seed=seed, stats=stats,
            delay=delay, departures=departures, mix=mix,
            share_floods=share_floods, admission=admission,
            mix_overrides=mix_overrides)

    if prebuilt_topology is not None:
        topo = prebuilt_topology
    else:
        topo = _build_topology(topology, num_hosts, seed)
    rng = random.Random(seed)
    values = [rng.random() * 100.0 for _ in range(topo.num_hosts)]

    churn: Optional[ChurnSchedule] = None
    if departures > 0:
        churn = uniform_failure_schedule(
            candidates=list(range(topo.num_hosts)),
            num_failures=departures,
            start=duration * 0.05,
            end=duration * 0.95,
            seed=seed,
        )

    mix_config = mix if mix is not None else QueryMixConfig(
        qps=qps, duration=duration)
    submissions = generate_query_mix(
        topo.num_hosts, mix_config, seed=seed, **mix_overrides)

    service = QueryService(
        topo, values, churn=churn, seed=seed, stats=stats, delay=delay,
        tracer=tracer, share_floods=share_floods, admission=admission)
    for index, submission in enumerate(submissions):
        # Ids are pinned explicitly (1-based submission order, exactly
        # what auto-assignment would hand out) so a shard worker that
        # skips every other submission still derives the same
        # per-session seeds as the single-process run.
        qid = index + 1
        if _session_slice is not None:
            worker, span = _session_slice
            if qid % span != worker:
                continue
        service.submit(
            submission.protocol,
            submission.aggregate,
            querying_host=submission.querying_host,
            at=submission.time,
            stream=submission.stream,
            extra={"continuous": submission.continuous,
                   "report_index": submission.report_index},
            query_id=qid,
        )
    if metrics_interval is not None and metrics_stream is None:
        raise ValueError("metrics_interval needs a metrics_stream to "
                         "write to")
    if progress is None and metrics_stream is None:
        report = service.run()
    else:
        engine = service.engine
        candidates = [i for i in (progress_interval, metrics_interval)
                      if i]
        interval = (min(candidates) if candidates
                    else max(duration / 10.0, 1.0))
        horizon = 0.0
        while engine.pending_events():
            horizon += interval
            service.run(until=horizon)
            snapshot = {
                "time": min(horizon, engine.clock.now),
                "active_sessions": engine.active_sessions,
                "pending_events": engine.pending_events(),
                "messages_sent": engine.messages_sent,
                "late_messages": engine.late_messages,
                "retired": len(engine.retired_order),
            }
            if progress is not None:
                progress(snapshot)
            if metrics_stream is not None:
                sample = collect_service_metrics(service)
                sample["service.sim_time"] = snapshot["time"]
                rss = current_rss_mb()
                if rss is not None:
                    sample["process.rss_mb"] = rss
                metrics_stream.sample(sample)
        report = service.run()

    late_by_query = service.engine.late_by_query
    rows: List[Dict[str, Any]] = []
    digest = hashlib.sha256()
    for outcome in report.outcomes:
        row = outcome.as_row()
        row["late_messages"] = late_by_query.get(outcome.query_id, 0)
        if outcome.costs is not None:
            row["cost_fingerprint"] = outcome.costs.fingerprint()
            digest.update(row["cost_fingerprint"].encode())
        digest.update(repr((outcome.query_id, outcome.value)).encode())
        rows.append(row)

    summary = dict(report.summary())
    summary.update({
        "hosts": topo.num_hosts,
        "topology": topo.name if prebuilt_topology is not None else topology,
        "qps": qps,
        "duration": duration,
        "seed": seed,
        "stats": stats,
        "delay": delay or "fixed",
        "departures": departures,
        "share_floods": bool(share_floods),
        "determinism_digest": digest.hexdigest(),
    })
    return {"rows": rows, "summary": summary,
            "metrics": collect_service_metrics(service)}


def _mix_shard_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool entry point: one worker's slice of the sharded query mix."""
    kwargs = dict(payload)
    overrides = kwargs.pop("mix_overrides")
    return run_query_mix(**kwargs, **overrides)


def _run_sharded_query_mix(
    shards: int,
    num_hosts: int,
    topology: str,
    qps: float,
    duration: float,
    seed: int,
    stats: str,
    delay: Optional[str],
    departures: int,
    mix: Optional[QueryMixConfig],
    share_floods: bool,
    admission,
    mix_overrides: Dict[str, Any],
) -> Dict[str, Any]:
    """Partition the mix by query id over a worker pool and merge.

    Each worker rebuilds the identical topology/values/churn/mix from
    the shared seed and drives only the queries whose 1-based id is
    congruent to its index mod ``shards``.  Per-query rows come back
    bit-identical to the single-process run (sessions are private;
    churn is a fixed schedule), so the parent reassembles them in id
    order and *recomputes* the determinism digest with the exact
    single-process algorithm -- digest equality is the end-to-end proof
    that sharding changed nothing a tenant can observe.
    """
    from repro.orchestration.executor import _pool_context
    from repro.service.engine import merge_shard_summaries

    payloads = [
        {
            "num_hosts": num_hosts, "topology": topology, "qps": qps,
            "duration": duration, "seed": seed, "stats": stats,
            "delay": delay, "departures": departures, "mix": mix,
            "share_floods": share_floods, "admission": admission,
            "_session_slice": (worker, shards),
            "mix_overrides": mix_overrides,
        }
        for worker in range(shards)
    ]
    ctx = _pool_context()
    with ctx.Pool(processes=shards) as pool:
        shard_results = pool.map(_mix_shard_worker, payloads)

    rows = sorted(
        (row for result in shard_results for row in result["rows"]),
        key=lambda row: row["query_id"])
    digest = hashlib.sha256()
    for row in rows:
        fingerprint = row.get("cost_fingerprint")
        if fingerprint is not None:
            digest.update(fingerprint.encode())
        digest.update(repr((row["query_id"], row["value"])).encode())
    summary = merge_shard_summaries(
        [result["summary"] for result in shard_results], rows)
    summary["determinism_digest"] = digest.hexdigest()
    summary["shards"] = shards
    return {
        "rows": rows,
        "summary": summary,
        "metrics": {
            "service.shards": shards,
            "per_shard": [result["metrics"] for result in shard_results],
        },
    }


def run_qps_sweep(
    qps_values,
    num_hosts: int = 500,
    topology: str = "gnutella",
    duration: float = 30.0,
    seed: int = 0,
    stats: str = "streaming",
    share_floods: bool = False,
    mix: Optional[QueryMixConfig] = None,
    knee_slowdown: float = 1.5,
    **mix_overrides,
) -> Dict[str, Any]:
    """Offered-qps vs service-latency sweep: where is the saturation knee?

    Drives the same mix shape at each offered rate (the mix's own
    ``qps``/``duration`` are overridden per point) and reports, per
    point, the wall-clock cost per query and the throughput actually
    achieved.  The **knee** is the highest offered rate whose wall-clock
    seconds per query stay within ``knee_slowdown`` x the lowest offered
    rate's -- past it, added load buys latency instead of throughput.
    With the shared-flood cache on, duplicate floods collapse into
    subscriptions, so the same substrate absorbs a higher offered rate
    before the knee: the knee moves right.

    Returns ``{"rows": [...], "knee_qps": ..., "capacity_qps": ...,
    "share_floods": ...}``; rows carry the fields
    ``benchmarks/test_bench_schema.py`` locks.
    """
    from dataclasses import replace

    qps_values = sorted(float(q) for q in qps_values)
    if not qps_values:
        raise ValueError("qps sweep needs at least one offered rate")
    base_mix = mix if mix is not None else QueryMixConfig(
        qps=qps_values[0], duration=duration)
    rows: List[Dict[str, Any]] = []
    for offered in qps_values:
        point_mix = replace(base_mix, qps=offered, duration=duration)
        result = run_query_mix(
            num_hosts=num_hosts, topology=topology, qps=offered,
            duration=duration, seed=seed, stats=stats, mix=point_mix,
            share_floods=share_floods, **mix_overrides)
        summary = result["summary"]
        queries = summary["queries"]
        elapsed = summary["elapsed_seconds"]
        rows.append({
            "offered_qps": offered,
            "queries": queries,
            "answered": summary["answered"],
            "shed": summary.get("shed", 0),
            "deferred": summary.get("deferred", 0),
            "degraded": summary.get("degraded", 0),
            "cache_hits": summary.get("cache_hits", 0),
            "cache_hit_rate": round(
                summary.get("cache_hits", 0) / queries, 4) if queries
                else 0.0,
            "messages": summary["messages_sent"],
            "msgs_per_query": round(
                summary["messages_sent"] / queries, 1) if queries
                else 0.0,
            "elapsed_s": elapsed,
            "wall_s_per_query": round(
                elapsed / queries, 6) if queries else 0.0,
            "wall_qps": summary["queries_per_second"],
            "share_floods": bool(share_floods),
        })
    baseline = rows[0]["wall_s_per_query"] or 1e-9
    knee = rows[0]["offered_qps"]
    for row in rows:
        if row["wall_s_per_query"] <= knee_slowdown * baseline:
            knee = row["offered_qps"]
    return {
        "rows": rows,
        "knee_qps": knee,
        "capacity_qps": max(row["wall_qps"] for row in rows),
        "share_floods": bool(share_floods),
    }
