"""Figures 10 and 11: communication cost versus network size.

Figure 10 runs a count query on Random topologies of increasing size (plus
the Gnutella point) and plots the number of messages sent by WILDFIRE (for
several D_hat overestimates) against SPANNINGTREE and DAG; WILDFIRE costs
roughly 4-5x more, and the cost is insensitive to the D_hat overestimate.

Figure 11 repeats the exercise on Grid topologies with a wireless broadcast
medium and additionally compares query types: min/max queries benefit from
WILDFIRE's early aggregation so much that their cost drops below
SPANNINGTREE's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.protocols.base import Protocol, resolve_d_hat, run_protocol
from repro.protocols.dag import DirectedAcyclicGraph
from repro.protocols.spanning_tree import SpanningTree
from repro.protocols.wildfire import Wildfire
from repro.topology.base import Topology
from repro.topology.gnutella import gnutella_like_topology
from repro.topology.grid import grid_topology
from repro.topology.random_graph import random_topology
from repro.workloads.values import zipf_values


@dataclass(frozen=True)
class CommunicationRow:
    """One (protocol/configuration, network size) communication-cost point."""

    label: str
    topology: str
    num_hosts: int
    query_kind: str
    d_hat: int
    messages: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "topology": self.topology,
            "|H|": self.num_hosts,
            "query": self.query_kind,
            "d_hat": self.d_hat,
            "messages": self.messages,
        }


def _measure(
    protocol: Protocol,
    topology: Topology,
    values: Sequence[float],
    query_kind: str,
    d_hat: int,
    wireless: bool,
    seed: int,
    label: str,
) -> CommunicationRow:
    result = run_protocol(
        protocol=protocol,
        topology=topology,
        values=values,
        query=query_kind,
        querying_host=0,
        d_hat=d_hat,
        wireless=wireless,
        seed=seed,
    )
    return CommunicationRow(
        label=label,
        topology=topology.name,
        num_hosts=topology.num_hosts,
        query_kind=query_kind,
        d_hat=d_hat,
        messages=result.costs.communication_cost,
    )


def run_communication_cost_experiment(
    network_sizes: Sequence[int] = (250, 500, 1000, 2000),
    d_hat_factors: Sequence[float] = (1.0, 1.5, 2.0),
    query_kind: str = "count",
    include_gnutella_point: bool = True,
    gnutella_size: int = 2000,
    avg_degree: float = 5.0,
    seed: int = 0,
) -> List[CommunicationRow]:
    """Regenerate Figure 10 (communication cost on Random topologies).

    Args:
        network_sizes: the |H| sweep (paper: up to 40K; scaled by default).
        d_hat_factors: multiples of the estimated diameter used as D_hat, to
            show cost is insensitive to the overestimate.
        query_kind: aggregate to run (the paper uses count).
        include_gnutella_point: also measure WILDFIRE and SPANNINGTREE on a
            Gnutella-like topology, as in the figure's standalone points.
        gnutella_size: size of the Gnutella-like stand-in.
        avg_degree: Random topology average degree.
        seed: base RNG seed.
    """
    rows: List[CommunicationRow] = []
    for size in network_sizes:
        topology = random_topology(size, avg_degree=avg_degree, seed=seed)
        values = zipf_values(size, seed=seed)
        base_d_hat = resolve_d_hat(topology, None, overestimate_factor=1.0, seed=seed)
        for factor in d_hat_factors:
            d_hat = max(1, int(round(base_d_hat * factor)))
            rows.append(
                _measure(Wildfire(), topology, values, query_kind, d_hat,
                         wireless=False, seed=seed,
                         label=f"wildfire (D_hat={factor:g}x)")
            )
        rows.append(
            _measure(SpanningTree(), topology, values, query_kind, base_d_hat,
                     wireless=False, seed=seed, label="spanning-tree")
        )
        rows.append(
            _measure(DirectedAcyclicGraph(2), topology, values, query_kind,
                     base_d_hat, wireless=False, seed=seed, label="dag-k2")
        )
    if include_gnutella_point:
        topology = gnutella_like_topology(gnutella_size, seed=seed)
        values = zipf_values(topology.num_hosts, seed=seed)
        d_hat = resolve_d_hat(topology, None, overestimate_factor=1.0, seed=seed)
        rows.append(_measure(Wildfire(), topology, values, query_kind, d_hat,
                             wireless=False, seed=seed, label="wildfire (gnutella)"))
        rows.append(_measure(SpanningTree(), topology, values, query_kind, d_hat,
                             wireless=False, seed=seed, label="spanning-tree (gnutella)"))
    return rows


def run_grid_communication_experiment(
    grid_sides: Sequence[int] = (16, 24, 32),
    query_kinds: Sequence[str] = ("count", "max", "min"),
    seed: int = 0,
) -> List[CommunicationRow]:
    """Regenerate Figure 11 (communication cost on Grid, wireless medium).

    Args:
        grid_sides: side lengths of the square grids (paper: 100).
        query_kinds: aggregates compared; min/max exhibit the early-
            aggregation saving discussed in Section 6.6.
        seed: base RNG seed.
    """
    rows: List[CommunicationRow] = []
    for side in grid_sides:
        topology = grid_topology(side)
        values = zipf_values(topology.num_hosts, seed=seed)
        d_hat = resolve_d_hat(topology, None, overestimate_factor=1.2, seed=seed)
        for kind in query_kinds:
            rows.append(
                _measure(Wildfire(), topology, values, kind, d_hat,
                         wireless=True, seed=seed, label=f"wildfire/{kind}")
            )
        rows.append(
            _measure(SpanningTree(), topology, values, "count", d_hat,
                     wireless=True, seed=seed, label="spanning-tree/count")
        )
        rows.append(
            _measure(DirectedAcyclicGraph(2), topology, values, "count", d_hat,
                     wireless=True, seed=seed, label="dag-k2/count")
        )
    return rows


def wildfire_to_tree_ratio(rows: Sequence[CommunicationRow]) -> Dict[int, float]:
    """The headline "price of validity": WILDFIRE / SPANNINGTREE message ratio.

    Returns a map of network size to ratio, using the first WILDFIRE and
    SPANNINGTREE rows recorded for each size.
    """
    ratios: Dict[int, float] = {}
    by_size: Dict[int, Dict[str, int]] = {}
    for row in rows:
        bucket = by_size.setdefault(row.num_hosts, {})
        if row.label.startswith("wildfire") and "wildfire" not in bucket:
            bucket["wildfire"] = row.messages
        if row.label.startswith("spanning-tree") and "spanning-tree" not in bucket:
            bucket["spanning-tree"] = row.messages
    for size, bucket in by_size.items():
        if "wildfire" in bucket and "spanning-tree" in bucket and bucket["spanning-tree"]:
            ratios[size] = bucket["wildfire"] / bucket["spanning-tree"]
    return ratios
