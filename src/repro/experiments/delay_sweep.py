"""Beyond-paper: Figure 7-9 style validity curves under variable delay.

The paper's Figures 7-9 sweep churn while the simulator realises the
adversarially slowest timing (every hop takes exactly ``delta``).  Its
validity guarantees, however, are stated for *any* per-hop delay in
``(0, delta]`` -- a scenario space the fixed-delay kernel could not
explore.  This driver re-runs the churn sweep under each requested
:mod:`~repro.simulation.delay` model and records, per (delay model,
protocol, R) point, the declared value against the ORACLE's Single-Site
Validity bounds plus the fraction of trials judged valid and the mean
finish time.

The expected shape: WILDFIRE's valid fraction stays at 1.0 under every
delay model (deadlines are computed from the bound, so faster realised
links only give messages more slack), the tree protocols remain valid on
static networks but keep degrading with churn, and all runs finish *no
later* under variable delay than under ``fixed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import TrialStats, aggregate_trials
from repro.obs.provenance import ProvenanceTracer
from repro.protocols.base import Protocol, resolve_d_hat, run_protocol
from repro.queries.query import AggregateQuery
from repro.semantics.oracle import Oracle
from repro.simulation.churn import ChurnSchedule, uniform_failure_schedule
from repro.topology.base import Topology
from repro.workloads.values import zipf_values

#: Delay models swept by default: the paper's worst case plus one
#: light-spread and one heavy-tailed model.
DEFAULT_DELAY_SPECS = ("fixed", "uniform:0.25,1.0", "heavy_tail:1.2")


@dataclass(frozen=True)
class DelaySweepRow:
    """One (delay model, protocol, R) point of the variable-delay sweep."""

    delay: str
    protocol: str
    departures: int
    value: TrialStats
    oracle_lower: TrialStats
    oracle_upper: TrialStats
    fraction_valid: float
    finished_at: TrialStats
    #: Mean per-trial provenance tallies (only populated when the sweep
    #: ran with ``provenance=True``; columns are added to ``as_dict``
    #: only then, so default output shape is unchanged).
    lost_alive: Optional[TrialStats] = None
    lost_to_churn: Optional[TrialStats] = None

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "delay": self.delay,
            "protocol": self.protocol,
            "R": self.departures,
            "value_mean": round(self.value.mean, 2),
            "value_ci": round(self.value.ci, 2),
            "oracle_lower": round(self.oracle_lower.mean, 2),
            "oracle_upper": round(self.oracle_upper.mean, 2),
            "valid_fraction": round(self.fraction_valid, 2),
            "finished_at": round(self.finished_at.mean, 2),
        }
        if self.lost_alive is not None:
            row["lost_alive_mean"] = round(self.lost_alive.mean, 2)
        if self.lost_to_churn is not None:
            row["lost_churn_mean"] = round(self.lost_to_churn.mean, 2)
        return row


def run_delay_sweep(
    topology: Topology,
    query_kind: str,
    departures: Sequence[int] = (0,),
    delay_specs: Sequence[str] = DEFAULT_DELAY_SPECS,
    protocols: Optional[Sequence[Protocol]] = None,
    values: Optional[Sequence[float]] = None,
    querying_host: int = 0,
    num_trials: int = 3,
    fm_repetitions: int = 16,
    d_hat: Optional[int] = None,
    delta: float = 1.0,
    seed: int = 0,
    sketch_epsilon: float = 0.5,
    provenance: bool = False,
) -> List[DelaySweepRow]:
    """Run the delay x churn sweep and return one row per point.

    Args:
        topology: the network to evaluate on.
        query_kind: ``"count"``, ``"sum"``, ``"min"``, ...
        departures: the churn levels R to sweep (``0`` = static).
        delay_specs: delay model spec strings (see
            :func:`repro.simulation.delay.delay_model_from_spec`).
        protocols: protocols to compare; defaults to the paper's
            WILDFIRE / SPANNINGTREE / DAG line-up.
        values: per-host attribute values; Zipf [10, 500] when omitted.
        querying_host: the querying host (never fails).
        num_trials: independent trials per point.  Each trial shares its
            failure schedule across every delay model and protocol, so a
            column difference is attributable to timing alone.
        fm_repetitions: FM repetitions for sketch-based combiners.
        d_hat: stable-diameter overestimate; estimated when omitted.
        delta: the per-hop delay *bound* every model is capped by.
        seed: base RNG seed.
        sketch_epsilon: multiplicative slack for judging FM-estimate
            answers (Approximate Single-Site Validity); exact combiners
            are judged with zero slack.
        provenance: record each trial's contribution set with a
            :class:`~repro.obs.provenance.ProvenanceTracer` and add
            ``lost_alive_mean`` / ``lost_churn_mean`` columns.  Opt-in:
            provenance traces every delivery unsampled, so it is meant
            for experiment-scale sweeps, and it never perturbs the
            declared values (tracers only observe).
    """
    from repro.experiments.validity_sweep import default_protocols

    if values is None:
        values = zipf_values(topology.num_hosts, seed=seed)
    protocols = list(protocols) if protocols is not None else default_protocols()
    oracle = Oracle(topology, values, querying_host)
    query = AggregateQuery.of(query_kind)
    resolved_d_hat = resolve_d_hat(topology, d_hat, seed=seed)
    horizon = 2.0 * resolved_d_hat * delta

    rows: List[DelaySweepRow] = []
    for num_departures in departures:
        # One failure schedule per trial, shared by every (delay model,
        # protocol) cell of this R.
        schedules = []
        for trial in range(num_trials):
            trial_seed = seed + 131 * trial + num_departures
            if num_departures <= 0:
                schedules.append((trial_seed, ChurnSchedule.empty()))
                continue
            schedules.append((trial_seed, uniform_failure_schedule(
                candidates=range(topology.num_hosts),
                num_failures=min(num_departures, topology.num_hosts - 1),
                start=0.5,
                end=max(1.0, horizon - 0.5),
                seed=trial_seed,
                protect=[querying_host],
            )))
        bounds_per_trial = [
            oracle.bounds(query_kind, churn, horizon=horizon)
            for _, churn in schedules
        ]
        for delay_spec in delay_specs:
            for protocol in protocols:
                combiner = protocol.default_combiner(
                    query, repetitions=fm_repetitions)
                epsilon = sketch_epsilon if (
                    combiner.duplicate_insensitive
                    and query_kind.lower() in ("count", "sum", "avg",
                                               "average")
                ) else 0.0
                declared_samples: List[float] = []
                finished_samples: List[float] = []
                lower_samples: List[float] = []
                upper_samples: List[float] = []
                lost_alive_samples: List[float] = []
                lost_churn_samples: List[float] = []
                num_valid = 0
                for (trial_seed, churn), bounds in zip(schedules,
                                                       bounds_per_trial):
                    tracer = ProvenanceTracer() if provenance else None
                    result = run_protocol(
                        protocol=protocol,
                        topology=topology,
                        values=values,
                        query=query,
                        querying_host=querying_host,
                        d_hat=resolved_d_hat,
                        delta=delta,
                        churn=churn,
                        seed=trial_seed,
                        repetitions=fm_repetitions,
                        delay=delay_spec,
                        tracer=tracer,
                    )
                    if tracer is not None:
                        attribution = tracer.provenance(
                            result.querying_host,
                            result.termination_time,
                            topology.num_hosts,
                        )
                        lost_alive_samples.append(
                            float(len(attribution.lost_alive)))
                        lost_churn_samples.append(
                            float(len(attribution.lost_to_churn)))
                    declared = result.value if result.value is not None else 0.0
                    declared_samples.append(declared)
                    finished_samples.append(result.finished_at)
                    lower_samples.append(bounds.lower_value)
                    upper_samples.append(bounds.upper_value)
                    if oracle.is_valid(declared, query_kind, churn,
                                       horizon=result.termination_time,
                                       epsilon=epsilon):
                        num_valid += 1
                rows.append(DelaySweepRow(
                    delay=delay_spec,
                    protocol=protocol.name,
                    departures=num_departures,
                    value=aggregate_trials(declared_samples),
                    oracle_lower=aggregate_trials(lower_samples),
                    oracle_upper=aggregate_trials(upper_samples),
                    fraction_valid=num_valid / max(1, num_trials),
                    finished_at=aggregate_trials(finished_samples),
                    lost_alive=(aggregate_trials(lost_alive_samples)
                                if provenance else None),
                    lost_to_churn=(aggregate_trials(lost_churn_samples)
                                   if provenance else None),
                ))
    return rows
