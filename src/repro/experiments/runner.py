"""Multi-trial experiment runner with confidence intervals.

The paper reports averages over 10 trials with 95% confidence intervals;
this module provides the small amount of shared machinery the per-figure
drivers need to do the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Sequence

from repro.semantics.metrics import mean_and_confidence_interval


@dataclass(frozen=True)
class TrialStats:
    """Mean and 95% confidence half-width of a repeated measurement."""

    mean: float
    ci: float
    samples: int

    @property
    def low(self) -> float:
        return self.mean - self.ci

    @property
    def high(self) -> float:
        return self.mean + self.ci

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.2f} +/- {self.ci:.2f}"


def aggregate_trials(samples: Sequence[float]) -> TrialStats:
    """Summarise repeated measurements as a :class:`TrialStats`."""
    mean, ci = mean_and_confidence_interval(samples)
    return TrialStats(mean=mean, ci=ci, samples=len(samples))


def _trial_samples(
    trial: Callable[[int], Any],
    num_trials: int,
    base_seed: int,
    workers: int,
) -> List[Any]:
    if num_trials < 1:
        raise ValueError("num_trials must be at least 1")
    seeds = [base_seed + i for i in range(num_trials)]
    if workers <= 1:
        return [trial(seed) for seed in seeds]
    # Route through the orchestration subsystem's pool; the serial path
    # above stays import-free so existing call sites pay nothing.
    from repro.orchestration.executor import map_over_seeds

    return map_over_seeds(trial, seeds, workers=workers)


def run_trials(
    trial: Callable[[int], float],
    num_trials: int,
    base_seed: int = 0,
    workers: int = 1,
) -> TrialStats:
    """Run ``trial(seed)`` for ``num_trials`` different seeds and summarise.

    Args:
        trial: a callable mapping a seed to one scalar measurement.
        num_trials: how many independent trials to run.
        base_seed: seeds are ``base_seed, base_seed + 1, ...``.
        workers: with ``workers > 1`` trials fan out over a process pool
            (``trial`` must then be picklable, i.e. a module-level
            function); results are identical to the serial path.
    """
    samples = _trial_samples(trial, num_trials, base_seed, workers)
    return aggregate_trials(samples)


def run_trials_multi(
    trial: Callable[[int], Dict[str, float]],
    num_trials: int,
    base_seed: int = 0,
    workers: int = 1,
) -> Dict[str, TrialStats]:
    """Like :func:`run_trials` for trials that return several named metrics."""
    per_key: Dict[str, List[float]] = {}
    for outcome in _trial_samples(trial, num_trials, base_seed, workers):
        for key, value in outcome.items():
            per_key.setdefault(key, []).append(value)
    return {key: aggregate_trials(values) for key, values in per_key.items()}
