"""Section 5.4: continuous approximate size estimation under churn.

The experiment simulates a population of hosts that shrinks (and optionally
grows) over a sequence of sampling intervals, runs the Jolly-Seber style
capture-recapture estimator, and reports the relative error of its size
estimates; it also exercises the ring-segment estimator for DHT overlays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.queries.size_estimation import (
    CaptureRecaptureEstimator,
    RingSegmentEstimator,
)


@dataclass(frozen=True)
class SizeEstimationRow:
    """One interval of the capture-recapture experiment."""

    interval: int
    true_size: int
    estimate: float
    relative_error: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "interval": self.interval,
            "true_size": self.true_size,
            "estimate": round(self.estimate, 1),
            "relative_error": round(self.relative_error, 3),
        }


def run_capture_recapture_experiment(
    initial_size: int = 2000,
    num_intervals: int = 12,
    departure_rate: float = 0.03,
    arrival_rate: float = 0.02,
    sample_size: int = 200,
    seed: int = 0,
) -> List[SizeEstimationRow]:
    """Drive the capture-recapture estimator over a churning population.

    Args:
        initial_size: hosts alive at the first interval.
        num_intervals: sampling intervals to simulate.
        departure_rate: fraction of hosts leaving per interval.
        arrival_rate: fraction of (current) hosts arriving per interval.
        sample_size: hosts sampled per interval (|N_t|).
        seed: RNG seed.
    """
    if initial_size < sample_size:
        raise ValueError("sample_size cannot exceed the initial population")
    rng = random.Random(seed)
    alive: Set[int] = set(range(initial_size))
    next_id = initial_size
    estimator = CaptureRecaptureEstimator()
    rows: List[SizeEstimationRow] = []

    for interval in range(num_intervals):
        sample = rng.sample(sorted(alive), min(sample_size, len(alive)))
        record = estimator.observe_interval(alive, sample)
        if record is not None:
            error = abs(record.estimate / len(alive) - 1.0)
            rows.append(
                SizeEstimationRow(
                    interval=interval,
                    true_size=len(alive),
                    estimate=record.estimate,
                    relative_error=error,
                )
            )
        # Apply churn for the next interval.
        departures = rng.sample(sorted(alive),
                                int(len(alive) * departure_rate))
        alive.difference_update(departures)
        arrivals = int(len(alive) * arrival_rate)
        for _ in range(arrivals):
            alive.add(next_id)
            next_id += 1
    return rows


def run_ring_segment_experiment(
    network_sizes: Sequence[int] = (500, 2000, 8000),
    sample_size: int = 100,
    num_trials: int = 5,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Evaluate the ring-segment estimator across overlay sizes."""
    rows: List[Dict[str, object]] = []
    for size in network_sizes:
        errors = []
        for trial in range(num_trials):
            estimator = RingSegmentEstimator.random_overlay(size, seed=seed + trial)
            estimate = estimator.estimate(min(sample_size, size), seed=seed + 17 * trial)
            errors.append(abs(estimate / size - 1.0))
        rows.append(
            {
                "|H|": size,
                "sample": min(sample_size, size),
                "mean_relative_error": round(sum(errors) / len(errors), 3),
            }
        )
    return rows
