"""Theorem 4.4: best-effort protocols can be arbitrarily wrong.

The construction arranges 2n + 2 hosts in a cycle with one pendant host.
The querying host builds a spanning tree with two chains around the cycle;
failing the querying host's neighbor on the longer chain right after
Broadcast discards at least half of the stable core, so the declared count
is at most |H_C| / e with e = 2 (and larger e for deeper constructions).
WILDFIRE on the same instance still returns a valid answer because the
surviving arc of the cycle carries every remaining host's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.provenance import EstimateProvenance, ProvenanceTracer
from repro.protocols.base import run_protocol
from repro.protocols.spanning_tree import SpanningTree
from repro.protocols.wildfire import Wildfire
from repro.semantics.oracle import Oracle
from repro.sketches.combiners import ExactCountCombiner, FMCountCombiner
from repro.simulation.churn import ChurnSchedule
from repro.topology.primitives import cycle_with_pendant_topology
from repro.workloads.values import constant_values


@dataclass(frozen=True)
class BadCaseResult:
    """Outcome of the Theorem 4.4 construction for one protocol."""

    protocol: str
    declared: float
    stable_core_size: int
    error_factor: float
    is_valid: bool
    #: Contribution-set attribution, only populated when the experiment
    #: ran with ``provenance=True``.  The Theorem 4.4 story in set form:
    #: SPANNINGTREE's ``lost_alive`` holds the severed chain's survivors
    #: while WILDFIRE's contributors cover the stable core.
    provenance: Optional[EstimateProvenance] = None

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "protocol": self.protocol,
            "declared": round(self.declared, 2),
            "|H_C|": self.stable_core_size,
            "error_factor": round(self.error_factor, 2),
            "valid": self.is_valid,
        }
        if self.provenance is not None:
            row["lost_alive"] = len(self.provenance.lost_alive)
            row["lost_to_churn"] = len(self.provenance.lost_to_churn)
        return row


def run_theorem_44_experiment(
    cycle_size: int = 42,
    fm_repetitions: int = 16,
    seed: int = 0,
    provenance: bool = False,
) -> List[BadCaseResult]:
    """Run the Theorem 4.4 construction for SPANNINGTREE and WILDFIRE.

    Args:
        cycle_size: number of hosts on the cycle (2n + 2 in the paper).
        fm_repetitions: FM repetitions for WILDFIRE's count sketch.
        seed: RNG seed.
        provenance: attach each protocol's contribution-set attribution
            (see :mod:`repro.obs.provenance`) to its result; the declared
            values are unaffected (tracers only observe).
    """
    topology = cycle_with_pendant_topology(cycle_size)
    values = constant_values(topology.num_hosts, 1)
    querying_host = 0
    # Fail host 1 (the querying host's neighbor on one chain) right after
    # the Broadcast message passed through it.
    churn = ChurnSchedule(failures=[(1.6, 1)])
    oracle = Oracle(topology, values, querying_host)
    d_hat = max(2, cycle_size)

    results: List[BadCaseResult] = []
    for protocol, combiner in (
        (SpanningTree(), ExactCountCombiner()),
        (Wildfire(), FMCountCombiner(repetitions=fm_repetitions)),
    ):
        tracer = ProvenanceTracer() if provenance else None
        run = run_protocol(
            protocol=protocol,
            topology=topology,
            values=values,
            query="count",
            querying_host=querying_host,
            combiner=combiner,
            d_hat=d_hat,
            churn=churn,
            seed=seed,
            tracer=tracer,
        )
        attribution = (
            tracer.provenance(querying_host, run.termination_time,
                              topology.num_hosts)
            if tracer is not None else None
        )
        declared = run.value if run.value is not None else 0.0
        bounds = oracle.bounds("count", churn, horizon=run.termination_time)
        core_size = bounds.core_size
        error_factor = core_size / declared if declared else float("inf")
        epsilon = 0.0 if isinstance(combiner, ExactCountCombiner) else 0.75
        valid = oracle.is_valid(declared, "count", churn,
                                horizon=run.termination_time, epsilon=epsilon)
        results.append(
            BadCaseResult(
                protocol=protocol.name,
                declared=declared,
                stable_core_size=core_size,
                error_factor=error_factor,
                is_valid=valid,
                provenance=attribution,
            )
        )
    return results
