"""Figures 7-9: declared answers versus churn, against the ORACLE bounds.

For a given topology and query the sweep removes R hosts at a uniform rate
during query processing (R is varied to control dynamism), runs every
protocol under comparison, and records the average declared value together
with the ORACLE's Single-Site Validity lower and upper bounds.  WILDFIRE
stays within the bounds for every R; SPANNINGTREE and DIRECTEDACYCLICGRAPH
drop below the lower bound as churn increases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import TrialStats, aggregate_trials
from repro.protocols.base import Protocol, resolve_d_hat, run_protocol
from repro.protocols.dag import DirectedAcyclicGraph
from repro.protocols.spanning_tree import SpanningTree
from repro.protocols.wildfire import Wildfire
from repro.queries.query import AggregateQuery
from repro.semantics.oracle import Oracle
from repro.simulation.churn import uniform_failure_schedule
from repro.topology.base import Topology
from repro.workloads.values import zipf_values


@dataclass(frozen=True)
class ValiditySweepRow:
    """One (protocol, R) point of a Figure 7/8/9 style plot."""

    protocol: str
    departures: int
    value: TrialStats
    oracle_lower: TrialStats
    oracle_upper: TrialStats
    fraction_valid: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "R": self.departures,
            "value_mean": round(self.value.mean, 2),
            "value_ci": round(self.value.ci, 2),
            "oracle_lower": round(self.oracle_lower.mean, 2),
            "oracle_upper": round(self.oracle_upper.mean, 2),
            "valid_fraction": round(self.fraction_valid, 2),
        }


def default_protocols(dag_parents: Sequence[int] = (2, 3)) -> List[Protocol]:
    """The protocol line-up of the paper's validity figures."""
    protocols: List[Protocol] = [Wildfire(), SpanningTree()]
    for k in dag_parents:
        protocols.append(DirectedAcyclicGraph(num_parents=k))
    return protocols


def run_validity_sweep(
    topology: Topology,
    query_kind: str,
    departures: Sequence[int],
    protocols: Optional[Sequence[Protocol]] = None,
    values: Optional[Sequence[float]] = None,
    querying_host: int = 0,
    num_trials: int = 3,
    fm_repetitions: int = 16,
    d_hat: Optional[int] = None,
    delta: float = 1.0,
    seed: int = 0,
    sketch_epsilon: float = 0.5,
) -> List[ValiditySweepRow]:
    """Run the churn sweep and return one row per (protocol, R) point.

    Args:
        topology: the network to evaluate on (Gnutella-like for Figs. 7-8,
            Grid for Fig. 9).
        query_kind: ``"count"`` or ``"sum"`` in the paper's figures.
        departures: the R values to sweep (paper: 256 ... 4096).
        protocols: protocols to compare; defaults to WILDFIRE, SPANNINGTREE
            and DAG with k = 2 and k = 3.
        values: per-host attribute values; Zipf [10, 500] when omitted.
        querying_host: the querying host (never fails, as in the paper).
        num_trials: independent trials per point (paper: 10).
        fm_repetitions: FM repetitions for sketch-based combiners.
        d_hat: stable-diameter overestimate; estimated when omitted.
        delta: per-hop message delay.
        seed: base RNG seed.
        sketch_epsilon: multiplicative slack used when judging validity of
            protocols whose answers are FM estimates (Approximate Single-Site
            Validity); exact-combiner protocols are judged with zero slack.
    """
    if values is None:
        values = zipf_values(topology.num_hosts, seed=seed)
    protocols = list(protocols) if protocols is not None else default_protocols()
    oracle = Oracle(topology, values, querying_host)
    query = AggregateQuery.of(query_kind)
    resolved_d_hat = resolve_d_hat(topology, d_hat, seed=seed)
    horizon = 2.0 * resolved_d_hat * delta

    rows: List[ValiditySweepRow] = []
    for num_departures in departures:
        per_protocol_values: Dict[str, List[float]] = {p.name: [] for p in protocols}
        per_protocol_valid: Dict[str, int] = {p.name: 0 for p in protocols}
        lower_samples: List[float] = []
        upper_samples: List[float] = []
        for trial in range(num_trials):
            trial_seed = seed + 131 * trial + num_departures
            # One failure schedule per trial, shared by every protocol, with
            # the R departures spread uniformly over the query interval.
            churn = uniform_failure_schedule(
                candidates=range(topology.num_hosts),
                num_failures=min(num_departures, topology.num_hosts - 1),
                start=0.5,
                end=max(1.0, horizon - 0.5),
                seed=trial_seed,
                protect=[querying_host],
            )
            bounds = oracle.bounds(query_kind, churn, horizon=horizon)
            lower_samples.append(bounds.lower_value)
            upper_samples.append(bounds.upper_value)
            for protocol in protocols:
                result = run_protocol(
                    protocol=protocol,
                    topology=topology,
                    values=values,
                    query=query,
                    querying_host=querying_host,
                    d_hat=resolved_d_hat,
                    delta=delta,
                    churn=churn,
                    seed=trial_seed,
                    repetitions=fm_repetitions,
                )
                declared = result.value if result.value is not None else 0.0
                per_protocol_values[protocol.name].append(declared)
                combiner = protocol.default_combiner(query, repetitions=fm_repetitions)
                epsilon = sketch_epsilon if combiner.duplicate_insensitive and \
                    query_kind.lower() in ("count", "sum", "avg", "average") else 0.0
                if oracle.is_valid(declared, query_kind, churn,
                                   horizon=result.termination_time, epsilon=epsilon):
                    per_protocol_valid[protocol.name] += 1

        lower_stats = aggregate_trials(lower_samples)
        upper_stats = aggregate_trials(upper_samples)
        for protocol in protocols:
            rows.append(
                ValiditySweepRow(
                    protocol=protocol.name,
                    departures=num_departures,
                    value=aggregate_trials(per_protocol_values[protocol.name]),
                    oracle_lower=lower_stats,
                    oracle_upper=upper_stats,
                    fraction_valid=per_protocol_valid[protocol.name] / num_trials,
                )
            )
    return rows
