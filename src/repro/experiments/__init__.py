"""Experiment harness: one driver per table/figure of the paper.

Every driver accepts a scale/size parameter so the same code runs both the
fast, scaled-down configurations used in the benchmark suite and the
paper-scale configurations (see EXPERIMENTS.md for the recorded outputs).
"""

from repro.experiments.runner import TrialStats, aggregate_trials, run_trials
from repro.experiments.tables import format_table
from repro.experiments.accuracy import run_accuracy_experiment
from repro.experiments.validity_sweep import ValiditySweepRow, run_validity_sweep
from repro.experiments.communication import (
    run_communication_cost_experiment,
    run_grid_communication_experiment,
)
from repro.experiments.computation import run_computation_cost_experiment
from repro.experiments.time_cost import (
    run_messages_per_instant_experiment,
    run_time_cost_experiment,
)
from repro.experiments.badcase import run_theorem_44_experiment
from repro.experiments.capture_recapture import run_capture_recapture_experiment
from repro.experiments.delay_sweep import DelaySweepRow, run_delay_sweep
from repro.experiments.scale_bench import (
    run_scale_benchmark,
    run_scale_sweep,
    run_service_benchmark,
)
from repro.experiments.query_mix import run_query_mix
from repro.experiments.figures import (
    FIGURES,
    figure_spec,
    run_figure,
    run_figure_matrix,
)

__all__ = [
    "TrialStats",
    "run_trials",
    "aggregate_trials",
    "format_table",
    "run_accuracy_experiment",
    "run_validity_sweep",
    "ValiditySweepRow",
    "run_communication_cost_experiment",
    "run_grid_communication_experiment",
    "run_computation_cost_experiment",
    "run_time_cost_experiment",
    "run_messages_per_instant_experiment",
    "run_theorem_44_experiment",
    "run_capture_recapture_experiment",
    "DelaySweepRow",
    "run_delay_sweep",
    "run_scale_benchmark",
    "run_scale_sweep",
    "run_service_benchmark",
    "run_query_mix",
    "FIGURES",
    "figure_spec",
    "run_figure",
    "run_figure_matrix",
]
