"""Figure 6: accuracy of the FM count and sum operators.

The paper draws a set M of Zipf-distributed elements in [10, 500] with
|M| in {2^10, 2^12, 2^14}, runs the duplicate-insensitive count and sum
operators, and plots the accuracy ratio (estimate / truth) against the
number of sketch repetitions c.  The ratio converges to 1 quickly, with
c ~= 8 already giving good estimates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.runner import TrialStats, aggregate_trials
from repro.sketches.fm import FMSketch
from repro.workloads.values import zipf_values


@dataclass(frozen=True)
class AccuracyRow:
    """One point of the Figure 6 curves."""

    operator: str
    set_size: int
    repetitions: int
    accuracy_ratio: TrialStats

    def as_dict(self) -> Dict[str, object]:
        return {
            "operator": self.operator,
            "|M|": self.set_size,
            "c": self.repetitions,
            "ratio_mean": round(self.accuracy_ratio.mean, 4),
            "ratio_ci": round(self.accuracy_ratio.ci, 4),
        }


def _count_estimate(set_size: int, repetitions: int, rng: random.Random) -> float:
    sketch = FMSketch.empty(repetitions)
    for _ in range(set_size):
        sketch = sketch.merge(FMSketch.for_new_element(repetitions, rng))
    return sketch.estimate() / set_size


def _sum_estimate(values: Sequence[int], repetitions: int, rng: random.Random) -> float:
    sketch = FMSketch.empty(repetitions)
    for value in values:
        sketch = sketch.merge(FMSketch.for_value(value, repetitions, rng))
    truth = sum(values)
    return sketch.estimate() / truth if truth else 1.0


def run_accuracy_experiment(
    set_sizes: Sequence[int] = (2 ** 10, 2 ** 12, 2 ** 14),
    repetitions_sweep: Sequence[int] = (1, 2, 4, 8, 12, 16, 24, 32),
    num_trials: int = 5,
    value_low: int = 10,
    value_high: int = 500,
    seed: int = 0,
    include_sum: bool = True,
) -> List[AccuracyRow]:
    """Regenerate the Figure 6 accuracy curves.

    Args:
        set_sizes: the |M| values to evaluate.
        repetitions_sweep: sketch repetitions c to evaluate.
        num_trials: independent trials per point.
        value_low: smallest attribute value (paper: 10).
        value_high: largest attribute value (paper: 500).
        seed: base RNG seed.
        include_sum: also evaluate the sum operator (the slow part at the
            paper's largest |M|); disable for quick smoke runs.
    """
    rows: List[AccuracyRow] = []
    for set_size in set_sizes:
        for repetitions in repetitions_sweep:
            count_samples = []
            sum_samples = []
            for trial in range(num_trials):
                rng = random.Random(seed + 1000 * trial + set_size + repetitions)
                count_samples.append(_count_estimate(set_size, repetitions, rng))
                if include_sum:
                    values = zipf_values(set_size, low=value_low, high=value_high,
                                         seed=seed + trial)
                    sum_samples.append(_sum_estimate(values, repetitions, rng))
            rows.append(
                AccuracyRow(
                    operator="count",
                    set_size=set_size,
                    repetitions=repetitions,
                    accuracy_ratio=aggregate_trials(count_samples),
                )
            )
            if include_sum:
                rows.append(
                    AccuracyRow(
                        operator="sum",
                        set_size=set_size,
                        repetitions=repetitions,
                        accuracy_ratio=aggregate_trials(sum_samples),
                    )
                )
    return rows
