"""Figure 12: computation-cost distribution on Power-law and Grid.

The computation cost of a host is the number of messages it processes; the
figure plots, for a count query, how many hosts processed each number of
messages.  WILDFIRE's distribution has the same shape as SPANNINGTREE's but
shifted right (2-4x on Power-law/Random), and on Grid the maximum cost is
tens of times higher because every update is re-broadcast to 8 neighbors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.protocols.base import Protocol, resolve_d_hat, run_protocol
from repro.protocols.spanning_tree import SpanningTree
from repro.protocols.wildfire import Wildfire
from repro.topology.base import Topology
from repro.topology.grid import grid_topology
from repro.topology.power_law import power_law_topology
from repro.workloads.values import zipf_values


@dataclass(frozen=True)
class ComputationRow:
    """The computation-cost histogram of one protocol on one topology."""

    protocol: str
    topology: str
    num_hosts: int
    histogram: Dict[int, int]
    max_cost: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "topology": self.topology,
            "|H|": self.num_hosts,
            "max_cost": self.max_cost,
            "median_cost": self.median_cost,
        }

    @property
    def median_cost(self) -> int:
        expanded: List[int] = []
        for cost, hosts in sorted(self.histogram.items()):
            expanded.extend([cost] * hosts)
        if not expanded:
            return 0
        return expanded[len(expanded) // 2]


def _histogram_for(
    protocol: Protocol,
    topology: Topology,
    values: Sequence[float],
    query_kind: str,
    wireless: bool,
    seed: int,
) -> ComputationRow:
    d_hat = resolve_d_hat(topology, None, overestimate_factor=1.2, seed=seed)
    result = run_protocol(
        protocol=protocol,
        topology=topology,
        values=values,
        query=query_kind,
        querying_host=0,
        d_hat=d_hat,
        wireless=wireless,
        seed=seed,
    )
    histogram = result.costs.computation_histogram()
    return ComputationRow(
        protocol=protocol.name,
        topology=topology.name,
        num_hosts=topology.num_hosts,
        histogram=histogram,
        max_cost=result.costs.computation_cost,
    )


def run_computation_cost_experiment(
    power_law_size: int = 1000,
    grid_side: int = 20,
    query_kind: str = "count",
    seed: int = 0,
) -> List[ComputationRow]:
    """Regenerate the Figure 12 computation-cost distributions.

    Args:
        power_law_size: hosts in the Power-law topology (paper: 40K).
        grid_side: side of the square Grid topology (paper: 100).
        query_kind: aggregate to run (the paper uses count).
        seed: base RNG seed.
    """
    rows: List[ComputationRow] = []

    power_law = power_law_topology(power_law_size, seed=seed)
    values = zipf_values(power_law.num_hosts, seed=seed)
    rows.append(_histogram_for(Wildfire(), power_law, values, query_kind,
                               wireless=False, seed=seed))
    rows.append(_histogram_for(SpanningTree(), power_law, values, query_kind,
                               wireless=False, seed=seed))

    grid = grid_topology(grid_side)
    grid_values = zipf_values(grid.num_hosts, seed=seed)
    rows.append(_histogram_for(Wildfire(), grid, grid_values, query_kind,
                               wireless=True, seed=seed))
    rows.append(_histogram_for(SpanningTree(), grid, grid_values, query_kind,
                               wireless=True, seed=seed))
    return rows


def computation_cost_ratio(rows: Sequence[ComputationRow]) -> Dict[str, float]:
    """WILDFIRE / SPANNINGTREE maximum-computation-cost ratio per topology."""
    by_topology: Dict[str, Dict[str, int]] = {}
    for row in rows:
        by_topology.setdefault(row.topology, {})[row.protocol] = row.max_cost
    ratios: Dict[str, float] = {}
    for topology, costs in by_topology.items():
        wildfire = costs.get("wildfire")
        tree = costs.get("spanning-tree")
        if wildfire is not None and tree:
            ratios[topology] = wildfire / tree
    return ratios
