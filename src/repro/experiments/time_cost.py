"""Figure 13: time cost and the per-instant message profile.

Figure 13(a) plots the time cost (longest chain of messages, and for
WILDFIRE the fixed 2 * D_hat * delta declaration time) against network size
on Random topologies for several D_hat overestimates; time cost grows with
D_hat while communication cost does not.

Figure 13(b) plots the number of messages WILDFIRE sends at each time
instant for a count query on the synthetic topologies: traffic peaks around
D * delta and dies out by 2 * D * delta, which explains why overestimating
D_hat wastes time but not messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.protocols.base import Protocol, resolve_d_hat, run_protocol
from repro.protocols.spanning_tree import SpanningTree
from repro.protocols.wildfire import Wildfire
from repro.topology.base import Topology
from repro.topology.grid import grid_topology
from repro.topology.power_law import power_law_topology
from repro.topology.random_graph import random_topology
from repro.workloads.values import zipf_values


@dataclass(frozen=True)
class TimeCostRow:
    """One (protocol/D_hat, network size) time-cost point (Fig. 13a)."""

    label: str
    num_hosts: int
    d_hat: int
    chain_length: int
    declaration_time: float
    messages: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "|H|": self.num_hosts,
            "d_hat": self.d_hat,
            "chain_length": self.chain_length,
            "declared_at": self.declaration_time,
            "messages": self.messages,
        }


@dataclass(frozen=True)
class MessageProfileRow:
    """The per-time-instant message counts of one run (Fig. 13b).

    ``profile`` keys are clock-tick start times (``delta``-wide buckets),
    so the histogram stays well-defined under variable delay models; for
    fixed-delay runs the keys coincide with the raw send instants.
    """

    topology: str
    num_hosts: int
    diameter_estimate: int
    profile: Dict[float, int]

    def peak_time(self) -> float:
        """The instant with the most messages (peaks near D * delta)."""
        if not self.profile:
            return 0.0
        return max(self.profile.items(), key=lambda kv: kv[1])[0]

    def last_active_time(self) -> float:
        """The last instant at which any message was sent."""
        if not self.profile:
            return 0.0
        return max(t for t, count in self.profile.items() if count > 0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "topology": self.topology,
            "|H|": self.num_hosts,
            "diameter": self.diameter_estimate,
            "peak_time": self.peak_time(),
            "last_active": self.last_active_time(),
        }


def run_time_cost_experiment(
    network_sizes: Sequence[int] = (250, 500, 1000),
    d_hat_factors: Sequence[float] = (1.0, 1.5, 2.0),
    query_kind: str = "count",
    avg_degree: float = 5.0,
    seed: int = 0,
) -> List[TimeCostRow]:
    """Regenerate Figure 13(a): time cost versus network size on Random."""
    rows: List[TimeCostRow] = []
    for size in network_sizes:
        topology = random_topology(size, avg_degree=avg_degree, seed=seed)
        values = zipf_values(size, seed=seed)
        base_d_hat = resolve_d_hat(topology, None, overestimate_factor=1.0, seed=seed)
        tree_result = run_protocol(SpanningTree(), topology, values, query_kind,
                                   d_hat=base_d_hat, seed=seed)
        rows.append(
            TimeCostRow(
                label="spanning-tree",
                num_hosts=size,
                d_hat=base_d_hat,
                chain_length=tree_result.costs.time_cost,
                declaration_time=tree_result.termination_time,
                messages=tree_result.costs.communication_cost,
            )
        )
        for factor in d_hat_factors:
            d_hat = max(1, int(round(base_d_hat * factor)))
            result = run_protocol(Wildfire(), topology, values, query_kind,
                                  d_hat=d_hat, seed=seed)
            rows.append(
                TimeCostRow(
                    label=f"wildfire (D_hat={factor:g}x)",
                    num_hosts=size,
                    d_hat=d_hat,
                    chain_length=result.costs.time_cost,
                    declaration_time=result.termination_time,
                    messages=result.costs.communication_cost,
                )
            )
    return rows


def run_messages_per_instant_experiment(
    random_size: int = 1000,
    power_law_size: int = 1000,
    grid_side: int = 20,
    query_kind: str = "count",
    d_hat_factor: float = 2.0,
    seed: int = 0,
) -> List[MessageProfileRow]:
    """Regenerate Figure 13(b): messages per time instant for WILDFIRE."""
    topologies: List[Topology] = [
        random_topology(random_size, avg_degree=5.0, seed=seed),
        power_law_topology(power_law_size, seed=seed),
        grid_topology(grid_side),
    ]
    rows: List[MessageProfileRow] = []
    for topology in topologies:
        values = zipf_values(topology.num_hosts, seed=seed)
        diameter = topology.diameter_estimate(seed=seed)
        d_hat = max(1, int(round(diameter * d_hat_factor)))
        result = run_protocol(Wildfire(), topology, values, query_kind,
                              d_hat=d_hat, seed=seed)
        rows.append(
            MessageProfileRow(
                topology=topology.name,
                num_hosts=topology.num_hosts,
                diameter_estimate=diameter,
                profile=result.costs.messages_per_instant(),
            )
        )
    return rows
