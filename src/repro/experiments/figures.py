"""Registry mapping figure identifiers to their experiment drivers.

Each entry runs a scaled-down version of the corresponding paper figure and
returns a list of dictionaries (one per table row); EXPERIMENTS.md records a
representative output of every entry next to the paper's reported shape.

:func:`figure_spec` and :func:`run_figure_matrix` bridge this registry to
the orchestration subsystem: a figure becomes a declarative
:class:`~repro.orchestration.spec.ExperimentSpec` that can be fanned out
over a worker pool and cached content-addressably.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.orchestration.executor import RunReport
    from repro.orchestration.spec import ExperimentSpec
    from repro.orchestration.store import ResultStore

from repro.experiments.accuracy import run_accuracy_experiment
from repro.experiments.badcase import run_theorem_44_experiment
from repro.experiments.capture_recapture import (
    run_capture_recapture_experiment,
    run_ring_segment_experiment,
)
from repro.experiments.communication import (
    run_communication_cost_experiment,
    run_grid_communication_experiment,
)
from repro.experiments.computation import run_computation_cost_experiment
from repro.experiments.time_cost import (
    run_messages_per_instant_experiment,
    run_time_cost_experiment,
)
from repro.experiments.validity_sweep import run_validity_sweep
from repro.topology.gnutella import gnutella_like_topology
from repro.topology.grid import grid_topology


def _fig06(scale: float = 1.0, seed: int = 0) -> List[Dict[str, Any]]:
    sizes = [max(64, int(s * scale)) for s in (1024, 4096)]
    rows = run_accuracy_experiment(set_sizes=sizes, num_trials=3, seed=seed)
    return [row.as_dict() for row in rows]


def _fig07(scale: float = 1.0, seed: int = 0) -> List[Dict[str, Any]]:
    size = max(200, int(1500 * scale))
    topology = gnutella_like_topology(size, seed=seed)
    departures = [max(2, int(size * f)) for f in (0.01, 0.03, 0.06, 0.10)]
    rows = run_validity_sweep(topology, "count", departures,
                              num_trials=3, seed=seed)
    return [row.as_dict() for row in rows]


def _fig08(scale: float = 1.0, seed: int = 0) -> List[Dict[str, Any]]:
    size = max(200, int(1500 * scale))
    topology = gnutella_like_topology(size, seed=seed)
    departures = [max(2, int(size * f)) for f in (0.01, 0.03, 0.06, 0.10)]
    rows = run_validity_sweep(topology, "sum", departures,
                              num_trials=3, seed=seed)
    return [row.as_dict() for row in rows]


def _fig09(scale: float = 1.0, seed: int = 0) -> List[Dict[str, Any]]:
    side = max(10, int(24 * scale))
    topology = grid_topology(side)
    size = topology.num_hosts
    departures = [max(2, int(size * f)) for f in (0.01, 0.03, 0.06, 0.10)]
    rows = run_validity_sweep(topology, "count", departures,
                              num_trials=3, seed=seed)
    return [row.as_dict() for row in rows]


def _fig10(scale: float = 1.0, seed: int = 0) -> List[Dict[str, Any]]:
    sizes = [max(100, int(s * scale)) for s in (250, 500, 1000)]
    rows = run_communication_cost_experiment(network_sizes=sizes, seed=seed,
                                             gnutella_size=max(200, int(1000 * scale)))
    return [row.as_dict() for row in rows]


def _fig11(scale: float = 1.0, seed: int = 0) -> List[Dict[str, Any]]:
    sides = [max(8, int(s * scale)) for s in (12, 16, 24)]
    rows = run_grid_communication_experiment(grid_sides=sides, seed=seed)
    return [row.as_dict() for row in rows]


def _fig12(scale: float = 1.0, seed: int = 0) -> List[Dict[str, Any]]:
    rows = run_computation_cost_experiment(
        power_law_size=max(200, int(800 * scale)),
        grid_side=max(8, int(16 * scale)),
        seed=seed,
    )
    return [row.as_dict() for row in rows]


def _fig13a(scale: float = 1.0, seed: int = 0) -> List[Dict[str, Any]]:
    sizes = [max(100, int(s * scale)) for s in (250, 500, 1000)]
    rows = run_time_cost_experiment(network_sizes=sizes, seed=seed)
    return [row.as_dict() for row in rows]


def _fig13b(scale: float = 1.0, seed: int = 0) -> List[Dict[str, Any]]:
    rows = run_messages_per_instant_experiment(
        random_size=max(100, int(600 * scale)),
        power_law_size=max(100, int(600 * scale)),
        grid_side=max(8, int(16 * scale)),
        seed=seed,
    )
    return [row.as_dict() for row in rows]


def _thm44(scale: float = 1.0, seed: int = 0) -> List[Dict[str, Any]]:
    cycle = max(10, int(42 * scale))
    if cycle % 2:
        cycle += 1
    return [row.as_dict() for row in run_theorem_44_experiment(cycle_size=cycle, seed=seed)]


def _sec54(scale: float = 1.0, seed: int = 0) -> List[Dict[str, Any]]:
    rows = run_capture_recapture_experiment(
        initial_size=max(300, int(2000 * scale)),
        sample_size=max(60, int(200 * scale)),
        seed=seed,
    )
    ring = run_ring_segment_experiment(
        network_sizes=[max(200, int(s * scale)) for s in (500, 2000)],
        seed=seed,
    )
    return [row.as_dict() for row in rows] + ring


#: Figure id -> (description, driver)
FIGURES: Dict[str, Any] = {
    "fig6": ("Accuracy of FM count and sum vs repetitions c", _fig06),
    "fig7": ("Count query vs churn on Gnutella-like topology", _fig07),
    "fig8": ("Sum query vs churn on Gnutella-like topology", _fig08),
    "fig9": ("Count query vs churn on Grid topology", _fig09),
    "fig10": ("Communication cost vs |H| on Random (+Gnutella)", _fig10),
    "fig11": ("Communication cost vs |H| on Grid (wireless)", _fig11),
    "fig12": ("Computation cost distribution on Power-law and Grid", _fig12),
    "fig13a": ("Time cost vs |H| on Random", _fig13a),
    "fig13b": ("Messages per time instant (WILDFIRE)", _fig13b),
    "thm4.4": ("Best-effort error construction (Theorem 4.4)", _thm44),
    "sec5.4": ("Continuous approximate size estimation", _sec54),
}


def run_figure(figure_id: str, scale: float = 1.0, seed: int = 0) -> List[Dict[str, Any]]:
    """Run one figure's experiment at the given scale and return its rows."""
    if figure_id not in FIGURES:
        raise KeyError(
            f"unknown figure {figure_id!r}; known: {sorted(FIGURES)}"
        )
    _, driver = FIGURES[figure_id]
    return driver(scale=scale, seed=seed)


def figure_spec(
    figure_id: str,
    scale: float = 0.5,
    num_trials: int = 1,
    base_seed: int = 0,
) -> "ExperimentSpec":
    """Wrap a figure as a declarative spec for the orchestration layer."""
    from repro.orchestration.spec import ExperimentSpec

    if figure_id not in FIGURES:
        raise KeyError(
            f"unknown figure {figure_id!r}; known: {sorted(FIGURES)}"
        )
    description, _ = FIGURES[figure_id]
    return ExperimentSpec.create(
        name=description,
        runner="figure",
        axes={"figure": [figure_id], "scale": [scale]},
        num_trials=num_trials,
        base_seed=base_seed,
    )


def run_figure_matrix(
    figure_ids: Sequence[str],
    scale: float = 0.5,
    num_trials: int = 1,
    base_seed: int = 0,
    workers: int = 1,
    store: Optional["ResultStore"] = None,
    force: bool = False,
) -> Dict[str, "RunReport"]:
    """Run several figures' trial matrices through the orchestration layer.

    All figures' pending trials share one worker pool, so ``workers``
    parallelism spans figures as well as trials.  Results are bit-identical
    for any worker count.  Note that each trial's driver seed is *derived*
    from the spec hash, ``base_seed``, and the trial index (see
    :func:`repro.orchestration.spec.derive_trial_seed`), not passed through
    verbatim -- to reproduce one trial with :func:`run_figure` directly,
    take its seed from the report (or ``spec.trials()``).
    """
    from repro.orchestration.executor import run_specs

    figure_ids = list(dict.fromkeys(figure_ids))
    specs = [
        figure_spec(figure_id, scale=scale, num_trials=num_trials,
                    base_seed=base_seed)
        for figure_id in figure_ids
    ]
    reports = run_specs(specs, workers=workers, store=store, force=force)
    return dict(zip(figure_ids, reports))
