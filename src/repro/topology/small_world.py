"""Small-world (Watts-Strogatz style) topologies.

Not used directly in the paper's figures, but the paper leans on the
small-world phenomenon (Section 3.2) to argue that diameters stay small as
networks grow; this generator lets the test suite and ablation benches
exercise that regime explicitly.
"""

from __future__ import annotations

import random
from typing import List, Set

from repro.topology.base import Topology, ensure_connected


def small_world_topology(
    num_hosts: int,
    nearest_neighbors: int = 4,
    rewire_probability: float = 0.1,
    seed: int = 0,
    name: str = "small-world",
) -> Topology:
    """Generate a Watts-Strogatz small-world topology.

    Hosts start on a ring, each connected to its ``nearest_neighbors``
    closest ring neighbors; each edge is then rewired to a random endpoint
    with probability ``rewire_probability``.

    Args:
        num_hosts: number of hosts.
        nearest_neighbors: even number of ring neighbors per host.
        rewire_probability: probability of rewiring each ring edge.
        seed: RNG seed.
        name: label stored on the topology.
    """
    if num_hosts <= 0:
        raise ValueError("num_hosts must be positive")
    if nearest_neighbors < 2 or nearest_neighbors % 2 != 0:
        raise ValueError("nearest_neighbors must be a positive even number")
    if not 0.0 <= rewire_probability <= 1.0:
        raise ValueError("rewire_probability must be in [0, 1]")

    rng = random.Random(seed)
    k = min(nearest_neighbors, num_hosts - 1)
    adjacency: List[Set[int]] = [set() for _ in range(num_hosts)]

    half = k // 2
    for host in range(num_hosts):
        for offset in range(1, half + 1):
            other = (host + offset) % num_hosts
            if other != host:
                adjacency[host].add(other)
                adjacency[other].add(host)

    # Rewire each "forward" ring edge with the given probability.
    for host in range(num_hosts):
        for offset in range(1, half + 1):
            other = (host + offset) % num_hosts
            if other == host or other not in adjacency[host]:
                continue
            if rng.random() < rewire_probability:
                candidates = [
                    c for c in range(num_hosts)
                    if c != host and c not in adjacency[host]
                ]
                if not candidates:
                    continue
                new_other = rng.choice(candidates)
                adjacency[host].discard(other)
                adjacency[other].discard(host)
                adjacency[host].add(new_other)
                adjacency[new_other].add(host)

    ensure_connected(adjacency, rng)

    return Topology(
        adjacency=adjacency,
        name=name,
        metadata={
            "generator": "small_world",
            "num_hosts": num_hosts,
            "nearest_neighbors": nearest_neighbors,
            "rewire_probability": rewire_probability,
            "seed": seed,
        },
    )
