"""Power-law topologies.

The paper's "Power-law" topology has a degree distribution with exponent
gamma ~= 2.9 (Barabasi-Albert style scale-free network).  We generate it
with a preferential-attachment process followed by a light degree-sequence
adjustment so that small networks still show the heavy tail.
"""

from __future__ import annotations

import random
from typing import List, Set

from repro.topology.base import Topology, ensure_connected


def power_law_topology(
    num_hosts: int,
    gamma: float = 2.9,
    min_degree: int = 2,
    seed: int = 0,
    connected: bool = True,
    name: str = "power-law",
) -> Topology:
    """Generate a scale-free topology via preferential attachment.

    Preferential attachment with ``m = min_degree`` new edges per arriving
    host produces a degree distribution with a power-law tail whose exponent
    is close to 3; for the paper's purposes (heavy-tailed degrees, small
    diameter, presence of hubs) this matches the gamma = 2.9 topology.

    Args:
        num_hosts: number of hosts.
        gamma: nominal exponent (recorded in metadata; the attachment process
            itself yields an exponent near 3 regardless).
        min_degree: edges attached by each arriving host.
        seed: RNG seed.
        connected: stitch stray components (rarely needed).
        name: label stored on the topology.
    """
    if num_hosts <= 0:
        raise ValueError("num_hosts must be positive")
    if min_degree < 1:
        raise ValueError("min_degree must be at least 1")

    rng = random.Random(seed)
    m = min(min_degree, max(1, num_hosts - 1))
    adjacency: List[Set[int]] = [set() for _ in range(num_hosts)]

    # Seed clique of m+1 hosts so early arrivals have somewhere to attach.
    seed_size = min(m + 1, num_hosts)
    for a in range(seed_size):
        for b in range(a + 1, seed_size):
            adjacency[a].add(b)
            adjacency[b].add(a)

    # Repeated-targets list implements preferential attachment: each host id
    # appears once per incident edge, so sampling uniformly from the list is
    # sampling proportionally to degree.
    repeated_targets: List[int] = []
    for host in range(seed_size):
        repeated_targets.extend([host] * max(1, len(adjacency[host])))

    for new_host in range(seed_size, num_hosts):
        chosen: Set[int] = set()
        guard = 0
        while len(chosen) < m and guard < 50 * m:
            guard += 1
            target = rng.choice(repeated_targets)
            if target != new_host:
                chosen.add(target)
        for target in chosen:
            adjacency[new_host].add(target)
            adjacency[target].add(new_host)
            repeated_targets.append(target)
            repeated_targets.append(new_host)

    if connected:
        ensure_connected(adjacency, rng)

    return Topology.from_generator(
        adjacency,
        name,
        "power_law",
        num_hosts=num_hosts,
        gamma=gamma,
        min_degree=min_degree,
        seed=seed,
    )
