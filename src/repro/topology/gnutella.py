"""Gnutella-like overlay topologies.

The paper uses a 39,046-host topology obtained from a crawl of the Gnutella
network (DSS Clip2).  That crawl is not available offline, so we generate a
synthetic stand-in calibrated to the published measurements of the 2001
Gnutella overlay (Ripeanu et al.):

* heavy-tailed degree distribution with many degree-1/2 leaves and a small
  number of high-degree ultrapeer-like hosts,
* average degree around 3.4,
* small diameter (around 12 at 40k hosts),
* a connected overlay.

The generator combines a preferential-attachment core (the ultrapeer
backbone) with a large fringe of low-degree leaves attached to the core,
which reproduces those structural properties; the experiments depend only on
them (degree distribution, diameter, connectivity under random removal).
"""

from __future__ import annotations

import random
from typing import List, Set

from repro.topology.base import Topology, ensure_connected


def gnutella_like_topology(
    num_hosts: int = 39046,
    core_fraction: float = 0.3,
    core_degree: int = 4,
    seed: int = 0,
    name: str = "gnutella",
) -> Topology:
    """Generate a Gnutella-like overlay.

    Args:
        num_hosts: total number of hosts (defaults to the crawl size).
        core_fraction: fraction of hosts forming the well-connected core.
        core_degree: attachment degree inside the core.
        seed: RNG seed.
        name: label stored on the topology.
    """
    if num_hosts <= 0:
        raise ValueError("num_hosts must be positive")
    if not 0.0 < core_fraction <= 1.0:
        raise ValueError("core_fraction must be in (0, 1]")
    if core_degree < 1:
        raise ValueError("core_degree must be at least 1")

    rng = random.Random(seed)
    core_size = max(2, int(num_hosts * core_fraction))
    core_size = min(core_size, num_hosts)
    adjacency: List[Set[int]] = [set() for _ in range(num_hosts)]

    # --- Core: preferential attachment among the first core_size hosts.
    m = min(core_degree, core_size - 1)
    seed_size = m + 1
    for a in range(min(seed_size, core_size)):
        for b in range(a + 1, min(seed_size, core_size)):
            adjacency[a].add(b)
            adjacency[b].add(a)
    repeated: List[int] = []
    for host in range(min(seed_size, core_size)):
        repeated.extend([host] * max(1, len(adjacency[host])))
    for new_host in range(seed_size, core_size):
        chosen: Set[int] = set()
        guard = 0
        while len(chosen) < m and guard < 50 * m:
            guard += 1
            target = rng.choice(repeated)
            if target != new_host:
                chosen.add(target)
        for target in chosen:
            adjacency[new_host].add(target)
            adjacency[target].add(new_host)
            repeated.append(target)
            repeated.append(new_host)

    # --- Fringe: leaves attach to 1-3 core hosts, biased towards hubs.
    for leaf in range(core_size, num_hosts):
        num_links = 1 + (rng.random() < 0.45) + (rng.random() < 0.15)
        chosen = set()
        guard = 0
        while len(chosen) < num_links and guard < 50:
            guard += 1
            target = rng.choice(repeated)
            if target != leaf:
                chosen.add(target)
        if not chosen:
            chosen.add(rng.randrange(core_size))
        for target in chosen:
            adjacency[leaf].add(target)
            adjacency[target].add(leaf)
            repeated.append(target)

    ensure_connected(adjacency, rng)

    return Topology.from_generator(
        adjacency,
        name,
        "gnutella_like",
        num_hosts=num_hosts,
        core_fraction=core_fraction,
        core_degree=core_degree,
        seed=seed,
        substitutes_for="DSS Clip2 Gnutella crawl (39,046 hosts)",
    )
