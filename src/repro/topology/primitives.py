"""Small deterministic topologies.

These are the constructions used in the paper's proofs (chains for the
Snapshot-Validity impossibility, a cycle with a pendant host for
Theorem 4.4) and simple shapes used throughout the test suite.
"""

from __future__ import annotations

import random
from typing import List, Set

from repro.topology.base import Topology


def chain_topology(num_hosts: int, name: str = "chain") -> Topology:
    """Hosts 0..n-1 arranged in a path: 0 - 1 - 2 - ... - (n-1)."""
    if num_hosts <= 0:
        raise ValueError("num_hosts must be positive")
    adjacency: List[Set[int]] = [set() for _ in range(num_hosts)]
    for host in range(num_hosts - 1):
        adjacency[host].add(host + 1)
        adjacency[host + 1].add(host)
    return Topology(adjacency=adjacency, name=name,
                    metadata={"generator": "chain", "num_hosts": num_hosts})


def ring_topology(num_hosts: int, name: str = "ring") -> Topology:
    """Hosts arranged in a cycle."""
    if num_hosts < 3:
        raise ValueError("a ring needs at least 3 hosts")
    adjacency: List[Set[int]] = [set() for _ in range(num_hosts)]
    for host in range(num_hosts):
        other = (host + 1) % num_hosts
        adjacency[host].add(other)
        adjacency[other].add(host)
    return Topology(adjacency=adjacency, name=name,
                    metadata={"generator": "ring", "num_hosts": num_hosts})


def star_topology(num_leaves: int, name: str = "star") -> Topology:
    """Host 0 at the center connected to ``num_leaves`` leaf hosts."""
    if num_leaves < 1:
        raise ValueError("a star needs at least one leaf")
    num_hosts = num_leaves + 1
    adjacency: List[Set[int]] = [set() for _ in range(num_hosts)]
    for leaf in range(1, num_hosts):
        adjacency[0].add(leaf)
        adjacency[leaf].add(0)
    return Topology(adjacency=adjacency, name=name,
                    metadata={"generator": "star", "num_leaves": num_leaves})


def tree_topology(
    depth: int,
    branching: int = 2,
    name: str = "tree",
) -> Topology:
    """A complete ``branching``-ary tree of the given depth, rooted at 0."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    if branching < 1:
        raise ValueError("branching must be at least 1")
    adjacency: List[Set[int]] = [set()]
    frontier = [0]
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(branching):
                child = len(adjacency)
                adjacency.append(set())
                adjacency[parent].add(child)
                adjacency[child].add(parent)
                next_frontier.append(child)
        frontier = next_frontier
    return Topology(adjacency=adjacency, name=name,
                    metadata={"generator": "tree", "depth": depth,
                              "branching": branching})


def cycle_with_pendant_topology(cycle_size: int, name: str = "cycle-pendant") -> Topology:
    """The Theorem 4.4 construction: a cycle with one pendant host.

    Hosts ``0 .. cycle_size-1`` form a cycle; host ``cycle_size`` hangs off
    the host opposite the querying host (host ``cycle_size // 2``).  Failing
    host 1 right after Broadcast makes SPANNINGTREE lose roughly half of the
    network, demonstrating the unbounded best-effort error.
    """
    if cycle_size < 4:
        raise ValueError("cycle_size must be at least 4")
    adjacency: List[Set[int]] = [set() for _ in range(cycle_size + 1)]
    for host in range(cycle_size):
        other = (host + 1) % cycle_size
        adjacency[host].add(other)
        adjacency[other].add(host)
    pendant = cycle_size
    attach = cycle_size // 2
    adjacency[pendant].add(attach)
    adjacency[attach].add(pendant)
    return Topology(adjacency=adjacency, name=name,
                    metadata={"generator": "cycle_with_pendant",
                              "cycle_size": cycle_size})


def random_tree_topology(num_hosts: int, seed: int = 0, name: str = "random-tree") -> Topology:
    """A uniformly random labelled tree (useful for property-based tests)."""
    if num_hosts <= 0:
        raise ValueError("num_hosts must be positive")
    adjacency: List[Set[int]] = [set() for _ in range(num_hosts)]
    rng = random.Random(seed)
    for host in range(1, num_hosts):
        parent = rng.randrange(host)
        adjacency[host].add(parent)
        adjacency[parent].add(host)
    return Topology(adjacency=adjacency, name=name,
                    metadata={"generator": "random_tree", "num_hosts": num_hosts,
                              "seed": seed})
