"""Network topology generators.

The paper evaluates on four topologies (Section 6.1): a real Gnutella crawl,
a random graph with average degree 5, a power-law graph (gamma ~= 2.9) and a
100x100 sensor grid with 8-neighborhoods.  This package generates all four
(the Gnutella crawl is replaced by a calibrated synthetic stand-in; see
DESIGN.md) plus small deterministic topologies used in the paper's proofs
and in the test suite.
"""

from repro.topology.base import Topology
from repro.topology.random_graph import random_topology
from repro.topology.power_law import power_law_topology
from repro.topology.grid import grid_topology
from repro.topology.gnutella import gnutella_like_topology
from repro.topology.small_world import small_world_topology
from repro.topology.primitives import (
    chain_topology,
    cycle_with_pendant_topology,
    ring_topology,
    star_topology,
    tree_topology,
)

__all__ = [
    "Topology",
    "random_topology",
    "power_law_topology",
    "grid_topology",
    "gnutella_like_topology",
    "small_world_topology",
    "chain_topology",
    "ring_topology",
    "star_topology",
    "tree_topology",
    "cycle_with_pendant_topology",
]
