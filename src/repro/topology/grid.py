"""Sensor-network grid topologies.

The paper's Grid topology places 10,000 hosts on a 100x100 grid; each host
is connected to the hosts in the enclosing 2-unit square, i.e. its (up to)
8 surrounding neighbors (Moore neighborhood).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.topology.base import Topology


def grid_topology(
    rows: int,
    cols: int | None = None,
    neighborhood: str = "moore",
    name: str = "grid",
) -> Topology:
    """Generate a rows x cols sensor grid.

    Args:
        rows: number of grid rows.
        cols: number of grid columns (defaults to ``rows`` for a square grid).
        neighborhood: ``"moore"`` for the paper's 8-neighborhood or
            ``"von_neumann"`` for the 4-neighborhood variant.
        name: label stored on the topology.

    Host ids are assigned row-major: host ``r * cols + c`` sits at (r, c).
    """
    if rows <= 0:
        raise ValueError("rows must be positive")
    cols = rows if cols is None else cols
    if cols <= 0:
        raise ValueError("cols must be positive")
    if neighborhood not in ("moore", "von_neumann"):
        raise ValueError("neighborhood must be 'moore' or 'von_neumann'")

    if neighborhood == "moore":
        offsets: Tuple[Tuple[int, int], ...] = (
            (-1, -1), (-1, 0), (-1, 1),
            (0, -1), (0, 1),
            (1, -1), (1, 0), (1, 1),
        )
    else:
        offsets = ((-1, 0), (1, 0), (0, -1), (0, 1))

    num_hosts = rows * cols
    adjacency: List[Set[int]] = [set() for _ in range(num_hosts)]
    for r in range(rows):
        for c in range(cols):
            host = r * cols + c
            for dr, dc in offsets:
                nr, nc = r + dr, c + dc
                if 0 <= nr < rows and 0 <= nc < cols:
                    adjacency[host].add(nr * cols + nc)

    return Topology.from_generator(
        adjacency,
        name,
        "grid",
        rows=rows,
        cols=cols,
        neighborhood=neighborhood,
    )


def grid_coordinates(host: int, cols: int) -> Tuple[int, int]:
    """Map a host id back to its (row, col) grid coordinates."""
    if cols <= 0:
        raise ValueError("cols must be positive")
    return divmod(host, cols)
