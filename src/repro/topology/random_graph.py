"""Random (Erdos-Renyi style) topologies.

The paper's "Random" topology places an edge between pairs of hosts with
uniform probability such that the average degree is 5.  Sampling all
O(n^2) pairs is wasteful for large n, so we draw the expected number of
edges directly, which yields the same G(n, m) distribution up to duplicate
rejection.
"""

from __future__ import annotations

import random
from typing import List, Set

from repro.topology.base import Topology, ensure_connected


def random_topology(
    num_hosts: int,
    avg_degree: float = 5.0,
    seed: int = 0,
    connected: bool = True,
    name: str = "random",
) -> Topology:
    """Generate a uniform random topology with the requested average degree.

    Args:
        num_hosts: number of hosts ``|H|``.
        avg_degree: target average degree (the paper uses 5).
        seed: RNG seed.
        connected: when True (default), stitch any disconnected components
            together with single extra edges, as the paper's topologies are
            connected.
        name: label stored on the topology.

    Raises:
        ValueError: for non-positive sizes or infeasible degrees.
    """
    if num_hosts <= 0:
        raise ValueError("num_hosts must be positive")
    if avg_degree < 0:
        raise ValueError("avg_degree must be non-negative")
    if num_hosts > 1 and avg_degree > num_hosts - 1:
        raise ValueError("avg_degree cannot exceed num_hosts - 1")

    rng = random.Random(seed)
    target_edges = int(round(num_hosts * avg_degree / 2.0))
    max_edges = num_hosts * (num_hosts - 1) // 2
    target_edges = min(target_edges, max_edges)

    adjacency: List[Set[int]] = [set() for _ in range(num_hosts)]
    edges_added = 0
    attempts = 0
    max_attempts = 20 * target_edges + 100
    while edges_added < target_edges and attempts < max_attempts:
        attempts += 1
        a = rng.randrange(num_hosts)
        b = rng.randrange(num_hosts)
        if a == b or b in adjacency[a]:
            continue
        adjacency[a].add(b)
        adjacency[b].add(a)
        edges_added += 1

    if connected:
        ensure_connected(adjacency, rng)

    return Topology.from_generator(
        adjacency,
        name,
        "random",
        num_hosts=num_hosts,
        avg_degree=avg_degree,
        seed=seed,
    )
