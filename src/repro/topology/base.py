"""Topology container and shared graph utilities."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.simulation.network import DynamicNetwork


@dataclass
class Topology:
    """An immutable description of a network topology.

    Attributes:
        adjacency: neighbor sets indexed by host id.
        name: short human-readable label ("random", "grid", ...).
        metadata: generator parameters (size, degree, seed, ...), kept for
            experiment reports.
    """

    adjacency: List[Set[int]]
    name: str = "topology"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.adjacency)
        for host, neighbors in enumerate(self.adjacency):
            for other in neighbors:
                if other == host:
                    raise ValueError(f"host {host} has a self-loop")
                if not 0 <= other < n:
                    raise ValueError(f"host {host} references unknown host {other}")
                if host not in self.adjacency[other]:
                    raise ValueError(
                        f"asymmetric edge {host}->{other}: topologies must be undirected"
                    )

    @classmethod
    def trusted(
        cls,
        adjacency: List[Set[int]],
        name: str = "topology",
        metadata: Dict[str, object] | None = None,
    ) -> "Topology":
        """Construct without the symmetry/self-loop validation pass.

        For generator-built adjacencies that are symmetric by construction;
        the O(E) validation in ``__post_init__`` is pure overhead at
        100k-node scale.  Takes ownership of ``adjacency``.

        The set rows are packed into tuples, *preserving each set's own
        iteration order*: a 3-4 neighbor ``set`` costs ~200 bytes of hash
        table against ~30 of tuple, which at 100k+ hosts makes the
        topology a first-order RSS cost, while keeping the original order
        leaves every BFS discovery sequence -- and therefore the
        diameter-estimate tie-breaks behind ``d_hat`` that the golden
        snapshots pin -- exactly as it was.  All downstream consumers
        iterate rows or test membership; none mutate them.
        """
        topology = object.__new__(cls)
        topology.adjacency = [
            row if type(row) is tuple else tuple(row) for row in adjacency
        ]
        topology.name = name
        topology.metadata = metadata if metadata is not None else {}
        return topology

    @classmethod
    def from_generator(
        cls,
        adjacency: List[Set[int]],
        name: str,
        generator: str,
        **parameters: object,
    ) -> "Topology":
        """The shared tail of every topology generator.

        Wraps :meth:`trusted` (generator-built adjacencies are symmetric
        by construction) and records the generator id plus its parameters
        in ``metadata`` in one uniform shape, so the per-generator modules
        do not each restate the construction boilerplate.
        """
        metadata: Dict[str, object] = {"generator": generator}
        metadata.update(parameters)
        return cls.trusted(adjacency, name=name, metadata=metadata)

    def __len__(self) -> int:
        return len(self.adjacency)

    @property
    def num_hosts(self) -> int:
        return len(self.adjacency)

    @property
    def num_edges(self) -> int:
        return sum(len(neigh) for neigh in self.adjacency) // 2

    @property
    def average_degree(self) -> float:
        if not self.adjacency:
            return 0.0
        return 2.0 * self.num_edges / self.num_hosts

    def degrees(self) -> List[int]:
        return [len(neigh) for neigh in self.adjacency]

    def edges(self) -> Iterator[Tuple[int, int]]:
        for a, neighbors in enumerate(self.adjacency):
            for b in neighbors:
                if a < b:
                    yield a, b

    def neighbors(self, host: int) -> Set[int]:
        return set(self.adjacency[host])

    # ------------------------------------------------------------------
    # Graph measures
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> Dict[int, int]:
        """Hop distances from ``source`` to every reachable host."""
        distances = {source: 0}
        frontier = deque([source])
        while frontier:
            host = frontier.popleft()
            next_dist = distances[host] + 1
            for other in self.adjacency[host]:
                if other not in distances:
                    distances[other] = next_dist
                    frontier.append(other)
        return distances

    def is_connected(self) -> bool:
        if not self.adjacency:
            return True
        return len(self.bfs_distances(0)) == self.num_hosts

    def largest_component(self) -> Set[int]:
        """Host set of the largest connected component."""
        remaining = set(range(self.num_hosts))
        best: Set[int] = set()
        while remaining:
            source = next(iter(remaining))
            component = set(self.bfs_distances(source))
            remaining -= component
            if len(component) > len(best):
                best = component
        return best

    def diameter_estimate(self, samples: int = 4, seed: int = 0) -> int:
        """Double-sweep BFS estimate of the diameter (exact on trees).

        The estimate is deterministic for a given ``(samples, seed)`` and
        the topology is immutable, so results are memoised -- experiment
        drivers re-run protocols on one topology many times and the BFS
        sweeps would otherwise dominate small-run wall time.
        """
        import random

        if self.num_hosts == 0:
            return 0
        cache: Dict[Tuple[int, int], int] = self.__dict__.setdefault(
            "_diameter_cache", {})
        key = (samples, seed)
        cached = cache.get(key)
        if cached is not None:
            return cached
        rng = random.Random(seed)
        best = 0
        hosts = list(range(self.num_hosts))
        for _ in range(max(1, samples)):
            start = rng.choice(hosts)
            dist = self.bfs_distances(start)
            if not dist:
                continue
            far_host, far_dist = max(dist.items(), key=lambda kv: kv[1])
            best = max(best, far_dist)
            second = self.bfs_distances(far_host)
            if second:
                best = max(best, max(second.values()))
        cache[key] = best
        return best

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_network(self) -> DynamicNetwork:
        """Instantiate a fresh :class:`DynamicNetwork` with this topology."""
        # The network packs the rows into its CSR buffers without aliasing
        # them, so the topology's own sets can be handed over directly --
        # no per-host set copy even at million-host scale.
        return DynamicNetwork(self.adjacency, validate=False, copy=False)

    def to_networkx(self):  # pragma: no cover - convenience only
        """Return a ``networkx.Graph`` view (requires networkx)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_hosts))
        graph.add_edges_from(self.edges())
        return graph

    @classmethod
    def from_edges(
        cls,
        num_hosts: int,
        edges: Iterable[Tuple[int, int]],
        name: str = "topology",
        metadata: Dict[str, object] | None = None,
    ) -> "Topology":
        adjacency: List[Set[int]] = [set() for _ in range(num_hosts)]
        for a, b in edges:
            if a == b:
                continue
            adjacency[a].add(b)
            adjacency[b].add(a)
        return cls(adjacency=adjacency, name=name, metadata=metadata or {})


def ensure_connected(adjacency: List[Set[int]], rng) -> None:
    """Patch ``adjacency`` in place so the graph is connected.

    Generators occasionally produce a few isolated hosts or small secondary
    components; the paper's topologies are connected, so we stitch components
    together with single random edges (a negligible perturbation).
    """
    n = len(adjacency)
    if n == 0:
        return
    seen: Set[int] = set()
    components: List[List[int]] = []
    for start in range(n):
        if start in seen:
            continue
        component = [start]
        seen.add(start)
        frontier = deque([start])
        while frontier:
            host = frontier.popleft()
            for other in adjacency[host]:
                if other not in seen:
                    seen.add(other)
                    component.append(other)
                    frontier.append(other)
        components.append(component)
    components.sort(key=len, reverse=True)
    main = components[0]
    for component in components[1:]:
        a = rng.choice(main)
        b = rng.choice(component)
        adjacency[a].add(b)
        adjacency[b].add(a)
        main.extend(component)
