"""Section 5.4 benchmark: continuous approximate size estimation."""

from conftest import BENCH_SEED, run_once

from repro.experiments.capture_recapture import (
    run_capture_recapture_experiment,
    run_ring_segment_experiment,
)
from repro.experiments.tables import format_table


def test_capture_recapture_size_estimation(benchmark):
    rows = run_once(
        benchmark,
        run_capture_recapture_experiment,
        initial_size=3000,
        num_intervals=12,
        departure_rate=0.04,
        arrival_rate=0.02,
        sample_size=300,
        seed=BENCH_SEED,
    )
    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Section 5.4: capture-recapture size estimates"))

    assert len(rows) >= 8
    mean_error = sum(r.relative_error for r in rows) / len(rows)
    assert mean_error < 0.25
    benchmark.extra_info["mean_relative_error"] = round(mean_error, 3)


def test_ring_segment_size_estimation(benchmark):
    rows = run_once(
        benchmark,
        run_ring_segment_experiment,
        network_sizes=(500, 2000, 8000),
        sample_size=150,
        num_trials=5,
        seed=BENCH_SEED,
    )
    print()
    print(format_table(rows, title="Section 5.4: ring-segment size estimates"))
    for row in rows:
        assert row["mean_relative_error"] < 0.5
    benchmark.extra_info["errors"] = {str(r["|H|"]): r["mean_relative_error"]
                                      for r in rows}
