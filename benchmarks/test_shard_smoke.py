"""CI smoke for the sharded execution lane.

A fast end-to-end differential of ``--lane sharded``: one 500-host
WILDFIRE count cell with churn, run on the executable-spec python lane
and on the sharded lane at 2 worker processes, asserting the full
bit-identity contract (declared value, cost fingerprint, declaration
time) plus actual engagement (a silent fallback to the spec loop would
pass the differential vacuously).  The comparison report is written
next to the committed benchmarks (``SHARD_smoke.out.json``, gitignored)
so CI can upload it as an artifact; override the path with
``REPRO_SHARD_OUT``.
"""

from __future__ import annotations

import json
import os
import time

NUM_HOSTS = 500
SEED = 23
SHARDS = 2

OUT_PATH = os.environ.get(
    "REPRO_SHARD_OUT",
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 "SHARD_smoke.out.json"))


def _run(lane, shards=1):
    from repro.protocols.base import run_protocol
    from repro.protocols.wildfire import Wildfire
    from repro.simulation.churn import uniform_failure_schedule
    from repro.topology.random_graph import random_topology
    from repro.workloads.values import uniform_values

    topology = random_topology(NUM_HOSTS, avg_degree=4.0, seed=SEED)
    values = uniform_values(NUM_HOSTS, low=1, high=50, seed=SEED)
    churn = uniform_failure_schedule(
        candidates=list(range(NUM_HOSTS)), num_failures=10,
        start=0.5, end=6.0, seed=SEED, protect=[0])
    started = time.perf_counter()
    result = run_protocol(Wildfire(), topology, values, "count",
                          querying_host=0, churn=churn, seed=SEED,
                          stats="streaming", lane=lane, shards=shards)
    elapsed = time.perf_counter() - started
    return result, {
        "value": result.value,
        "cost_fingerprint": result.costs.fingerprint(),
        "declared_at": result.finished_at,
        "messages": result.costs.messages_sent,
    }, round(elapsed, 4)


def test_sharded_smoke_differential():
    from repro.simulation import sharded

    _, python_digest, python_seconds = _run("python")
    before = sharded.engagements
    result, shard_digest, shard_seconds = _run("sharded", shards=SHARDS)
    assert sharded.engagements == before + 1, (
        f"sharded lane fell back: {sharded.last_fallback_reason}")
    assert shard_digest == python_digest

    info = result.extra["sharded"]
    assert info["shards"] == SHARDS
    assert len(info["workers"]) == SHARDS

    report = {
        "hosts": NUM_HOSTS,
        "seed": SEED,
        "shards": SHARDS,
        "python": dict(python_digest, run_seconds=python_seconds),
        "sharded": dict(shard_digest, run_seconds=shard_seconds),
        "bit_identical": shard_digest == python_digest,
        "worker_metrics": info["workers"],
        "bounds": info["bounds"],
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"\nshard smoke: value {shard_digest['value']:.2f}, "
          f"{shard_digest['messages']} messages, python "
          f"{python_seconds}s vs sharded x{SHARDS} {shard_seconds}s, "
          f"bit-identical across lanes")
