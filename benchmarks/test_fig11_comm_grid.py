"""Figure 11 benchmark: communication cost on the wireless sensor grid."""

from conftest import BENCH_SEED, run_once

from repro.experiments.communication import run_grid_communication_experiment
from repro.experiments.tables import format_table


def test_fig11_communication_cost_grid(benchmark):
    rows = run_once(
        benchmark,
        run_grid_communication_experiment,
        grid_sides=(12, 16, 20),
        query_kinds=("count", "max", "min"),
        seed=BENCH_SEED,
    )
    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Figure 11: communication cost on Grid (wireless)"))

    for side in (12, 16, 20):
        size = side * side
        by_label = {r.label: r.messages for r in rows if r.num_hosts == size}
        # Count pays the full price of validity...
        assert by_label["wildfire/count"] > by_label["spanning-tree/count"]
        # ...while early aggregation makes min/max much cheaper than count,
        # in line with the paper's observation that min can even undercut
        # the spanning tree.
        assert by_label["wildfire/min"] < by_label["wildfire/count"]
        assert by_label["wildfire/max"] < by_label["wildfire/count"]

    largest = {r.label: r.messages for r in rows if r.num_hosts == 400}
    benchmark.extra_info["count_ratio_at_400"] = round(
        largest["wildfire/count"] / largest["spanning-tree/count"], 2)
    benchmark.extra_info["min_ratio_at_400"] = round(
        largest["wildfire/min"] / largest["spanning-tree/count"], 2)
