"""Figure 8 benchmark: sum query vs churn on the Gnutella-like topology."""

from conftest import BENCH_SEED, run_once

from repro.experiments.tables import format_table
from repro.experiments.validity_sweep import run_validity_sweep
from repro.topology.gnutella import gnutella_like_topology


def test_fig08_sum_on_gnutella(benchmark):
    topology = gnutella_like_topology(800, seed=BENCH_SEED)
    departures = [8, 40, 80]

    rows = run_once(
        benchmark,
        run_validity_sweep,
        topology,
        "sum",
        departures,
        num_trials=2,
        fm_repetitions=24,
        sketch_epsilon=0.75,
        seed=BENCH_SEED + 1,
    )
    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Figure 8: sum vs churn (Gnutella-like, 800 hosts)"))

    wildfire = [r for r in rows if r.protocol == "wildfire"]
    tree = [r for r in rows if r.protocol == "spanning-tree"]
    valid_fraction = sum(r.fraction_valid for r in wildfire) / len(wildfire)
    assert valid_fraction >= 0.75
    assert wildfire[-1].value.mean >= 0.6 * wildfire[0].value.mean
    assert tree[-1].value.mean <= tree[0].value.mean * 1.05
    benchmark.extra_info["tree_sum_at_max_churn"] = round(tree[-1].value.mean, 1)
    benchmark.extra_info["oracle_lower_at_max_churn"] = round(tree[-1].oracle_lower.mean, 1)
