"""Figure 9 benchmark: count query vs churn on the sensor grid."""

from conftest import BENCH_SEED, run_once

from repro.experiments.tables import format_table
from repro.experiments.validity_sweep import run_validity_sweep
from repro.topology.grid import grid_topology


def test_fig09_count_on_grid(benchmark):
    topology = grid_topology(20)  # 400 sensors (paper: 100x100)
    departures = [4, 16, 40]

    rows = run_once(
        benchmark,
        run_validity_sweep,
        topology,
        "count",
        departures,
        num_trials=2,
        fm_repetitions=24,
        sketch_epsilon=0.75,
        seed=BENCH_SEED,
    )
    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Figure 9: count vs churn (20x20 grid)"))

    wildfire = [r for r in rows if r.protocol == "wildfire"]
    tree = [r for r in rows if r.protocol == "spanning-tree"]
    valid_fraction = sum(r.fraction_valid for r in wildfire) / len(wildfire)
    assert valid_fraction >= 0.75
    assert wildfire[-1].value.mean >= 0.6 * wildfire[0].value.mean
    # The deep grid spanning tree is especially brittle: by the heaviest
    # churn level its count has dropped well below the oracle lower bound.
    assert tree[-1].value.mean < tree[-1].oracle_lower.mean
    benchmark.extra_info["tree_count_at_max_churn"] = round(tree[-1].value.mean, 1)
    benchmark.extra_info["oracle_lower_at_max_churn"] = round(tree[-1].oracle_lower.mean, 1)
