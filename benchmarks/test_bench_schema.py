"""Schema checks for perf artifacts: the committed trajectory and the
live metrics streams.

The trajectory file (``BENCH_kernel.json``) is append-only across PRs
and both the perf-smoke budget assertions and the README's perf
narrative read it, so a malformed append (a stringified number, a point
without a label, a clobbered reference block) must fail the suite
loudly rather than corrupt the record for every later session.

Metrics-stream artifacts (``*.out.jsonl``, written by ``--metrics-out``
with ``--metrics-interval`` and uploaded from CI) are held to the
writer's framing contract here so a tailing consumer can rely on it:
a ``meta`` header first, then ``sample``/``final`` rows with strictly
increasing ``seq`` and non-decreasing ``elapsed_s``.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
TRAJECTORY_PATH = os.path.join(BENCH_DIR, "BENCH_kernel.json")

#: Fields every trajectory point must carry.
REQUIRED_POINT_FIELDS = {"label": str}

#: Known numeric fields: when present they must be real numbers, never
#: stringified (a silent ``"464.16"`` would break every consumer that
#: compares or plots the trajectory).
NUMERIC_POINT_FIELDS = (
    "wildfire_1k_seconds", "calibration_seconds", "hosts", "queries",
    "answered", "run_seconds", "gen_seconds", "queries_per_second",
    "messages", "messages_per_second", "peak_rss_mb", "accounting_bytes",
    "shards", "value", "d_hat", "computation_cost", "time_cost", "seed",
    "offered_qps", "shed", "deferred", "degraded", "cache_hits",
    "cache_hit_rate", "msgs_per_query", "elapsed_s", "wall_s_per_query",
    "wall_qps", "knee_qps", "capacity_qps",
)

#: Every row of a qps-vs-latency sweep (``run_qps_sweep``) must carry
#: exactly these measurements; a point missing its latency column would
#: silently break the knee comparison across PRs.
QPS_SWEEP_ROW_FIELDS = (
    "offered_qps", "queries", "answered", "shed", "deferred", "degraded",
    "cache_hits", "cache_hit_rate", "messages", "msgs_per_query",
    "elapsed_s", "wall_s_per_query", "wall_qps",
)


def _load():
    with open(TRAJECTORY_PATH) as handle:
        return json.load(handle)


def test_trajectory_top_level_shape():
    payload = _load()
    assert isinstance(payload, dict)
    for key in ("benchmark", "description", "reference", "trajectory"):
        assert key in payload, key
    assert isinstance(payload["benchmark"], str)
    assert isinstance(payload["description"], str)
    reference = payload["reference"]
    assert isinstance(reference, dict)
    for key in ("baseline_pre_rewrite_seconds", "required_speedup",
                "budget_seconds"):
        assert isinstance(reference.get(key), (int, float)), key
    assert isinstance(payload["trajectory"], list)
    assert payload["trajectory"], "the trajectory must never be emptied"


def test_trajectory_points_are_well_formed():
    for index, point in enumerate(_load()["trajectory"]):
        assert isinstance(point, dict), f"point {index} is not an object"
        for key, kind in REQUIRED_POINT_FIELDS.items():
            assert isinstance(point.get(key), kind), (
                f"point {index} ({point.get('label')!r}) needs a "
                f"{kind.__name__} {key!r}")
        for key in NUMERIC_POINT_FIELDS:
            if key in point:
                value = point[key]
                assert isinstance(value, (int, float)), (
                    f"point {index} ({point['label']!r}): {key!r} is "
                    f"{type(value).__name__} {value!r}, expected a number")
        # CLI-appended points nest rows; each row is then held to the
        # same numeric discipline.
        for row in point.get("rows", ()):
            assert isinstance(row, dict)
            for key in NUMERIC_POINT_FIELDS:
                if key in row and row[key] is not None:
                    assert isinstance(row[key], (int, float)), (
                        f"point {index} row field {key!r} is not numeric")
            _check_lane_fields(row, f"point {index}")
            _check_qps_sweep_fields(row, f"point {index}")


def _check_qps_sweep_fields(row, where):
    """A row that claims to be a sweep point carries the full set."""
    if "offered_qps" not in row:
        return
    for key in QPS_SWEEP_ROW_FIELDS:
        assert isinstance(row.get(key), (int, float)), (
            f"{where}: qps-sweep row at offered_qps="
            f"{row['offered_qps']!r} needs numeric {key!r}, got "
            f"{row.get(key)!r}")
    assert isinstance(row.get("share_floods"), bool), (
        f"{where}: qps-sweep rows must flag share_floods")


def _check_lane_fields(row, where):
    """Lane-attribution and sharded-block discipline for bench rows."""
    if "lane_used" in row:
        assert isinstance(row["lane_used"], str), (
            f"{where}: lane_used must be a string")
    if row.get("fallback_reason") is not None:
        assert isinstance(row["fallback_reason"], str), (
            f"{where}: fallback_reason must be a string or null")
        assert row.get("lane_used") != row.get("lane"), (
            f"{where}: a recorded fallback means lane_used differs "
            f"from the requested lane")
    sharded = row.get("sharded")
    if sharded is None:
        return
    assert isinstance(sharded, dict), f"{where}: sharded block"
    assert isinstance(sharded.get("shards"), int), (
        f"{where}: sharded.shards must be an int")
    timeline = sharded.get("timeline", [])
    assert isinstance(timeline, list), f"{where}: sharded.timeline"
    for sample in timeline:
        assert isinstance(sample, dict)
        for key in ("shard", "epoch", "t", "wall_start", "exchange_s",
                    "compute_s", "barrier_wait_s", "cross_records",
                    "queue_depth"):
            assert isinstance(sample.get(key), (int, float)), (
                f"{where}: timeline sample field {key!r} is "
                f"{sample.get(key)!r}, expected a number")
        assert 0 <= sample["shard"] < sharded["shards"], (
            f"{where}: timeline sample names shard {sample['shard']} "
            f"outside 0..{sharded['shards'] - 1}")


def test_trajectory_labels_are_unique():
    labels = [point["label"] for point in _load()["trajectory"]]
    assert len(labels) == len(set(labels)), (
        "duplicate trajectory labels make points unciteable: "
        f"{sorted(label for label in labels if labels.count(label) > 1)}")


# ----------------------------------------------------------------------
# Live metrics streams (--metrics-out *.jsonl)


def validate_metrics_stream(lines, where="stream"):
    """Assert the JSON Lines framing contract on one metrics stream.

    Reusable from other benchmarks: every line parses, the first is the
    ``meta`` header, every later row is ``sample`` or ``final`` with
    strictly increasing ``seq`` and non-decreasing ``elapsed_s``, and at
    most one ``final`` row sits last.  Returns the parsed rows.
    """
    rows = [json.loads(line) for line in lines if line.strip()]
    assert rows, f"{where}: empty stream"
    head = rows[0]
    assert head.get("type") == "meta", f"{where}: first row is the header"
    assert head.get("stream") == "metrics", f"{where}: stream tag"
    body = rows[1:]
    for index, row in enumerate(body):
        assert row.get("type") in ("sample", "final"), (
            f"{where}: row {index} has type {row.get('type')!r}")
        assert row.get("seq") == index, (
            f"{where}: row {index} carries seq {row.get('seq')!r}")
        assert isinstance(row.get("elapsed_s"), (int, float)), (
            f"{where}: row {index} needs a numeric elapsed_s")
    elapsed = [row["elapsed_s"] for row in body]
    assert elapsed == sorted(elapsed), (
        f"{where}: elapsed_s must be non-decreasing")
    finals = [row for row in body if row["type"] == "final"]
    assert len(finals) <= 1, f"{where}: at most one final row"
    if finals:
        assert body[-1]["type"] == "final", (
            f"{where}: the final row terminates the stream")
    return rows


def test_live_stream_framing_is_valid():
    """The writer's framing, proven on a freshly generated stream."""
    from repro.obs.stream import MetricsStreamWriter

    path = os.path.join(BENCH_DIR, "OBS_stream_schema.out.jsonl")
    with MetricsStreamWriter(path, meta={"command": "schema-check",
                                         "hosts": 0}) as writer:
        writer.sample({"service.queries": 1})
        writer.sample({"service.queries": 2})
        writer.final({"service.queries": 2})
    with open(path) as handle:
        rows = validate_metrics_stream(handle, where=path)
    assert rows[0]["command"] == "schema-check"
    assert [row["type"] for row in rows[1:]] == [
        "sample", "sample", "final"]


def test_collected_stream_artifacts_are_valid():
    """Every ``*.out.jsonl`` left beside the benchmarks (by the CI
    smoke jobs or a local ``--metrics-out`` run) must honour the
    framing; skip when none have been produced yet."""
    streams = sorted(glob.glob(os.path.join(BENCH_DIR, "*.out.jsonl")))
    if not streams:
        pytest.skip("no metrics-stream artifacts present")
    for path in streams:
        with open(path) as handle:
            validate_metrics_stream(handle, where=os.path.basename(path))
