"""Schema check for the committed perf trajectory (BENCH_kernel.json).

The trajectory file is append-only across PRs and both the perf-smoke
budget assertions and the README's perf narrative read it, so a
malformed append (a stringified number, a point without a label, a
clobbered reference block) must fail the suite loudly rather than
corrupt the record for every later session.
"""

from __future__ import annotations

import json
import os

TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_kernel.json")

#: Fields every trajectory point must carry.
REQUIRED_POINT_FIELDS = {"label": str}

#: Known numeric fields: when present they must be real numbers, never
#: stringified (a silent ``"464.16"`` would break every consumer that
#: compares or plots the trajectory).
NUMERIC_POINT_FIELDS = (
    "wildfire_1k_seconds", "calibration_seconds", "hosts", "queries",
    "answered", "run_seconds", "gen_seconds", "queries_per_second",
    "messages", "messages_per_second", "peak_rss_mb", "accounting_bytes",
    "shards", "value", "d_hat", "computation_cost", "time_cost", "seed",
)


def _load():
    with open(TRAJECTORY_PATH) as handle:
        return json.load(handle)


def test_trajectory_top_level_shape():
    payload = _load()
    assert isinstance(payload, dict)
    for key in ("benchmark", "description", "reference", "trajectory"):
        assert key in payload, key
    assert isinstance(payload["benchmark"], str)
    assert isinstance(payload["description"], str)
    reference = payload["reference"]
    assert isinstance(reference, dict)
    for key in ("baseline_pre_rewrite_seconds", "required_speedup",
                "budget_seconds"):
        assert isinstance(reference.get(key), (int, float)), key
    assert isinstance(payload["trajectory"], list)
    assert payload["trajectory"], "the trajectory must never be emptied"


def test_trajectory_points_are_well_formed():
    for index, point in enumerate(_load()["trajectory"]):
        assert isinstance(point, dict), f"point {index} is not an object"
        for key, kind in REQUIRED_POINT_FIELDS.items():
            assert isinstance(point.get(key), kind), (
                f"point {index} ({point.get('label')!r}) needs a "
                f"{kind.__name__} {key!r}")
        for key in NUMERIC_POINT_FIELDS:
            if key in point:
                value = point[key]
                assert isinstance(value, (int, float)), (
                    f"point {index} ({point['label']!r}): {key!r} is "
                    f"{type(value).__name__} {value!r}, expected a number")
        # CLI-appended points nest rows; each row is then held to the
        # same numeric discipline.
        for row in point.get("rows", ()):
            assert isinstance(row, dict)
            for key in NUMERIC_POINT_FIELDS:
                if key in row and row[key] is not None:
                    assert isinstance(row[key], (int, float)), (
                        f"point {index} row field {key!r} is not numeric")


def test_trajectory_labels_are_unique():
    labels = [point["label"] for point in _load()["trajectory"]]
    assert len(labels) == len(set(labels)), (
        "duplicate trajectory labels make points unciteable: "
        f"{sorted(label for label in labels if labels.count(label) > 1)}")
