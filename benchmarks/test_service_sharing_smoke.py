"""CI smoke for the cross-tenant shared-flood cache.

Drives the duplicate-heavy mix (most arrivals are redirected to a tiny
hot pool of identical WILDFIRE floods) over a 500-host Gnutella snapshot
twice -- sharing off, then sharing on -- and asserts the cache's whole
contract at once:

* the cache engages (hit rate > 0) and saves real work (fewer messages);
* every per-query declared value and cost fingerprint is bit-identical
  with sharing on or off, so the service-level determinism digest is too
  (content-derived seeds make the shared answer *the* answer).

The sharing run's report is written next to the committed benchmarks
(``SERVICE_sharing.out.json``, gitignored) so CI uploads it as an
artifact; override the path with ``REPRO_SERVICE_SHARING_OUT``.
"""

from __future__ import annotations

import json
import os

SMOKE_KWARGS = dict(
    num_hosts=500,
    topology="gnutella",
    qps=2.0,
    duration=15.0,
    seed=23,
    stats="streaming",
)

OUT_PATH = os.environ.get(
    "REPRO_SERVICE_SHARING_OUT",
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 "SERVICE_sharing.out.json"))


def test_shared_flood_cache_smoke():
    from repro.experiments.query_mix import run_query_mix
    from repro.workloads.query_mix import duplicate_heavy_mix

    mix = duplicate_heavy_mix(qps=SMOKE_KWARGS["qps"],
                              duration=SMOKE_KWARGS["duration"],
                              max_queries=24)
    solo = run_query_mix(**SMOKE_KWARGS, mix=mix, share_floods=False)
    shared = run_query_mix(**SMOKE_KWARGS, mix=mix, share_floods=True)

    summary = shared["summary"]
    assert summary["queries"] == 24
    assert summary["answered"] == 24

    # The duplicate-heavy mix must actually exercise the cache...
    assert summary["cache_hits"] > 0
    hit_rate = summary["cache_hits"] / summary["queries"]
    assert hit_rate > 0.0
    # ...and subscriptions replace floods, so the substrate carries
    # strictly fewer messages for the same answered load.
    assert summary["messages_sent"] < solo["summary"]["messages_sent"]

    # The correctness half: sharing is invisible per query.  Values and
    # cost fingerprints are bit-identical with the cache on or off
    # (subscriber rows additionally carry their cache_hit annotations).
    assert len(shared["rows"]) == len(solo["rows"])
    for row_off, row_on in zip(solo["rows"], shared["rows"]):
        assert row_off["query_id"] == row_on["query_id"]
        assert row_off["value"] == row_on["value"], row_off["query_id"]
        assert (row_off["cost_fingerprint"] == row_on["cost_fingerprint"]
                ), row_off["query_id"]
    assert (shared["summary"]["determinism_digest"]
            == solo["summary"]["determinism_digest"])

    payload = {
        "shared": shared,
        "solo_summary": solo["summary"],
        "cache_hit_rate": round(hit_rate, 4),
        "messages_saved": (solo["summary"]["messages_sent"]
                           - summary["messages_sent"]),
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"\nsharing smoke: {summary['cache_hits']}/{summary['queries']} "
          f"cache hits ({hit_rate:.0%}), messages "
          f"{solo['summary']['messages_sent']} -> "
          f"{summary['messages_sent']}, digest unchanged "
          f"{summary['determinism_digest'][:12]} (report at {OUT_PATH})")
