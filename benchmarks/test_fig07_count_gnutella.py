"""Figure 7 benchmark: count query vs churn on the Gnutella-like topology."""

from conftest import BENCH_SEED, run_once

from repro.experiments.tables import format_table
from repro.experiments.validity_sweep import run_validity_sweep
from repro.topology.gnutella import gnutella_like_topology


def test_fig07_count_on_gnutella(benchmark):
    topology = gnutella_like_topology(800, seed=BENCH_SEED)
    departures = [8, 24, 48, 80]

    rows = run_once(
        benchmark,
        run_validity_sweep,
        topology,
        "count",
        departures,
        num_trials=2,
        fm_repetitions=24,
        sketch_epsilon=0.75,
        seed=BENCH_SEED,
    )
    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Figure 7: count vs churn (Gnutella-like, 800 hosts)"))

    wildfire = [r for r in rows if r.protocol == "wildfire"]
    tree = [r for r in rows if r.protocol == "spanning-tree"]
    # WILDFIRE remains (approximately) valid at every churn level; the slack
    # reflects the FM estimate's multiplicative noise (Lemma 5.1 only gives a
    # factor-c guarantee, far looser than the 1.75x checked here).
    valid_fraction = sum(r.fraction_valid for r in wildfire) / len(wildfire)
    assert valid_fraction >= 0.75
    # WILDFIRE's declared count stays roughly flat across churn levels while
    # the spanning tree's decays.
    assert wildfire[-1].value.mean >= 0.6 * wildfire[0].value.mean
    assert tree[-1].value.mean <= tree[0].value.mean
    benchmark.extra_info["wildfire_valid_fraction"] = round(valid_fraction, 2)
    benchmark.extra_info["tree_count_at_max_churn"] = round(tree[-1].value.mean, 1)
