"""Figure 12 benchmark: computation-cost distribution on Power-law and Grid."""

from conftest import BENCH_SEED, run_once

from repro.experiments.computation import (
    computation_cost_ratio,
    run_computation_cost_experiment,
)
from repro.experiments.tables import format_table


def test_fig12_computation_cost_distribution(benchmark):
    rows = run_once(
        benchmark,
        run_computation_cost_experiment,
        power_law_size=600,
        grid_side=16,
        query_kind="count",
        seed=BENCH_SEED,
    )
    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Figure 12: per-host computation cost (count query)"))

    ratios = computation_cost_ratio(rows)
    print("WILDFIRE / SPANNINGTREE max computation-cost ratio:",
          {k: round(v, 1) for k, v in ratios.items()})

    # WILDFIRE's hottest host processes several times more messages than the
    # spanning tree's, and the effect is strongest on the dense grid.
    assert ratios["power-law"] >= 1.5
    assert ratios["grid"] >= 4.0
    assert ratios["grid"] >= ratios["power-law"]
    benchmark.extra_info["ratios"] = {k: round(v, 1) for k, v in ratios.items()}
