"""CI smoke for the multi-tenant query service.

A fast end-to-end drive of ``repro serve``'s machinery: 500 hosts, 20
mixed WILDFIRE/tree/DAG queries (one-shot and continuous), streaming
per-query stats -- run TWICE, asserting per-query determinism: every
query's declared value and cost fingerprint must be bit-identical across
the two runs.  The full report of the first run is written next to the
committed benchmarks (``SERVICE_smoke.out.json``, gitignored) so CI can
upload it as an artifact; override the path with ``REPRO_SERVICE_OUT``.
"""

from __future__ import annotations

import json
import os

SMOKE_KWARGS = dict(
    num_hosts=500,
    topology="gnutella",
    qps=2.0,
    duration=15.0,
    seed=23,
    stats="streaming",
    continuous_fraction=0.25,
    max_queries=20,
)

OUT_PATH = os.environ.get(
    "REPRO_SERVICE_OUT",
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 "SERVICE_smoke.out.json"))


def test_serve_smoke_is_deterministic_per_query():
    from repro.experiments.query_mix import run_query_mix

    first = run_query_mix(**SMOKE_KWARGS)
    second = run_query_mix(**SMOKE_KWARGS)

    summary = first["summary"]
    assert summary["queries"] == 20
    assert summary["answered"] == 20
    assert summary["failed"] == 0

    # Per-query determinism: identical values and identical per-query
    # cost attribution, query by query, across independent service runs.
    assert len(first["rows"]) == len(second["rows"])
    for row_a, row_b in zip(first["rows"], second["rows"]):
        assert row_a["query_id"] == row_b["query_id"]
        assert row_a["value"] == row_b["value"], row_a["query_id"]
        assert row_a["cost_fingerprint"] == row_b["cost_fingerprint"], (
            row_a["query_id"])
    assert (summary["determinism_digest"]
            == second["summary"]["determinism_digest"])

    with open(OUT_PATH, "w") as handle:
        json.dump(first, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"\nservice smoke: {summary['answered']}/{summary['queries']} "
          f"queries, {summary['messages_sent']} messages, digest "
          f"{summary['determinism_digest'][:12]} (report at {OUT_PATH})")
