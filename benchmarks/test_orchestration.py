"""Orchestration-layer benchmarks: cold execution versus warm cache.

The cold benchmark measures a figure run routed through the spec ->
executor -> store pipeline; the warm benchmark re-runs the identical spec
against a pre-populated cache and should complete in milliseconds while
returning bit-identical values.
"""

from conftest import BENCH_SEED, run_orchestrated

from repro.orchestration.store import ResultStore

#: A cheap figure keeps the cold run comparable to the other benchmarks.
FIGURE = "fig6"
SCALE = 0.1


def test_orchestrated_figure_cold(benchmark, tmp_path):
    store = ResultStore(tmp_path / "cache")
    report = run_orchestrated(benchmark, FIGURE, scale=SCALE, trials=2,
                              store=store)
    assert report.num_executed == 2
    assert report.num_cached == 0
    assert store.has(report.cache_key)


def test_orchestrated_figure_warm(benchmark, tmp_path):
    store = ResultStore(tmp_path / "cache")
    # Populate the cache outside the timed region.
    from repro.experiments.figures import run_figure_matrix

    cold = run_figure_matrix([FIGURE], scale=SCALE, num_trials=2,
                             base_seed=BENCH_SEED, store=store)[FIGURE]

    report = run_orchestrated(benchmark, FIGURE, scale=SCALE, trials=2,
                              store=store)
    assert report.fully_cached
    assert report.values == cold.values
