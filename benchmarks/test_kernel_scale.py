"""Kernel throughput benchmarks: the batched-ring speedup and 100k scale.

Three locks on the simulation kernel's performance:

* ``test_wildfire_1k_speedup_vs_pre_rewrite_baseline`` -- the 1k-host
  WILDFIRE run must be at least 5x faster than the pre-rewrite kernel's
  recorded baseline (``BENCH_kernel.json``).  A fixed integer-loop
  calibration workload normalises machine speed, so the recorded baseline
  transfers across hosts.
* ``test_perf_smoke_budget`` -- the CI perf smoke: the same run must stay
  inside a generous calibrated budget and fails on a >2x regression.
* ``test_100k_host_run_completes`` -- a beyond-paper 100,000-host
  Gnutella-like WILDFIRE count run completes and declares a sane
  estimate (the paper's own experiments stop at ~39k hosts).

Each benchmark appends its measurement to the ``BENCH_kernel.json``
trajectory (path overridable via ``REPRO_BENCH_OUT``) so CI can upload
the kernel's performance history as an artifact.  Set
``REPRO_BENCH_RELAX=1`` to record without asserting (e.g. on exotic or
heavily shared machines).
"""

from __future__ import annotations

import json
import os
import time

import pytest

BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "BENCH_kernel.json")

#: Seeds match the recorded baseline capture exactly.
TOPOLOGY_SEED = 42
RUN_SEED = 7

_RELAX = os.environ.get("REPRO_BENCH_RELAX") == "1"


def _reference():
    with open(BENCH_JSON) as handle:
        return json.load(handle)


def _calibrate() -> float:
    """Best-of-5 timing of a fixed, allocation-free integer loop.

    The same loop was timed when the baseline was captured; the ratio of
    the two calibrations rescales the recorded baseline to this machine.
    """
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        total = 0
        for i in range(2_000_000):
            total += i & 7
        best = min(best, time.perf_counter() - start)
    return best


def _time_wildfire_1k(repeats: int = 5) -> float:
    """Best-of-N wall time of the 1k-host WILDFIRE count benchmark."""
    from repro.protocols.base import run_protocol
    from repro.protocols.wildfire import Wildfire
    from repro.topology.gnutella import gnutella_like_topology

    topology = gnutella_like_topology(1000, seed=TOPOLOGY_SEED)
    values = [1.0] * topology.num_hosts
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_protocol(Wildfire(), topology, values, "count",
                              seed=RUN_SEED)
        best = min(best, time.perf_counter() - start)
    assert result.value is not None and result.costs.messages_sent > 0
    return best


def _record_trajectory(label: str, **fields) -> None:
    """Append a measurement to a BENCH_kernel trajectory copy.

    Writes next to the committed reference (``BENCH_kernel.out.json``,
    gitignored) so test runs never dirty the tree; CI uploads the copy as
    an artifact.  Override the path with ``REPRO_BENCH_OUT``.
    """
    out_path = os.environ.get(
        "REPRO_BENCH_OUT", BENCH_JSON.replace(".json", ".out.json"))
    try:
        with open(out_path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        payload = _reference()
    payload.setdefault("trajectory", []).append({"label": label, **fields})
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=False)
        handle.write("\n")


@pytest.fixture(scope="module")
def kernel_measurement():
    """One shared (calibration, wildfire-1k) measurement per session."""
    calibration = _calibrate()
    elapsed = _time_wildfire_1k()
    _record_trajectory("pytest perf smoke", wildfire_1k_seconds=round(elapsed, 4),
                       calibration_seconds=round(calibration, 4))
    return calibration, elapsed


def test_wildfire_1k_speedup_vs_pre_rewrite_baseline(kernel_measurement):
    calibration, elapsed = kernel_measurement
    reference = _reference()["reference"]
    # Rescale the recorded pre-rewrite baseline to this machine's speed.
    machine_factor = calibration / reference["baseline_calibration_seconds"]
    adjusted_baseline = reference["baseline_pre_rewrite_seconds"] * machine_factor
    speedup = adjusted_baseline / elapsed
    print(f"\nwildfire-1k: {elapsed:.4f}s, calibrated baseline "
          f"{adjusted_baseline:.4f}s -> speedup {speedup:.2f}x")
    if _RELAX:
        pytest.skip(f"REPRO_BENCH_RELAX=1 (measured {speedup:.2f}x)")
    assert speedup >= reference["required_speedup"], (
        f"kernel speedup {speedup:.2f}x fell below the required "
        f"{reference['required_speedup']}x (measured {elapsed:.4f}s vs "
        f"calibrated pre-rewrite baseline {adjusted_baseline:.4f}s)"
    )


def test_perf_smoke_budget(kernel_measurement):
    """CI perf smoke: fail on a >2x regression against a generous budget."""
    calibration, elapsed = kernel_measurement
    reference = _reference()["reference"]
    machine_factor = calibration / reference["baseline_calibration_seconds"]
    threshold = (reference["budget_seconds"]
                 * reference["budget_regression_factor"] * machine_factor)
    print(f"\nwildfire-1k: {elapsed:.4f}s, calibrated smoke threshold "
          f"{threshold:.4f}s")
    if _RELAX:
        pytest.skip(f"REPRO_BENCH_RELAX=1 (measured {elapsed:.4f}s)")
    assert elapsed <= threshold, (
        f"perf smoke: wildfire-1k took {elapsed:.4f}s, exceeding the "
        f"calibrated budget of {threshold:.4f}s "
        f"({reference['budget_seconds']}s x "
        f"{reference['budget_regression_factor']} x machine factor "
        f"{machine_factor:.2f})"
    )


def test_10k_host_run_is_quick():
    """A 10k-host run (quarter of the paper's crawl) finishes in seconds."""
    from repro.experiments.scale_bench import run_scale_benchmark

    row = run_scale_benchmark(10_000, topology="gnutella",
                              protocol="wildfire", aggregate="count",
                              seed=1)
    print(f"\n10k hosts: {row['run_seconds']}s, {row['messages']} messages "
          f"({row['messages_per_second']}/s)")
    assert row["hosts"] == 10_000
    assert row["messages"] > 0
    assert 0 < row["value"] < float("inf")
    _record_trajectory("pytest 10k scale", **{
        k: row[k] for k in ("hosts", "run_seconds", "messages",
                            "messages_per_second")})


def test_100k_host_run_completes():
    """Beyond-paper scale: 100,000 hosts, one WILDFIRE count query.

    The paper's largest network is the 39k-host Gnutella crawl; this run
    is ~2.5x that.  Completion (no runaway event growth, no quadratic
    blowup in the network structures) plus a sane estimate is the
    assertion; the wall time lands in the trajectory for trend-watching.
    """
    from repro.experiments.scale_bench import run_scale_benchmark

    row = run_scale_benchmark(100_000, topology="gnutella",
                              protocol="wildfire", aggregate="count",
                              seed=1)
    print(f"\n100k hosts: {row['run_seconds']}s, {row['messages']} messages "
          f"({row['messages_per_second']}/s)")
    assert row["hosts"] == 100_000
    assert row["messages"] > 100_000          # the flood alone exceeds |H|
    # FM count estimate at c=8 is within a small multiplicative factor.
    assert 100_000 / 8 <= row["value"] <= 100_000 * 8
    _record_trajectory("pytest 100k scale", **{
        k: row[k] for k in ("hosts", "gen_seconds", "run_seconds",
                            "messages", "messages_per_second")})
