"""Kernel throughput benchmarks: the batched-ring speedup and 100k scale.

Three locks on the simulation kernel's performance:

* ``test_wildfire_1k_speedup_vs_pre_rewrite_baseline`` -- the 1k-host
  WILDFIRE run must be at least 5x faster than the pre-rewrite kernel's
  recorded baseline (``BENCH_kernel.json``).  A fixed integer-loop
  calibration workload normalises machine speed, so the recorded baseline
  transfers across hosts.
* ``test_perf_smoke_budget`` -- the CI perf smoke: the same run must stay
  inside a generous calibrated budget and fails on a >2x regression.
* ``test_100k_host_run_completes`` -- a beyond-paper 100,000-host
  Gnutella-like WILDFIRE count run completes and declares a sane
  estimate (the paper's own experiments stop at ~39k hosts).
* ``test_100k_streaming_run_matches_full_and_stays_in_rss_budget`` --
  the same run under streaming accounting is measure-identical, its
  accounting structures are >=5x smaller, and the process peak RSS stays
  inside a budget.
* ``test_packed_core_100k_rss_is_2x_below_prepacked_baseline`` -- the
  packed-memory network core's guard: ``repro bench --hosts 100000
  --stats streaming`` in a clean subprocess must peak >=2x below the
  pre-packed-core baseline RSS recorded in ``BENCH_kernel.json``.
* ``test_vector_lane_10k_differential_and_2x_speedup`` -- the CI
  python-vs-vector differential cell: the opt-in vectorized kernel lane
  must reproduce the python lane bit-for-bit (value, cost fingerprint,
  declaration time) on a 10k-host streaming run and beat it by >=2x
  (self-calibrating: both lanes are timed interleaved on this machine).
* ``test_bench_lane_cli_smoke`` -- ``repro bench --lane`` end to end in
  a clean subprocess: the flag reaches the kernel, the JSON row records
  the lane, and both lanes' rows agree on every cost measure.
* ``test_million_host_run_completes_when_requested`` -- the 1,000,000
  host streaming run (opt-in via ``REPRO_BENCH_MILLION=1``).

Each benchmark appends its measurement to the ``BENCH_kernel.json``
trajectory (path overridable via ``REPRO_BENCH_OUT``) so CI can upload
the kernel's performance history as an artifact.  Set
``REPRO_BENCH_RELAX=1`` to record without asserting (e.g. on exotic or
heavily shared machines).
"""

from __future__ import annotations

import json
import os
import time

import pytest

BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "BENCH_kernel.json")

#: Seeds match the recorded baseline capture exactly.
TOPOLOGY_SEED = 42
RUN_SEED = 7

_RELAX = os.environ.get("REPRO_BENCH_RELAX") == "1"


def _reference():
    with open(BENCH_JSON) as handle:
        return json.load(handle)


def _calibration_sample() -> float:
    """One timing of the fixed, allocation-free integer loop.

    The same loop was timed when the baseline was captured; the ratio of
    the two calibrations rescales the recorded baseline to this machine.
    """
    start = time.perf_counter()
    total = 0
    for i in range(2_000_000):
        total += i & 7
    return time.perf_counter() - start


def _measure_kernel(rounds: int = 6):
    """Best-of-N (calibration, wildfire-1k) with *interleaved* samples.

    On shared machines, load spikes come and go on the scale of a whole
    measurement; timing all calibration samples first and all workload
    runs afterwards lets a spike inflate only one of the two, corrupting
    the calibrated ratio.  Alternating them each round means the best
    sample of each is drawn from the same quiet windows.
    """
    from repro.protocols.base import run_protocol
    from repro.protocols.wildfire import Wildfire
    from repro.topology.gnutella import gnutella_like_topology

    topology = gnutella_like_topology(1000, seed=TOPOLOGY_SEED)
    values = [1.0] * topology.num_hosts
    best_calibration = float("inf")
    best_elapsed = float("inf")
    for _ in range(rounds):
        best_calibration = min(best_calibration, _calibration_sample())
        start = time.perf_counter()
        result = run_protocol(Wildfire(), topology, values, "count",
                              seed=RUN_SEED)
        best_elapsed = min(best_elapsed, time.perf_counter() - start)
    assert result.value is not None and result.costs.messages_sent > 0
    return best_calibration, best_elapsed


def _record_trajectory(label: str, **fields) -> None:
    """Append a measurement to a BENCH_kernel trajectory copy.

    Writes next to the committed reference (``BENCH_kernel.out.json``,
    gitignored) so test runs never dirty the tree; CI uploads the copy as
    an artifact.  Override the path with ``REPRO_BENCH_OUT``.
    """
    out_path = os.environ.get(
        "REPRO_BENCH_OUT", BENCH_JSON.replace(".json", ".out.json"))
    try:
        with open(out_path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        payload = _reference()
    payload.setdefault("trajectory", []).append({"label": label, **fields})
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=False)
        handle.write("\n")


@pytest.fixture(scope="module")
def kernel_measurement():
    """One shared (calibration, wildfire-1k) measurement per session."""
    calibration, elapsed = _measure_kernel()
    _record_trajectory("pytest perf smoke", wildfire_1k_seconds=round(elapsed, 4),
                       calibration_seconds=round(calibration, 4))
    return calibration, elapsed


def test_wildfire_1k_speedup_vs_pre_rewrite_baseline(kernel_measurement):
    calibration, elapsed = kernel_measurement
    reference = _reference()["reference"]
    # Rescale the recorded pre-rewrite baseline to this machine's speed.
    machine_factor = calibration / reference["baseline_calibration_seconds"]
    adjusted_baseline = reference["baseline_pre_rewrite_seconds"] * machine_factor
    speedup = adjusted_baseline / elapsed
    print(f"\nwildfire-1k: {elapsed:.4f}s, calibrated baseline "
          f"{adjusted_baseline:.4f}s -> speedup {speedup:.2f}x")
    if _RELAX:
        pytest.skip(f"REPRO_BENCH_RELAX=1 (measured {speedup:.2f}x)")
    assert speedup >= reference["required_speedup"], (
        f"kernel speedup {speedup:.2f}x fell below the required "
        f"{reference['required_speedup']}x (measured {elapsed:.4f}s vs "
        f"calibrated pre-rewrite baseline {adjusted_baseline:.4f}s)"
    )


def test_perf_smoke_budget(kernel_measurement):
    """CI perf smoke: fail on a >2x regression against a generous budget."""
    calibration, elapsed = kernel_measurement
    reference = _reference()["reference"]
    machine_factor = calibration / reference["baseline_calibration_seconds"]
    threshold = (reference["budget_seconds"]
                 * reference["budget_regression_factor"] * machine_factor)
    print(f"\nwildfire-1k: {elapsed:.4f}s, calibrated smoke threshold "
          f"{threshold:.4f}s")
    if _RELAX:
        pytest.skip(f"REPRO_BENCH_RELAX=1 (measured {elapsed:.4f}s)")
    assert elapsed <= threshold, (
        f"perf smoke: wildfire-1k took {elapsed:.4f}s, exceeding the "
        f"calibrated budget of {threshold:.4f}s "
        f"({reference['budget_seconds']}s x "
        f"{reference['budget_regression_factor']} x machine factor "
        f"{machine_factor:.2f})"
    )


def test_10k_host_run_is_quick():
    """A 10k-host run (quarter of the paper's crawl) finishes in seconds."""
    from repro.experiments.scale_bench import run_scale_benchmark

    row = run_scale_benchmark(10_000, topology="gnutella",
                              protocol="wildfire", aggregate="count",
                              seed=1)
    print(f"\n10k hosts: {row['run_seconds']}s, {row['messages']} messages "
          f"({row['messages_per_second']}/s)")
    assert row["hosts"] == 10_000
    assert row["messages"] > 0
    assert 0 < row["value"] < float("inf")
    _record_trajectory("pytest 10k scale", **{
        k: row[k] for k in ("hosts", "run_seconds", "messages",
                            "messages_per_second")})


#: Bridge between the full- and streaming-accounting 100k runs: the full
#: run records its accounting footprint here so the streaming run (later
#: in this module) can assert the memory ratio without paying for a
#: second full-accounting pass.
_FULL_100K = {}


def test_100k_host_run_completes():
    """Beyond-paper scale: 100,000 hosts, one WILDFIRE count query.

    The paper's largest network is the 39k-host Gnutella crawl; this run
    is ~2.5x that.  Completion (no runaway event growth, no quadratic
    blowup in the network structures) plus a sane estimate is the
    assertion; the wall time lands in the trajectory for trend-watching.
    """
    from repro.experiments.scale_bench import run_scale_benchmark

    row = run_scale_benchmark(100_000, topology="gnutella",
                              protocol="wildfire", aggregate="count",
                              seed=1)
    print(f"\n100k hosts: {row['run_seconds']}s, {row['messages']} messages "
          f"({row['messages_per_second']}/s, "
          f"accounting {row['accounting_bytes']} bytes)")
    assert row["hosts"] == 100_000
    assert row["messages"] > 100_000          # the flood alone exceeds |H|
    # FM count estimate at c=8 is within a small multiplicative factor.
    assert 100_000 / 8 <= row["value"] <= 100_000 * 8
    _FULL_100K.update(row)
    _record_trajectory("pytest 100k scale", **{
        k: row[k] for k in ("hosts", "gen_seconds", "run_seconds",
                            "messages", "messages_per_second",
                            "peak_rss_mb", "accounting_bytes")})


#: Peak-RSS budget for the perf-smoke *session* up to and including the
#: streaming 100k run.  ``ru_maxrss`` is a process-wide high-water mark,
#: so this covers the full-accounting 100k run that precedes it in the
#: module; the packed network core (CSR adjacency + slotted hosts + lazy
#: multicast expansion) brought the clean-process streaming peak from
#: ~377 MiB down to ~179 MiB, and the in-session mark with the full-
#: accounting predecessor lands just above that.  Budgeted with ~25%
#: headroom; the strict clean-process 2x guard lives in
#: ``test_packed_core_100k_rss_is_2x_below_prepacked_baseline``.
STREAMING_100K_RSS_BUDGET_MB = 250.0


def test_100k_streaming_run_matches_full_and_stays_in_rss_budget():
    """CI perf smoke, memory half: the 100k-host run under streaming
    accounting reproduces the full sink's measures exactly, its
    accounting structures are >=5x smaller, and the process's peak RSS
    stays inside the budget."""
    from repro.experiments.scale_bench import run_scale_benchmark

    row = run_scale_benchmark(100_000, topology="gnutella",
                              protocol="wildfire", aggregate="count",
                              seed=1, stats="streaming")
    print(f"\n100k hosts (streaming): {row['run_seconds']}s, "
          f"accounting {row['accounting_bytes']} bytes, "
          f"peak RSS {row['peak_rss_mb']} MiB")
    assert row["hosts"] == 100_000
    _record_trajectory("pytest 100k streaming", **{
        k: row[k] for k in ("hosts", "run_seconds", "messages",
                            "messages_per_second", "peak_rss_mb",
                            "accounting_bytes")})

    if _FULL_100K:
        # Same seed, same kernel: every cost measure must agree exactly,
        # and the packed accounting must be >=5x below the Counter-based
        # full accounting.
        for key in ("value", "messages", "computation_cost", "time_cost"):
            assert row[key] == _FULL_100K[key], (
                f"streaming accounting diverged from full on {key}")
        assert row["accounting_bytes"] * 5 <= _FULL_100K["accounting_bytes"], (
            f"streaming accounting ({row['accounting_bytes']} bytes) is "
            f"not 5x below full ({_FULL_100K['accounting_bytes']} bytes)")

    if _RELAX:
        pytest.skip(f"REPRO_BENCH_RELAX=1 (peak RSS {row['peak_rss_mb']} MiB)")
    if row["peak_rss_mb"] is not None:
        assert row["peak_rss_mb"] <= STREAMING_100K_RSS_BUDGET_MB, (
            f"peak RSS {row['peak_rss_mb']} MiB exceeds the "
            f"{STREAMING_100K_RSS_BUDGET_MB} MiB perf-smoke budget")


def test_packed_core_100k_rss_is_2x_below_prepacked_baseline():
    """CI perf smoke, packed-core memory guard.

    Runs ``repro bench --hosts 100000 --stats streaming`` in a *clean*
    subprocess (exactly the CLI invocation the acceptance row names, so
    no earlier benchmark inflates the high-water mark) and holds its peak
    RSS to the committed budget -- which itself encodes a >=2x reduction
    against the pre-packed-core baseline recorded in BENCH_kernel.json.
    """
    import subprocess
    import sys
    import tempfile

    reference = _reference()["reference"]
    baseline = reference["streaming_100k_baseline_rss_mb"]
    budget = reference["streaming_100k_rss_budget_mb"]
    # The committed budget must itself encode the 2x cut: loosening it
    # past baseline/2 is a red diff here, not a quiet config tweak.
    assert budget * 2.0 <= baseline, (
        f"streaming_100k_rss_budget_mb={budget} no longer encodes a 2x "
        f"reduction of the {baseline} MiB pre-packed-core baseline")

    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    with tempfile.TemporaryDirectory() as tmp:
        out_path = os.path.join(tmp, "bench.json")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "bench", "--hosts", "100000",
             "--stats", "streaming", "--seed", "1", "--json", out_path],
            env=env, capture_output=True, text=True, timeout=1800)
        assert proc.returncode == 0, (
            f"repro bench failed:\n{proc.stdout}\n{proc.stderr}")
        with open(out_path) as handle:
            # ``repro bench --json`` appends {"label", "rows": [...]};
            # one --hosts value means exactly one row.
            row = json.load(handle)["trajectory"][-1]["rows"][0]

    print(f"\n100k streaming (clean process): peak RSS {row['peak_rss_mb']}"
          f" MiB vs budget {budget} MiB (pre-packed baseline {baseline})")
    _record_trajectory("pytest 100k streaming clean-process", **{
        k: row[k] for k in ("hosts", "run_seconds", "messages",
                            "messages_per_second", "peak_rss_mb",
                            "accounting_bytes")})
    if _RELAX:
        pytest.skip(f"REPRO_BENCH_RELAX=1 (peak RSS {row['peak_rss_mb']} MiB)")
    assert row["peak_rss_mb"] is not None
    assert row["peak_rss_mb"] <= budget, (
        f"packed-core peak RSS {row['peak_rss_mb']} MiB exceeds the "
        f"{budget} MiB budget (pre-packed-core baseline {baseline} MiB; "
        f"the budget encodes a >=2x reduction)")


def test_service_throughput_10k():
    """Concurrent-query throughput: a mixed WILDFIRE/tree/DAG Poisson
    load multiplexed over one shared 10k-host network.

    The single-query rows above scale *hosts*; this row scales
    *concurrent query load* -- the service multiplexes every query over
    one calendar-queue event loop, so the whole mix costs one network
    build and per-query state only while a query is in flight.
    Completion plus full answer coverage is the assertion; queries/sec
    lands in the trajectory for trend-watching.
    """
    from repro.experiments.scale_bench import run_service_benchmark

    row = run_service_benchmark(10_000, qps=1.0, duration=10.0, seed=1,
                                stats="streaming")
    print(f"\n10k-host service: {row['answered']}/{row['queries']} queries "
          f"in {row['run_seconds']}s ({row['queries_per_second']} q/s, "
          f"{row['messages_per_second']} msg/s)")
    assert row["hosts"] == 10_000
    assert row["queries"] >= 5
    assert row["answered"] == row["queries"] - row["failed"]
    assert row["failed"] == 0          # static network: nothing can fail
    assert row["messages"] > 0
    _record_trajectory("pytest 10k service throughput", **{
        k: row[k] for k in ("hosts", "queries", "answered", "run_seconds",
                            "queries_per_second", "messages",
                            "messages_per_second", "peak_rss_mb")})


#: Required python/vector wall-time ratio on the 10k differential cell.
#: The 100k acceptance row in BENCH_kernel.json shows >=3x, but the CI
#: cell is 10x smaller (activation and d_hat BFS weigh relatively more),
#: so the red line sits at 2x -- a genuine lane regression lands well
#: below it, while machine noise does not.
VECTOR_LANE_REQUIRED_SPEEDUP = 2.0


def test_vector_lane_10k_differential_and_2x_speedup():
    """CI perf smoke, vector-lane half: the python-vs-vector cell.

    Runs the same 10k-host streaming WILDFIRE count query through both
    kernel lanes, interleaved best-of-3 (same rationale as
    ``_measure_kernel``): the vector lane must be *bit-identical* --
    value, ``costs.fingerprint()`` and declaration time -- and at least
    2x faster.  The budget is self-calibrating because both lanes are
    timed on the same machine in the same session; no recorded baseline
    is involved.
    """
    from repro.protocols.base import run_protocol
    from repro.protocols.wildfire import Wildfire
    from repro.simulation import vector_lane
    from repro.topology.gnutella import gnutella_like_topology

    topology = gnutella_like_topology(10_000, seed=TOPOLOGY_SEED)
    values = [1.0] * topology.num_hosts

    def sample(lane):
        start = time.perf_counter()
        result = run_protocol(Wildfire(), topology, values, "count",
                              seed=RUN_SEED, stats="streaming", lane=lane)
        return time.perf_counter() - start, {
            "value": result.value,
            "fingerprint": result.costs.fingerprint(),
            "declared_at": result.finished_at,
        }

    best = {"python": float("inf"), "vector": float("inf")}
    snapshots = {}
    engaged_before = vector_lane.engagements
    for _ in range(3):
        for lane in ("python", "vector"):
            elapsed, snapshot = sample(lane)
            best[lane] = min(best[lane], elapsed)
            assert snapshots.setdefault(lane, snapshot) == snapshot, (
                f"{lane} lane is not deterministic across repeats")
    assert vector_lane.engagements == engaged_before + 3, (
        f"vector lane fell back to the spec loop "
        f"({vector_lane.last_fallback_reason})")
    assert snapshots["vector"] == snapshots["python"], (
        "vector lane diverged from the python lane on the 10k cell: "
        f"python={snapshots['python']} vector={snapshots['vector']}")

    speedup = best["python"] / best["vector"]
    print(f"\n10k differential: python {best['python']:.4f}s, "
          f"vector {best['vector']:.4f}s -> {speedup:.2f}x (bit-identical)")
    _record_trajectory("pytest 10k vector differential", hosts=10_000,
                       python_seconds=round(best["python"], 4),
                       vector_seconds=round(best["vector"], 4),
                       speedup=round(speedup, 2))
    if _RELAX:
        pytest.skip(f"REPRO_BENCH_RELAX=1 (measured {speedup:.2f}x)")
    assert speedup >= VECTOR_LANE_REQUIRED_SPEEDUP, (
        f"vector lane speedup {speedup:.2f}x fell below the required "
        f"{VECTOR_LANE_REQUIRED_SPEEDUP}x (python {best['python']:.4f}s, "
        f"vector {best['vector']:.4f}s)")


def test_bench_lane_cli_smoke():
    """``repro bench --lane`` end to end: the flag reaches the kernel.

    Runs the bench CLI once per lane in a clean subprocess on a small
    network and checks that the JSON rows record their lane and agree on
    every cost measure -- the CLI-level version of the differential cell
    above (which owns the timing budget; subprocess wall times at this
    size are dominated by interpreter start-up).
    """
    import subprocess
    import sys
    import tempfile

    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    rows = {}
    with tempfile.TemporaryDirectory() as tmp:
        for lane in ("python", "vector"):
            out_path = os.path.join(tmp, f"bench-{lane}.json")
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "bench", "--hosts", "4000",
                 "--stats", "streaming", "--seed", "1", "--lane", lane,
                 "--json", out_path, "--label", f"cli-smoke-{lane}"],
                env=env, capture_output=True, text=True, timeout=600)
            assert proc.returncode == 0, (
                f"repro bench --lane {lane} failed:\n"
                f"{proc.stdout}\n{proc.stderr}")
            with open(out_path) as handle:
                rows[lane] = json.load(handle)["trajectory"][-1]["rows"][0]

    for lane, row in rows.items():
        assert row["lane"] == lane
        assert row["hosts"] == 4000
        assert 4000 / 8 <= row["value"] <= 4000 * 8
    for key in ("value", "d_hat", "messages", "computation_cost",
                "time_cost", "accounting_bytes"):
        assert rows["vector"][key] == rows["python"][key], (
            f"--lane vector diverged from --lane python on {key}: "
            f"{rows['vector'][key]!r} != {rows['python'][key]!r}")
    _record_trajectory("pytest bench --lane cli smoke", hosts=4000, **{
        f"{lane}_run_seconds": rows[lane]["run_seconds"]
        for lane in ("python", "vector")})


def test_million_host_run_completes_when_requested():
    """The headline streaming-accounting run: 1,000,000 hosts.

    ~25x the paper's largest network.  Takes several minutes, so it only
    runs when REPRO_BENCH_MILLION=1 is set (CI smoke stays at 100k); the
    committed BENCH_kernel.json trajectory records a completed run.
    """
    if os.environ.get("REPRO_BENCH_MILLION") != "1":
        pytest.skip("set REPRO_BENCH_MILLION=1 to run the 1M-host benchmark")
    from repro.experiments.scale_bench import run_scale_benchmark

    row = run_scale_benchmark(1_000_000, topology="gnutella",
                              protocol="wildfire", aggregate="count",
                              seed=1, stats="streaming")
    print(f"\n1M hosts (streaming): {row['run_seconds']}s, "
          f"{row['messages']} messages, peak RSS {row['peak_rss_mb']} MiB, "
          f"accounting {row['accounting_bytes']} bytes")
    assert row["hosts"] == 1_000_000
    assert 1_000_000 / 8 <= row["value"] <= 1_000_000 * 8
    _record_trajectory("pytest 1M streaming", **{
        k: row[k] for k in ("hosts", "gen_seconds", "run_seconds",
                            "messages", "messages_per_second",
                            "peak_rss_mb", "accounting_bytes")})
