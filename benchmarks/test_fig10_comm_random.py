"""Figure 10 benchmark: communication cost vs network size on Random."""

from conftest import BENCH_SEED, run_once

from repro.experiments.communication import (
    run_communication_cost_experiment,
    wildfire_to_tree_ratio,
)
from repro.experiments.tables import format_table


def test_fig10_communication_cost_random(benchmark):
    rows = run_once(
        benchmark,
        run_communication_cost_experiment,
        network_sizes=(200, 400, 800),
        d_hat_factors=(1.0, 1.5, 2.0),
        include_gnutella_point=True,
        gnutella_size=600,
        seed=BENCH_SEED,
    )
    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Figure 10: communication cost on Random (+Gnutella)"))

    ratios = wildfire_to_tree_ratio(rows)
    print("WILDFIRE / SPANNINGTREE message ratio by |H|:",
          {size: round(ratio, 2) for size, ratio in sorted(ratios.items())})

    # The paper's price of validity: a constant factor (about 4-5x), clearly
    # above 1 and far below the worst case, at every network size.
    assert all(1.5 <= ratio <= 15 for ratio in ratios.values())

    # Overestimating D_hat does not change WILDFIRE's traffic.
    for size in (200, 400, 800):
        wildfire_msgs = {r.messages for r in rows
                         if r.num_hosts == size and r.label.startswith("wildfire (D_hat")}
        assert max(wildfire_msgs) <= min(wildfire_msgs) * 1.1

    benchmark.extra_info["ratio_by_size"] = {str(k): round(v, 2)
                                             for k, v in ratios.items()}
