"""Tracing overhead guard: a traced 10k-host run stays within 1.15x.

The telemetry subsystem's enabled-path promise: with a `RingTracer` at
default sampling attached, the kernel pays one method call per event and
a bounded ring append per *sampled* event -- so a traced run must stay
within 15% of the untraced wall-clock.  The disabled path is locked
bit-identical by ``tests/obs/test_zero_cost.py``; this module locks the
enabled path's price and leaves the trace + metrics snapshot behind as
CI artifacts (``OBS_trace.out.json`` / ``OBS_metrics.out.json``,
gitignored, uploaded by the perf-smoke job).

Samples are paired (untraced then traced, back to back, five rounds)
for the same reason the kernel benchmark interleaves calibration and
workload: a load spike on a shared machine then inflates a whole
round's ratio, not one side of it, and the budget is judged on the
best paired round.  Set ``REPRO_BENCH_RELAX=1`` to record without
asserting.
"""

from __future__ import annotations

import json
import os
import time

import pytest

#: Traced wall-clock must stay within this factor of untraced.
TRACED_OVERHEAD_FACTOR = 1.15

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
TRACE_OUT = os.path.join(BENCH_DIR, "OBS_trace.out.json")
METRICS_OUT = os.path.join(BENCH_DIR, "OBS_metrics.out.json")

_RELAX = os.environ.get("REPRO_BENCH_RELAX") == "1"

HOSTS = 10_000
SEED = 1


def test_traced_10k_run_within_overhead_budget():
    from repro.obs.metrics import collect_run_metrics
    from repro.obs.trace import RingTracer
    from repro.protocols.base import run_protocol
    from repro.protocols.wildfire import Wildfire
    from repro.topology.gnutella import gnutella_like_topology

    topology = gnutella_like_topology(HOSTS, seed=SEED)
    values = [1.0] * topology.num_hosts

    def one_run(tracer):
        start = time.perf_counter()
        result = run_protocol(Wildfire(), topology, values, "count",
                              seed=SEED, tracer=tracer)
        return time.perf_counter() - start, result

    # Five paired rounds; the budget is judged on the best *paired*
    # round.  Pairing untraced/traced back-to-back correlates machine
    # load across the two halves, so a CI neighbour's sustained spike
    # inflates a whole round's ratio rather than one side of a
    # cross-round min -- one clean round is enough to prove the price.
    rounds = []
    tracer = None
    traced_result = None
    untraced_result = None
    for _ in range(5):
        untraced_elapsed, untraced_result = one_run(None)
        round_tracer = RingTracer()       # fresh ring: no eviction skew
        traced_elapsed, traced_result = one_run(round_tracer)
        rounds.append((traced_elapsed / untraced_elapsed,
                       untraced_elapsed, traced_elapsed, round_tracer))

    ratio, best_untraced, best_traced, tracer = min(rounds)
    print(f"\n10k hosts, best paired round: untraced {best_untraced:.3f}s, "
          f"traced {best_traced:.3f}s -> {ratio:.3f}x "
          f"(budget {TRACED_OVERHEAD_FACTOR}x; all rounds "
          f"{[round(r[0], 3) for r in sorted(rounds)]})")

    # Tracing observes only: identical results either way.
    assert traced_result.value == untraced_result.value
    assert traced_result.costs.messages_sent == \
        untraced_result.costs.messages_sent
    assert tracer.counts["send"] == traced_result.costs.messages_sent

    # Leave the artifacts behind for the CI upload: the full sampled
    # trace (Perfetto-loadable) and a metrics snapshot beside it.
    trace_bytes = os.path.getsize(TRACE_OUT) \
        if tracer.export_chrome(TRACE_OUT) >= 0 else 0
    snapshot = collect_run_metrics(traced_result).snapshot()
    snapshot["obs.trace"] = tracer.summary()
    snapshot["obs.trace_bytes"] = trace_bytes
    snapshot["obs.untraced_seconds"] = round(best_untraced, 4)
    snapshot["obs.traced_seconds"] = round(best_traced, 4)
    snapshot["obs.overhead_ratio"] = round(ratio, 4)
    with open(METRICS_OUT, "w") as handle:
        json.dump(snapshot, handle, indent=1, sort_keys=True)
        handle.write("\n")

    # The exported trace must stay inside the documented 64 MiB bound.
    assert trace_bytes < 64 * 1024 * 1024

    if _RELAX:
        pytest.skip(f"REPRO_BENCH_RELAX=1 (measured {ratio:.3f}x)")
    assert ratio <= TRACED_OVERHEAD_FACTOR, (
        f"traced 10k-host run is {ratio:.3f}x the untraced wall-clock, "
        f"over the {TRACED_OVERHEAD_FACTOR}x budget "
        f"({best_traced:.3f}s vs {best_untraced:.3f}s)")


def test_traced_sharded_run_within_overhead_budget():
    """Per-worker tracing keeps the sharded lane inside the same 1.15x.

    Each worker pays the spec engine's price locally (one pointer check
    per hook, a ring append per sampled event) plus one raw-tuple ship
    over the result pipe at the end; the merged trace must not change
    the declared results at all.  Paired rounds, judged on the best
    pair, as above.
    """
    from repro.obs.trace import RingTracer
    from repro.protocols.base import run_protocol
    from repro.protocols.wildfire import Wildfire
    from repro.simulation import sharded
    from repro.topology.random_graph import random_topology
    from repro.workloads.values import uniform_values

    hosts = 4_000
    shards = 2
    topology = random_topology(hosts, avg_degree=4.0, seed=SEED)
    values = uniform_values(hosts, low=1, high=50, seed=SEED)

    def one_run(tracer):
        start = time.perf_counter()
        result = run_protocol(Wildfire(), topology, values, "count",
                              querying_host=0, seed=SEED, tracer=tracer,
                              lane="sharded", shards=shards)
        return time.perf_counter() - start, result

    rounds = []
    for _ in range(5):
        before = sharded.engagements
        untraced_elapsed, untraced_result = one_run(None)
        round_tracer = RingTracer()
        traced_elapsed, traced_result = one_run(round_tracer)
        assert sharded.engagements == before + 2, (
            f"sharded lane fell back: {sharded.last_fallback_reason}")
        rounds.append((traced_elapsed / untraced_elapsed,
                       untraced_elapsed, traced_elapsed, round_tracer))

    ratio, best_untraced, best_traced, tracer = min(rounds)
    print(f"\n{hosts} hosts x{shards} shards, best paired round: "
          f"untraced {best_untraced:.3f}s, traced {best_traced:.3f}s "
          f"-> {ratio:.3f}x (budget {TRACED_OVERHEAD_FACTOR}x; all "
          f"rounds {[round(r[0], 3) for r in sorted(rounds)]})")

    # Observe-only across process boundaries: identical declared value
    # and cost accounting, one process track per shard, exact counts.
    assert traced_result.value == untraced_result.value
    assert (traced_result.costs.fingerprint()
            == untraced_result.costs.fingerprint())
    assert tracer.counts["send"] == traced_result.costs.messages_sent
    assert len(tracer.processes) == shards

    if _RELAX:
        pytest.skip(f"REPRO_BENCH_RELAX=1 (measured {ratio:.3f}x)")
    assert ratio <= TRACED_OVERHEAD_FACTOR, (
        f"traced sharded run is {ratio:.3f}x the untraced wall-clock, "
        f"over the {TRACED_OVERHEAD_FACTOR}x budget "
        f"({best_traced:.3f}s vs {best_untraced:.3f}s)")
