"""Figure 6 benchmark: accuracy of the FM count and sum operators."""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments.accuracy import run_accuracy_experiment
from repro.experiments.tables import format_table


def test_fig06_accuracy(benchmark):
    rows = run_once(
        benchmark,
        run_accuracy_experiment,
        set_sizes=(512, 2048),
        repetitions_sweep=(1, 2, 4, 8, 16),
        num_trials=3,
        seed=BENCH_SEED,
    )
    table = [row.as_dict() for row in rows]
    print()
    print(format_table(table, title="Figure 6: FM operator accuracy ratio vs c"))

    # Shape check: at c=16 both operators are close to ratio 1.
    converged = [row for row in rows if row.repetitions == 16]
    for row in converged:
        assert 0.5 <= row.accuracy_ratio.mean <= 1.7
    benchmark.extra_info["rows"] = len(rows)
    benchmark.extra_info["count_ratio_at_c16"] = round(
        next(r.accuracy_ratio.mean for r in converged if r.operator == "count"), 3
    )
