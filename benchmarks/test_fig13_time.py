"""Figure 13 benchmark: time cost and the per-instant message profile."""

from conftest import BENCH_SEED, run_once

from repro.experiments.tables import format_table
from repro.experiments.time_cost import (
    run_messages_per_instant_experiment,
    run_time_cost_experiment,
)


def test_fig13a_time_cost(benchmark):
    rows = run_once(
        benchmark,
        run_time_cost_experiment,
        network_sizes=(200, 400, 800),
        d_hat_factors=(1.0, 1.5, 2.0),
        seed=BENCH_SEED,
    )
    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Figure 13(a): time cost vs |H| on Random"))

    for size in (200, 400, 800):
        wildfire = [r for r in rows if r.num_hosts == size and r.label.startswith("wildfire")]
        tree = [r for r in rows if r.num_hosts == size and r.label == "spanning-tree"]
        # Declaration time grows proportionally with the D_hat overestimate...
        declared = sorted(r.declaration_time for r in wildfire)
        assert declared[-1] > declared[0]
        # ...and the spanning tree declares no later than WILDFIRE's earliest.
        assert tree[0].declaration_time <= declared[0] + 1e-9
        # Messages stay flat across D_hat despite the longer wait.
        messages = {r.messages for r in wildfire}
        assert max(messages) <= min(messages) * 1.1

    benchmark.extra_info["sizes"] = [200, 400, 800]


def test_fig13b_messages_per_instant(benchmark):
    rows = run_once(
        benchmark,
        run_messages_per_instant_experiment,
        random_size=500,
        power_law_size=500,
        grid_side=14,
        d_hat_factor=2.0,
        seed=BENCH_SEED,
    )
    print()
    print(format_table([row.as_dict() for row in rows],
                       title="Figure 13(b): WILDFIRE message profile (peak vs diameter)"))

    for row in rows:
        # Traffic peaks around the network diameter and dies out well before
        # the 2 * D_hat deadline (D_hat is twice the diameter here), which is
        # why overestimating D_hat costs time but not messages.
        assert row.peak_time() <= 2.5 * max(1, row.diameter_estimate)
        assert row.last_active_time() <= 2 * 2 * row.diameter_estimate + 2
    benchmark.extra_info["profiles"] = {
        row.topology: {"peak": row.peak_time(), "last": row.last_active_time()}
        for row in rows
    }
