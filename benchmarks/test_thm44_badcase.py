"""Theorem 4.4 benchmark: the unbounded-error construction for best effort."""

from conftest import BENCH_SEED, run_once

from repro.experiments.badcase import run_theorem_44_experiment
from repro.experiments.tables import format_table


def test_theorem_44_construction(benchmark):
    results = run_once(
        benchmark,
        run_theorem_44_experiment,
        cycle_size=100,
        fm_repetitions=24,
        seed=BENCH_SEED,
    )
    print()
    print(format_table([r.as_dict() for r in results],
                       title="Theorem 4.4: cycle-with-pendant construction"))

    by_name = {r.protocol: r for r in results}
    tree = by_name["spanning-tree"]
    wildfire = by_name["wildfire"]
    # The spanning tree loses (roughly) the longer half of the cycle: the
    # error factor relative to the stable core is at least ~2 and the answer
    # is not Single-Site Valid.
    assert tree.error_factor >= 1.8
    assert not tree.is_valid
    # WILDFIRE's duplicate-insensitive count stays valid on the same run.
    assert wildfire.is_valid
    benchmark.extra_info["tree_error_factor"] = round(tree.error_factor, 2)
