"""CI smoke for distributed tracing on the sharded lane.

A fast end-to-end check that ``--lane sharded --trace-out`` really
produces ONE merged, Perfetto-loadable trace: one 500-host WILDFIRE
count cell with churn runs traced at 2 worker processes, and the test
asserts engagement, bit-identity against the untraced sharded run (the
tracer observes only, even across fork), one process track per shard,
epoch/barrier wall-clock spans, and monotone per-track timestamps (the
Perfetto loadability bar).  The merged trace is written next to the
committed benchmarks (``OBS_shard_trace.out.json``, gitignored) so CI
can upload it as an artifact; override the path with
``REPRO_OBS_SHARD_OUT``.
"""

from __future__ import annotations

import json
import os
import time

NUM_HOSTS = 500
SEED = 23
SHARDS = 2

OUT_PATH = os.environ.get(
    "REPRO_OBS_SHARD_OUT",
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 "OBS_shard_trace.out.json"))


def _run(tracer):
    from repro.protocols.base import run_protocol
    from repro.protocols.wildfire import Wildfire
    from repro.simulation.churn import uniform_failure_schedule
    from repro.topology.random_graph import random_topology
    from repro.workloads.values import uniform_values

    topology = random_topology(NUM_HOSTS, avg_degree=4.0, seed=SEED)
    values = uniform_values(NUM_HOSTS, low=1, high=50, seed=SEED)
    churn = uniform_failure_schedule(
        candidates=list(range(NUM_HOSTS)), num_failures=10,
        start=0.5, end=6.0, seed=SEED, protect=[0])
    started = time.perf_counter()
    result = run_protocol(Wildfire(), topology, values, "count",
                          querying_host=0, churn=churn, seed=SEED,
                          stats="streaming", tracer=tracer,
                          lane="sharded", shards=SHARDS)
    elapsed = time.perf_counter() - started
    return result, {
        "value": result.value,
        "cost_fingerprint": result.costs.fingerprint(),
        "declared_at": result.finished_at,
        "messages": result.costs.messages_sent,
    }, round(elapsed, 4)


def test_sharded_trace_smoke():
    from repro.obs.timeline import ShardTimeline
    from repro.obs.trace import RingTracer
    from repro.simulation import sharded

    before = sharded.engagements
    _, untraced_digest, untraced_seconds = _run(None)
    tracer = RingTracer()
    result, traced_digest, traced_seconds = _run(tracer)
    assert sharded.engagements == before + 2, (
        f"sharded lane fell back: {sharded.last_fallback_reason}")

    # Tracing observes only, even across the fork boundary.
    assert traced_digest == untraced_digest

    # The merged ring carries one process track per shard, with records
    # in every track, and exact run-wide counts despite ring sampling.
    track_summaries = tracer.summary()["processes"]
    assert [p["label"] for p in track_summaries] == [
        f"shard {k}" for k in range(SHARDS)]
    assert all(p["recorded"] > 0 for p in track_summaries)
    assert tracer.counts["send"] == result.costs.messages_sent

    # ... and the epoch/barrier timeline rode back with the result.
    timeline = ShardTimeline.from_run(result)
    assert timeline is not None and timeline.epochs() > 0
    stragglers = timeline.skew_report()
    assert len(stragglers) == timeline.epochs()

    # Export the merged trace and re-load it the way Perfetto would:
    # named process metadata for every shard plus the barrier timeline,
    # epoch/barrier "X" spans, and monotone per-(pid, tid) timestamps.
    written = tracer.export_chrome(OUT_PATH)
    with open(OUT_PATH) as handle:
        payload = json.load(handle)
    events = payload["traceEvents"]
    assert len(events) == written > 0
    process_names = {e["args"]["name"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
    expected = {f"shard {k}" for k in range(SHARDS)}
    expected.add("epoch barriers (wall clock)")
    assert expected <= process_names
    span_cats = {e["cat"] for e in events
                 if e["ph"] == "X" and e["cat"] in ("barrier", "epoch")}
    assert span_cats == {"barrier", "epoch"}
    tracks = {}
    for event in events:
        if event["ph"] == "M":
            continue
        tracks.setdefault((event["pid"], event.get("tid")),
                          []).append(event["ts"])
    for stamps in tracks.values():
        assert stamps == sorted(stamps)
    assert payload["metadata"]["counts"] == dict(tracer.counts)

    worst = timeline.health()["worst_epoch"]
    print(f"\nshard trace smoke: {written} events across {len(tracks)} "
          f"tracks, {timeline.epochs()} epochs, untraced {untraced_seconds}s "
          f"vs traced {traced_seconds}s, worst epoch "
          f"{worst['epoch']} (skew {worst['skew_s']}s), bit-identical")
