"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (the paper's 40K-host networks are out of reach for a quick pure-
Python benchmark run; EXPERIMENTS.md documents larger-scale runs).  Each
benchmark prints the regenerated table so `pytest benchmarks/
--benchmark-only` output doubles as a reproduction report, and attaches key
numbers to the benchmark's ``extra_info``.
"""

from __future__ import annotations

import pytest

#: Scale factor applied to all benchmark experiment sizes.
BENCH_SCALE = 0.35

#: Seed shared by every benchmark so runs are reproducible.
BENCH_SEED = 1


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiment drivers take seconds, so calibrated multi-round timing
    would make the suite unreasonably slow; a single round still records the
    wall-clock cost of regenerating the figure.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_orchestrated(benchmark, figure_id, *, scale=BENCH_SCALE, trials=1,
                     workers=1, store=None, force=False):
    """Run a figure's trial matrix through the orchestration subsystem.

    Routes the benchmark through :func:`repro.experiments.figures.
    run_figure_matrix` (spec -> executor -> cache) so the harness measures
    the same path the ``python -m repro`` CLI exercises.  Returns the
    figure's :class:`~repro.orchestration.executor.RunReport`.
    """
    from repro.experiments.figures import run_figure_matrix

    def orchestrate():
        reports = run_figure_matrix(
            [figure_id], scale=scale, num_trials=trials,
            base_seed=BENCH_SEED, workers=workers, store=store, force=force,
        )
        return reports[figure_id]

    report = run_once(benchmark, orchestrate)
    benchmark.extra_info["cache_key"] = report.cache_key[:12]
    benchmark.extra_info["trials_cached"] = report.num_cached
    benchmark.extra_info["trials_executed"] = report.num_executed
    return report
