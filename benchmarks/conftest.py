"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (the paper's 40K-host networks are out of reach for a quick pure-
Python benchmark run; EXPERIMENTS.md documents larger-scale runs).  Each
benchmark prints the regenerated table so `pytest benchmarks/
--benchmark-only` output doubles as a reproduction report, and attaches key
numbers to the benchmark's ``extra_info``.
"""

from __future__ import annotations

import pytest

#: Scale factor applied to all benchmark experiment sizes.
BENCH_SCALE = 0.35

#: Seed shared by every benchmark so runs are reproducible.
BENCH_SEED = 1


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiment drivers take seconds, so calibrated multi-round timing
    would make the suite unreasonably slow; a single round still records the
    wall-clock cost of regenerating the figure.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
