"""Tests for the query combine functions."""

import random

import pytest

from repro.sketches.combiners import (
    AverageState,
    ExactAverageCombiner,
    ExactCountCombiner,
    ExactSumCombiner,
    FMAverageCombiner,
    FMCountCombiner,
    FMSumCombiner,
    MaxCombiner,
    MinCombiner,
    combiner_for_query,
)


@pytest.fixture
def rng():
    return random.Random(42)


class TestOrderCombiners:
    def test_min_combiner(self, rng):
        combiner = MinCombiner()
        assert combiner.duplicate_insensitive
        a = combiner.initial(5, rng)
        b = combiner.initial(3, rng)
        assert combiner.combine(a, b) == 3
        assert combiner.finalize(combiner.combine(a, b)) == 3.0

    def test_max_combiner(self, rng):
        combiner = MaxCombiner()
        assert combiner.combine(combiner.initial(5, rng), combiner.initial(9, rng)) == 9

    def test_order_combiners_idempotent(self, rng):
        for combiner in (MinCombiner(), MaxCombiner()):
            state = combiner.initial(7, rng)
            assert combiner.combine(state, state) == state


class TestExactCombiners:
    def test_count(self, rng):
        combiner = ExactCountCombiner()
        assert not combiner.duplicate_insensitive
        total = combiner.combine(combiner.initial(99, rng), combiner.initial(1, rng))
        assert combiner.finalize(total) == 2.0

    def test_sum(self, rng):
        combiner = ExactSumCombiner()
        total = combiner.combine(combiner.initial(10, rng), combiner.initial(32, rng))
        assert combiner.finalize(total) == 42.0

    def test_average(self, rng):
        combiner = ExactAverageCombiner()
        state = combiner.combine(combiner.initial(10, rng), combiner.initial(20, rng))
        assert isinstance(state, AverageState)
        assert combiner.finalize(state) == 15.0

    def test_average_state_empty(self):
        assert AverageState(total=0.0, count=0.0).value() == 0.0


class TestFMCombiners:
    def test_count_combiner_estimates(self, rng):
        combiner = FMCountCombiner(repetitions=16)
        assert combiner.duplicate_insensitive
        state = combiner.initial(123, rng)
        for _ in range(499):
            state = combiner.combine(state, combiner.initial(5, rng))
        estimate = combiner.finalize(state)
        assert 200 <= estimate <= 1200

    def test_count_combiner_idempotent(self, rng):
        combiner = FMCountCombiner(repetitions=8)
        state = combiner.initial(1, rng)
        assert combiner.combine(state, state) == state

    def test_sum_combiner_estimates(self, rng):
        combiner = FMSumCombiner(repetitions=16)
        values = [30, 100, 250, 75, 45]
        state = combiner.initial(values[0], rng)
        for value in values[1:]:
            state = combiner.combine(state, combiner.initial(value, rng))
        truth = sum(values)
        assert truth / 2.5 <= combiner.finalize(state) <= truth * 2.5

    def test_average_combiner_estimates(self, rng):
        combiner = FMAverageCombiner(repetitions=16)
        values = [100] * 40
        state = combiner.initial(values[0], rng)
        for value in values[1:]:
            state = combiner.combine(state, combiner.initial(value, rng))
        estimate = combiner.finalize(state)
        assert 30 <= estimate <= 300

    def test_average_combiner_empty_count_guard(self, rng):
        combiner = FMAverageCombiner(repetitions=4)
        # A handcrafted state with empty sketches finalizes to 0 rather than
        # dividing by zero.
        from repro.sketches.fm import FMSketch
        from repro.sketches.combiners import _FMAverageState

        state = _FMAverageState(sum_sketch=FMSketch.empty(4),
                                count_sketch=FMSketch.empty(4))
        assert combiner.finalize(state) == 0.0

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            FMCountCombiner(repetitions=0)
        with pytest.raises(ValueError):
            FMSumCombiner(repetitions=0)
        with pytest.raises(ValueError):
            FMAverageCombiner(repetitions=0)


class TestFactory:
    def test_min_max_always_order_combiners(self):
        assert isinstance(combiner_for_query("min"), MinCombiner)
        assert isinstance(combiner_for_query("maximum"), MaxCombiner)

    def test_exact_flag_selects_exact_combiners(self):
        assert isinstance(combiner_for_query("count", exact=True), ExactCountCombiner)
        assert isinstance(combiner_for_query("sum", exact=True), ExactSumCombiner)
        assert isinstance(combiner_for_query("avg", exact=True), ExactAverageCombiner)

    def test_default_is_fm_for_dup_sensitive_aggregates(self):
        assert isinstance(combiner_for_query("count"), FMCountCombiner)
        assert isinstance(combiner_for_query("sum"), FMSumCombiner)
        assert isinstance(combiner_for_query("average"), FMAverageCombiner)

    def test_repetitions_forwarded(self):
        combiner = combiner_for_query("count", repetitions=24)
        assert combiner.repetitions == 24

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            combiner_for_query("median")
