"""Property-based tests for the FM sketch algebra.

The WILDFIRE correctness argument rests on the combine function being a
semilattice operation (idempotent, commutative, associative) so that folding
the same partial aggregate in any order, any number of times, cannot change
the result.  These properties are exercised with hypothesis.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.fm import FMSketch, relative_error, sampling_mode


def sketches(repetitions=4, num_bits=16):
    """Strategy producing FM sketches with fixed shape."""
    vector = st.integers(min_value=0, max_value=(1 << num_bits) - 1)
    return st.builds(
        lambda vs: FMSketch(vectors=tuple(vs), num_bits=num_bits),
        st.lists(vector, min_size=repetitions, max_size=repetitions),
    )


@given(sketches())
@settings(max_examples=80)
def test_merge_idempotent(sketch):
    assert sketch.merge(sketch) == sketch


@given(sketches(), sketches())
@settings(max_examples=80)
def test_merge_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@given(sketches(), sketches(), sketches())
@settings(max_examples=80)
def test_merge_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@given(sketches(), sketches())
@settings(max_examples=80)
def test_merge_monotone_estimate(a, b):
    """Merging can never lower the estimate (bits are only ever added)."""
    merged = a.merge(b)
    assert merged.estimate() >= a.estimate() - 1e-9
    assert merged.estimate() >= b.estimate() - 1e-9


@given(sketches())
@settings(max_examples=80)
def test_empty_is_identity(sketch):
    empty = FMSketch.empty(sketch.repetitions, num_bits=sketch.num_bits)
    assert sketch.merge(empty) == sketch


@given(st.integers(min_value=0, max_value=400), st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=40)
def test_for_value_bit_count_bounded_by_value(value, seed):
    """A sketch for value v can set at most v bits per vector."""
    rng = random.Random(seed)
    sketch = FMSketch.for_value(value, 3, rng)
    for vector in sketch.vectors:
        assert bin(vector).count("1") <= max(value, 0) or value == 0
    if value == 0:
        assert sketch.is_empty()


@given(sketches(), sketches(), st.integers(min_value=0, max_value=2 ** 31),
       st.sampled_from(["fast", "legacy"]))
@settings(max_examples=60)
def test_insert_then_merge_equals_merge_then_insert(a, b, seed, mode):
    """Inserting an element before or after a merge yields the same sketch.

    The element's coin tosses are replayed from the same seed on both
    sides, so this pins the semilattice interaction of ``for_new_element``
    with ``merge`` for both sampling modes.
    """
    with sampling_mode(mode):
        element_before = FMSketch.for_new_element(
            a.repetitions, random.Random(seed), num_bits=a.num_bits)
        element_after = FMSketch.for_new_element(
            a.repetitions, random.Random(seed), num_bits=a.num_bits)
    assert element_before == element_after
    insert_then_merge = a.merge(element_before).merge(b)
    merge_then_insert = a.merge(b).merge(element_after)
    assert insert_then_merge == merge_then_insert


@given(st.integers(min_value=0, max_value=300),
       st.integers(min_value=0, max_value=2 ** 31),
       st.sampled_from(["fast", "legacy"]))
@settings(max_examples=40)
def test_for_value_equals_repeated_single_inserts(value, seed, mode):
    """A sum sketch for v equals v single-element inserts from one stream.

    In each sampling mode, ``for_value`` must be exactly the OR of ``v``
    single-element sketches drawn from the same RNG stream -- the packed
    fast path cannot change what the sketch *is*, only how it is built.
    """
    with sampling_mode(mode):
        bulk = FMSketch.for_value(value, 4, random.Random(seed))
        rng = random.Random(seed)
        incremental = FMSketch.empty(4)
        for _ in range(value):
            incremental = incremental.merge(
                FMSketch.for_new_element(4, rng))
    assert bulk == incremental


@pytest.mark.parametrize("mode", ["fast", "legacy"])
@pytest.mark.parametrize("repetitions,error_budget", [(8, 0.65), (16, 0.45),
                                                      (64, 0.25)])
def test_expected_relative_error_within_c_dependent_bound(mode, repetitions,
                                                          error_budget):
    """Mean relative error over seeded trials obeys the c-dependent bound.

    Section 5.2 trades accuracy for repetitions ``c``: the standard FM
    analysis puts the standard error of the estimate near ``0.78/sqrt(c)``.
    The budgets here are that figure plus generous slack (bias included),
    checked as the *mean* over fixed seeded trials so the test is
    deterministic, and must shrink as ``c`` grows.
    """
    truth = 512
    trials = 30
    with sampling_mode(mode):
        errors = []
        for trial in range(trials):
            rng = random.Random(10_000 * repetitions + trial)
            sketch = FMSketch.for_value(truth, repetitions, rng)
            errors.append(relative_error(sketch.estimate(), truth))
    mean_error = sum(errors) / len(errors)
    assert mean_error <= error_budget, (
        f"mean relative error {mean_error:.3f} over {trials} trials exceeds "
        f"the c={repetitions} budget {error_budget} "
        f"(~0.78/sqrt(c)={0.78 / math.sqrt(repetitions):.3f} + slack)"
    )


@given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=30),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=30)
def test_order_of_merging_does_not_matter(values, seed):
    """Folding host sketches in any order yields the same final sketch."""
    rng = random.Random(seed)
    host_sketches = [FMSketch.for_value(v, 4, rng) for v in values]

    forward = FMSketch.empty(4)
    for sketch in host_sketches:
        forward = forward.merge(sketch)

    backward = FMSketch.empty(4)
    for sketch in reversed(host_sketches):
        backward = backward.merge(sketch)

    assert forward == backward
