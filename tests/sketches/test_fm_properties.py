"""Property-based tests for the FM sketch algebra.

The WILDFIRE correctness argument rests on the combine function being a
semilattice operation (idempotent, commutative, associative) so that folding
the same partial aggregate in any order, any number of times, cannot change
the result.  These properties are exercised with hypothesis.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.fm import FMSketch


def sketches(repetitions=4, num_bits=16):
    """Strategy producing FM sketches with fixed shape."""
    vector = st.integers(min_value=0, max_value=(1 << num_bits) - 1)
    return st.builds(
        lambda vs: FMSketch(vectors=tuple(vs), num_bits=num_bits),
        st.lists(vector, min_size=repetitions, max_size=repetitions),
    )


@given(sketches())
@settings(max_examples=80)
def test_merge_idempotent(sketch):
    assert sketch.merge(sketch) == sketch


@given(sketches(), sketches())
@settings(max_examples=80)
def test_merge_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@given(sketches(), sketches(), sketches())
@settings(max_examples=80)
def test_merge_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@given(sketches(), sketches())
@settings(max_examples=80)
def test_merge_monotone_estimate(a, b):
    """Merging can never lower the estimate (bits are only ever added)."""
    merged = a.merge(b)
    assert merged.estimate() >= a.estimate() - 1e-9
    assert merged.estimate() >= b.estimate() - 1e-9


@given(sketches())
@settings(max_examples=80)
def test_empty_is_identity(sketch):
    empty = FMSketch.empty(sketch.repetitions, num_bits=sketch.num_bits)
    assert sketch.merge(empty) == sketch


@given(st.integers(min_value=0, max_value=400), st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=40)
def test_for_value_bit_count_bounded_by_value(value, seed):
    """A sketch for value v can set at most v bits per vector."""
    rng = random.Random(seed)
    sketch = FMSketch.for_value(value, 3, rng)
    for vector in sketch.vectors:
        assert bin(vector).count("1") <= max(value, 0) or value == 0
    if value == 0:
        assert sketch.is_empty()


@given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=30),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=30)
def test_order_of_merging_does_not_matter(values, seed):
    """Folding host sketches in any order yields the same final sketch."""
    rng = random.Random(seed)
    host_sketches = [FMSketch.for_value(v, 4, rng) for v in values]

    forward = FMSketch.empty(4)
    for sketch in host_sketches:
        forward = forward.merge(sketch)

    backward = FMSketch.empty(4)
    for sketch in reversed(host_sketches):
        backward = backward.merge(sketch)

    assert forward == backward
