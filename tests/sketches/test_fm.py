"""Tests for the Flajolet-Martin sketch."""

import random

import pytest

from repro.sketches.fm import (
    FM_CORRECTION,
    FMSketch,
    estimate_count,
    relative_error,
    required_repetitions,
    sketch_for_new_element,
    sketch_for_value,
)


class TestConstruction:
    def test_empty_sketch(self):
        sketch = FMSketch.empty(4)
        assert sketch.repetitions == 4
        assert sketch.is_empty()
        assert sketch.estimate() == 0.0

    def test_single_element_sets_one_bit_per_vector(self):
        rng = random.Random(1)
        sketch = FMSketch.for_new_element(8, rng)
        assert all(bin(v).count("1") == 1 for v in sketch.vectors)

    def test_for_value_zero_is_empty(self):
        rng = random.Random(1)
        assert FMSketch.for_value(0, 4, rng).is_empty()

    def test_for_value_sets_bits(self):
        rng = random.Random(1)
        sketch = FMSketch.for_value(100, 4, rng)
        assert not sketch.is_empty()
        assert all(v > 0 for v in sketch.vectors)

    def test_invalid_parameters(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            FMSketch.empty(0)
        with pytest.raises(ValueError):
            FMSketch.for_new_element(0, rng)
        with pytest.raises(ValueError):
            FMSketch.for_value(-1, 4, rng)
        with pytest.raises(ValueError):
            FMSketch(vectors=(), num_bits=32)
        with pytest.raises(ValueError):
            FMSketch(vectors=(1 << 40,), num_bits=32)

    def test_standalone_wrappers_use_seed(self):
        a = sketch_for_new_element(4, seed=9)
        b = sketch_for_new_element(4, seed=9)
        assert a == b
        c = sketch_for_value(10, 4, seed=9)
        d = sketch_for_value(10, 4, seed=9)
        assert c == d


class TestMerge:
    def test_merge_is_bitwise_or(self):
        a = FMSketch(vectors=(0b0011, 0b0100), num_bits=8)
        b = FMSketch(vectors=(0b0101, 0b0010), num_bits=8)
        merged = a.merge(b)
        assert merged.vectors == (0b0111, 0b0110)

    def test_merge_operator(self):
        a = FMSketch(vectors=(0b1,), num_bits=8)
        b = FMSketch(vectors=(0b10,), num_bits=8)
        assert (a | b).vectors == (0b11,)

    def test_merge_incompatible_repetitions(self):
        a = FMSketch.empty(2)
        b = FMSketch.empty(3)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_incompatible_widths(self):
        a = FMSketch.empty(2, num_bits=16)
        b = FMSketch.empty(2, num_bits=32)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_is_idempotent(self):
        rng = random.Random(3)
        sketch = FMSketch.for_value(50, 8, rng)
        assert sketch.merge(sketch) == sketch


class TestEstimation:
    def test_lowest_zero_bits(self):
        sketch = FMSketch(vectors=(0b0111, 0b0001, 0b0000), num_bits=8)
        assert sketch.lowest_zero_bits() == (3, 1, 0)

    def test_estimate_grows_with_distinct_elements(self):
        rng = random.Random(5)
        small = FMSketch.empty(16)
        for _ in range(20):
            small = small.merge(FMSketch.for_new_element(16, rng))
        large = FMSketch.empty(16)
        for _ in range(2000):
            large = large.merge(FMSketch.for_new_element(16, rng))
        assert large.estimate() > 5 * small.estimate()

    def test_estimate_accuracy_within_factor_two_at_c16(self):
        rng = random.Random(7)
        truth = 1000
        sketch = FMSketch.empty(16)
        for _ in range(truth):
            sketch = sketch.merge(FMSketch.for_new_element(16, rng))
        estimate = sketch.estimate()
        assert truth / 2 <= estimate <= truth * 2

    def test_sum_estimate_tracks_total(self):
        rng = random.Random(11)
        values = [17, 200, 3, 90, 45, 120, 61]
        sketch = FMSketch.empty(16)
        for value in values:
            sketch = sketch.merge(FMSketch.for_value(value, 16, rng))
        truth = sum(values)
        assert truth / 2.5 <= sketch.estimate() <= truth * 2.5

    def test_estimate_count_helper(self):
        rng = random.Random(13)
        sketches = [FMSketch.for_new_element(16, rng) for _ in range(300)]
        estimate = estimate_count(sketches)
        assert 100 <= estimate <= 900
        assert estimate_count([]) == 0.0

    def test_correction_constant_value(self):
        assert FM_CORRECTION == pytest.approx(0.77351)

    def test_describe_renders_bit_rows(self):
        sketch = FMSketch(vectors=(0b1, 0b10), num_bits=8)
        text = sketch.describe()
        assert len(text.splitlines()) == 2


class TestHelpers:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(5, 0) == float("inf")

    def test_required_repetitions(self):
        assert required_repetitions(3.0) == 3
        assert required_repetitions(4.5) == 5
        with pytest.raises(ValueError):
            required_repetitions(2.0)
