"""Tests for the ORACLE observer."""

import pytest

from repro.semantics.oracle import Oracle
from repro.simulation.churn import ChurnSchedule
from repro.topology.primitives import chain_topology, ring_topology


class TestOracle:
    def test_requires_values_for_every_host(self):
        topo = chain_topology(4)
        with pytest.raises(ValueError):
            Oracle(topo, [1, 2], querying_host=0)

    def test_requires_valid_querying_host(self):
        topo = chain_topology(4)
        with pytest.raises(ValueError):
            Oracle(topo, [1, 2, 3, 4], querying_host=9)

    def test_bounds_match_validity_module(self):
        topo = chain_topology(5)
        values = [1, 2, 3, 4, 5]
        oracle = Oracle(topo, values, querying_host=0)
        churn = ChurnSchedule(failures=[(1.0, 2)])
        bounds = oracle.bounds("sum", churn)
        assert bounds.lower_value == 3  # hosts 0, 1
        assert bounds.upper_value == 15

    def test_report_includes_failure_free_truth(self):
        topo = ring_topology(6)
        values = [2] * 6
        oracle = Oracle(topo, values, querying_host=0)
        report = oracle.report("sum", ChurnSchedule.empty())
        assert report.true_initial_value == 12
        assert report.lower == 12
        assert report.upper == 12

    def test_is_valid_exact_and_approximate(self):
        topo = chain_topology(4)
        values = [1, 1, 1, 1]
        oracle = Oracle(topo, values, querying_host=0)
        churn = ChurnSchedule(failures=[(1.0, 2)])
        # Core = {0, 1} -> count 2; union 4.
        assert oracle.is_valid(2, "count", churn)
        assert oracle.is_valid(4, "count", churn)
        assert not oracle.is_valid(1, "count", churn)
        assert oracle.is_valid(1.7, "count", churn, epsilon=0.2)

    def test_horizon_forwarded(self):
        topo = chain_topology(4)
        oracle = Oracle(topo, [1] * 4, querying_host=0)
        churn = ChurnSchedule(failures=[(10.0, 1)])
        assert oracle.is_valid(4, "count", churn, horizon=5.0)
        bounds_late = oracle.bounds("count", churn, horizon=20.0)
        assert bounds_late.lower_value == 1

    def test_completeness(self):
        topo = chain_topology(4)
        oracle = Oracle(topo, [1] * 4, querying_host=0)
        assert oracle.completeness_of([0, 1]) == pytest.approx(0.5)
        assert oracle.completeness_of([0, 0, 1]) == pytest.approx(0.5)
        assert oracle.completeness_of([]) == 0.0
