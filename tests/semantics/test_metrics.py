"""Tests for the related-work validity metrics."""

import pytest

from repro.semantics.metrics import (
    accuracy_ratio,
    completeness,
    mean_and_confidence_interval,
    relative_error,
    within_factor,
)


class TestCompleteness:
    def test_basic_fraction(self):
        assert completeness([0, 1, 2], 4) == pytest.approx(0.75)

    def test_duplicates_ignored(self):
        assert completeness([1, 1, 1], 3) == pytest.approx(1 / 3)

    def test_out_of_range_host_rejected(self):
        with pytest.raises(ValueError):
            completeness([5], 3)

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            completeness([0], 0)


class TestRelativeError:
    def test_overestimate(self):
        assert relative_error(120, 100) == pytest.approx(0.2)

    def test_underestimate(self):
        assert relative_error(80, 100) == pytest.approx(0.2)

    def test_zero_truth(self):
        assert relative_error(0, 0) == 0.0
        assert relative_error(5, 0) == float("inf")


class TestAccuracyRatio:
    def test_ratio(self):
        assert accuracy_ratio(50, 100) == pytest.approx(0.5)

    def test_zero_truth(self):
        assert accuracy_ratio(0, 0) == 1.0
        assert accuracy_ratio(3, 0) == float("inf")


class TestWithinFactor:
    def test_inside_and_outside(self):
        assert within_factor(150, 100, 2)
        assert within_factor(60, 100, 2)
        assert not within_factor(40, 100, 2)
        assert not within_factor(250, 100, 2)

    def test_zero_truth(self):
        assert within_factor(0, 0, 2)
        assert not within_factor(1, 0, 2)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            within_factor(1, 1, 0)


class TestConfidenceInterval:
    def test_single_sample_has_zero_width(self):
        mean, ci = mean_and_confidence_interval([5.0])
        assert mean == 5.0
        assert ci == 0.0

    def test_constant_samples_have_zero_width(self):
        mean, ci = mean_and_confidence_interval([3.0, 3.0, 3.0])
        assert mean == 3.0
        assert ci == 0.0

    def test_known_values(self):
        samples = [10.0, 14.0]
        mean, ci = mean_and_confidence_interval(samples)
        assert mean == 12.0
        assert ci == pytest.approx(1.96 * (8 ** 0.5) / (2 ** 0.5))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_and_confidence_interval([])
