"""Tests for the Single-Site Validity host-set bounds and checks."""

import pytest

from repro.semantics.validity import (
    ValidityBounds,
    aggregate_over,
    check_approximate_single_site_validity,
    check_single_site_validity,
    compute_bounds,
    stable_core,
    union_set,
)
from repro.simulation.churn import ChurnSchedule
from repro.topology.primitives import chain_topology, ring_topology, star_topology


class TestStableCore:
    def test_no_churn_core_is_whole_component(self):
        topo = chain_topology(5)
        core = stable_core(topo, ChurnSchedule.empty(), querying_host=0)
        assert core == {0, 1, 2, 3, 4}

    def test_failure_cuts_chain(self):
        topo = chain_topology(5)
        churn = ChurnSchedule(failures=[(1.0, 2)])
        core = stable_core(topo, churn, querying_host=0)
        assert core == {0, 1}

    def test_ring_survives_single_failure(self):
        topo = ring_topology(6)
        churn = ChurnSchedule(failures=[(1.0, 3)])
        core = stable_core(topo, churn, querying_host=0)
        assert core == {0, 1, 2, 4, 5}

    def test_querying_host_failure_empties_core(self):
        topo = chain_topology(3)
        churn = ChurnSchedule(failures=[(1.0, 0)])
        assert stable_core(topo, churn, querying_host=0) == set()

    def test_horizon_ignores_later_failures(self):
        topo = chain_topology(5)
        churn = ChurnSchedule(failures=[(10.0, 2)])
        core = stable_core(topo, churn, querying_host=0, horizon=5.0)
        assert core == {0, 1, 2, 3, 4}

    def test_star_center_failure_isolates_querying_leaf(self):
        topo = star_topology(4)
        churn = ChurnSchedule(failures=[(1.0, 0)])
        assert stable_core(topo, churn, querying_host=1) == {1}


class TestUnionSet:
    def test_union_is_all_initial_hosts_without_joins(self):
        topo = chain_topology(4)
        churn = ChurnSchedule(failures=[(1.0, 2)])
        assert union_set(topo, churn) == {0, 1, 2, 3}


class TestAggregateOver:
    def test_all_kinds(self):
        values = [10, 20, 30, 40]
        hosts = [0, 2, 3]
        assert aggregate_over("min", hosts, values) == 10
        assert aggregate_over("max", hosts, values) == 40
        assert aggregate_over("count", hosts, values) == 3
        assert aggregate_over("sum", hosts, values) == 80
        assert aggregate_over("avg", hosts, values) == pytest.approx(80 / 3)

    def test_empty_host_set(self):
        assert aggregate_over("sum", [], [1, 2]) == 0.0

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            aggregate_over("median", [0], [1])


class TestComputeBoundsAndChecks:
    def _bounds(self, kind="count"):
        topo = chain_topology(5)
        values = [5, 10, 15, 20, 25]
        churn = ChurnSchedule(failures=[(1.0, 3)])
        return compute_bounds(topo, values, churn, querying_host=0, kind=kind), values

    def test_bounds_structure(self):
        bounds, _ = self._bounds()
        assert bounds.stable_core == frozenset({0, 1, 2})
        assert bounds.union == frozenset({0, 1, 2, 3, 4})
        assert bounds.core_size == 3
        assert bounds.union_size == 5
        assert bounds.lower_value == 3
        assert bounds.upper_value == 5

    def test_admissible_host_sets(self):
        bounds, _ = self._bounds()
        assert bounds.admissible_host_sets_contain({0, 1, 2})
        assert bounds.admissible_host_sets_contain({0, 1, 2, 4})
        assert not bounds.admissible_host_sets_contain({0, 1})
        assert not bounds.admissible_host_sets_contain({0, 1, 2, 9})

    def test_count_validity_interval(self):
        bounds, values = self._bounds("count")
        assert check_single_site_validity(3, bounds, "count", values)
        assert check_single_site_validity(4, bounds, "count", values)
        assert check_single_site_validity(5, bounds, "count", values)
        assert not check_single_site_validity(2, bounds, "count", values)
        assert not check_single_site_validity(6, bounds, "count", values)

    def test_sum_validity_interval(self):
        bounds, values = self._bounds("sum")
        assert bounds.lower_value == 30
        assert bounds.upper_value == 75
        assert check_single_site_validity(50, bounds, "sum", values)
        assert not check_single_site_validity(29, bounds, "sum", values)

    def test_max_validity(self):
        bounds, values = self._bounds("max")
        # Core max is 15 (hosts 0..2); union max is 25.
        assert check_single_site_validity(15, bounds, "max", values)
        assert check_single_site_validity(25, bounds, "max", values)
        assert not check_single_site_validity(10, bounds, "max", values)

    def test_min_validity(self):
        topo = chain_topology(4)
        values = [50, 40, 5, 30]
        churn = ChurnSchedule(failures=[(1.0, 2)])
        bounds = compute_bounds(topo, values, churn, querying_host=0, kind="min")
        # Core = {0, 1}: min 40; union min 5.  Any subset between them gives
        # a min between 5 and 40.
        assert check_single_site_validity(40, bounds, "min", values)
        assert check_single_site_validity(5, bounds, "min", values)
        assert not check_single_site_validity(45, bounds, "min", values)

    def test_avg_validity(self):
        bounds, values = self._bounds("avg")
        # Core avg = 10, adding hosts 3 and 4 can raise it up to 15.
        assert check_single_site_validity(10, bounds, "avg", values)
        assert check_single_site_validity(15, bounds, "avg", values)
        assert check_single_site_validity(12.5, bounds, "avg", values)
        assert not check_single_site_validity(30, bounds, "avg", values)
        assert not check_single_site_validity(5, bounds, "avg", values)

    def test_unknown_kind_rejected(self):
        bounds, values = self._bounds("count")
        with pytest.raises(ValueError):
            check_single_site_validity(3, bounds, "median", values)


class TestApproximateValidity:
    def test_slack_widens_interval(self):
        topo = chain_topology(5)
        values = [1] * 5
        churn = ChurnSchedule(failures=[(1.0, 3)])
        bounds = compute_bounds(topo, values, churn, querying_host=0, kind="count")
        assert not check_single_site_validity(2.5, bounds, "count", values)
        assert check_approximate_single_site_validity(2.5, bounds, "count", values,
                                                      epsilon=0.2)
        assert not check_approximate_single_site_validity(1.0, bounds, "count",
                                                          values, epsilon=0.2)

    def test_invalid_epsilon(self):
        bounds = ValidityBounds(stable_core=frozenset(), union=frozenset(),
                                querying_host=0)
        with pytest.raises(ValueError):
            check_approximate_single_site_validity(1.0, bounds, "count", [], epsilon=1.5)
