"""Tests for the WILDFIRE protocol."""

import pytest

from repro.protocols.base import run_protocol
from repro.protocols.wildfire import Wildfire
from repro.semantics.oracle import Oracle
from repro.simulation.churn import ChurnSchedule, uniform_failure_schedule
from repro.sketches.combiners import FMCountCombiner, FMSumCombiner
from repro.topology.primitives import chain_topology, ring_topology, star_topology
from repro.topology.random_graph import random_topology
from repro.workloads.values import constant_values, zipf_values


class TestFailureFreeCorrectness:
    def test_max_on_chain(self):
        topo = chain_topology(8)
        values = [3, 9, 1, 7, 20, 5, 2, 11]
        result = run_protocol(Wildfire(), topo, values, "max", d_hat=10, seed=1)
        assert result.value == 20.0

    def test_min_on_ring(self):
        topo = ring_topology(9)
        values = [30, 9, 12, 7, 20, 5, 25, 11, 40]
        result = run_protocol(Wildfire(), topo, values, "min", d_hat=6, seed=1)
        assert result.value == 5.0

    def test_max_value_at_farthest_host_still_found(self):
        topo = chain_topology(10)
        values = [1] * 9 + [99]
        result = run_protocol(Wildfire(), topo, values, "max", d_hat=11, seed=1)
        assert result.value == 99.0

    def test_count_estimate_reasonable(self, small_random_topology):
        values = constant_values(small_random_topology.num_hosts, 1)
        result = run_protocol(Wildfire(), small_random_topology, values, "count",
                              combiner=FMCountCombiner(repetitions=24), seed=3)
        truth = small_random_topology.num_hosts
        assert truth / 2 <= result.value <= truth * 2

    def test_sum_estimate_reasonable(self, small_random_topology, zipf_values_60):
        result = run_protocol(Wildfire(), small_random_topology, zipf_values_60, "sum",
                              combiner=FMSumCombiner(repetitions=24), seed=3)
        truth = sum(zipf_values_60)
        assert truth / 2.5 <= result.value <= truth * 2.5

    def test_single_host_network(self):
        topo = chain_topology(1)
        result = run_protocol(Wildfire(), topo, [42], "max", d_hat=1, seed=1)
        assert result.value == 42.0


class TestValidityUnderChurn:
    def test_max_single_site_valid_with_failures(self, small_random_topology,
                                                  zipf_values_60):
        topo = small_random_topology
        oracle = Oracle(topo, zipf_values_60, 0)
        for seed in range(4):
            churn = uniform_failure_schedule(range(topo.num_hosts), 10,
                                             start=0.5, end=10.0, seed=seed,
                                             protect=[0])
            result = run_protocol(Wildfire(), topo, zipf_values_60, "max",
                                  churn=churn, seed=seed)
            assert oracle.is_valid(result.value, "max", churn,
                                   horizon=result.termination_time)

    def test_min_single_site_valid_with_failures(self, small_random_topology,
                                                  zipf_values_60):
        topo = small_random_topology
        oracle = Oracle(topo, zipf_values_60, 0)
        churn = uniform_failure_schedule(range(topo.num_hosts), 15,
                                         start=0.5, end=10.0, seed=9, protect=[0])
        result = run_protocol(Wildfire(), topo, zipf_values_60, "min",
                              churn=churn, seed=9)
        assert oracle.is_valid(result.value, "min", churn,
                               horizon=result.termination_time)

    def test_ring_survives_single_failure(self):
        """On a ring there are two paths; one failure cannot hide the max."""
        topo = ring_topology(12)
        values = [1] * 12
        values[6] = 77  # host opposite the querying host
        churn = ChurnSchedule(failures=[(1.5, 1)])
        result = run_protocol(Wildfire(), topo, values, "max", d_hat=12,
                              churn=churn, seed=2)
        assert result.value == 77.0

    def test_partitioned_host_does_not_block_result(self):
        """Failing the star centre isolates everyone; the querying host still
        declares a value based on its own attribute (H_C = {hq})."""
        topo = star_topology(6)
        values = [5] + [50] * 6
        churn = ChurnSchedule(failures=[(0.5, 0)])
        # Query from a leaf; the centre dies before forwarding anything.
        result = run_protocol(Wildfire(), topo, values, "max", querying_host=1,
                              d_hat=4, churn=churn, seed=1)
        assert result.value == 50.0 or result.value == values[1]


class TestCostBehaviour:
    def test_communication_bounded_by_worst_case(self, small_random_topology):
        topo = small_random_topology
        values = constant_values(topo.num_hosts, 1)
        d_hat = 10
        result = run_protocol(Wildfire(), topo, values, "count",
                              combiner=FMCountCombiner(repetitions=8),
                              d_hat=d_hat, seed=4)
        worst_case = 2 * d_hat * 2 * topo.num_edges  # both directions
        assert 0 < result.costs.communication_cost <= worst_case

    def test_early_termination_does_not_change_result(self):
        topo = random_topology(50, avg_degree=4, seed=5)
        values = zipf_values(50, seed=5)
        with_opt = run_protocol(Wildfire(early_termination=True), topo, values,
                                "max", d_hat=12, seed=5)
        without_opt = run_protocol(Wildfire(early_termination=False), topo, values,
                                   "max", d_hat=12, seed=5)
        assert with_opt.value == without_opt.value == max(values)
        assert with_opt.costs.communication_cost <= without_opt.costs.communication_cost

    def test_d_hat_overestimate_does_not_change_communication(self):
        topo = random_topology(80, avg_degree=5, seed=6)
        values = zipf_values(80, seed=6)
        tight = run_protocol(Wildfire(), topo, values, "max", d_hat=8, seed=6)
        loose = run_protocol(Wildfire(), topo, values, "max", d_hat=16, seed=6)
        assert tight.value == loose.value
        # Messages stop flowing once aggregates converge, so the overestimate
        # changes the declaration time but not the traffic.
        assert loose.costs.communication_cost == tight.costs.communication_cost
        assert loose.termination_time > tight.termination_time

    def test_min_query_cheaper_than_count(self, small_random_topology):
        """Early aggregation: order-statistic queries quiesce quickly."""
        topo = small_random_topology
        values = zipf_values(topo.num_hosts, seed=8)
        min_run = run_protocol(Wildfire(), topo, values, "min", d_hat=10, seed=8)
        count_run = run_protocol(Wildfire(), topo, values, "count",
                                 combiner=FMCountCombiner(repetitions=8),
                                 d_hat=10, seed=8)
        assert min_run.costs.communication_cost < count_run.costs.communication_cost

    def test_wireless_medium_reduces_message_count(self):
        from repro.topology.grid import grid_topology

        topo = grid_topology(6)
        values = constant_values(topo.num_hosts, 1)
        wired = run_protocol(Wildfire(), topo, values, "max", d_hat=8,
                             wireless=False, seed=9)
        wireless = run_protocol(Wildfire(), topo, values, "max", d_hat=8,
                                wireless=True, seed=9)
        assert wireless.costs.communication_cost < wired.costs.communication_cost
        assert wired.value == wireless.value
