"""Tests for the push-sum gossip baseline."""

import pytest

from repro.protocols.base import run_protocol
from repro.protocols.gossip import PushSumGossip
from repro.topology.random_graph import random_topology
from repro.workloads.values import constant_values, zipf_values


class TestPushSumGossip:
    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            PushSumGossip(num_rounds=0)

    def test_count_converges_to_network_size(self):
        topo = random_topology(80, avg_degree=6, seed=1)
        values = constant_values(80, 1)
        result = run_protocol(PushSumGossip(num_rounds=80), topo, values, "count",
                              seed=1)
        assert result.value == pytest.approx(80, rel=0.15)

    def test_sum_converges(self):
        topo = random_topology(60, avg_degree=6, seed=2)
        values = zipf_values(60, seed=2)
        result = run_protocol(PushSumGossip(num_rounds=80), topo, values, "sum",
                              seed=2)
        assert result.value == pytest.approx(sum(values), rel=0.2)

    def test_avg_converges(self):
        topo = random_topology(60, avg_degree=6, seed=3)
        values = zipf_values(60, seed=3)
        result = run_protocol(PushSumGossip(num_rounds=80), topo, values, "avg",
                              seed=3)
        assert result.value == pytest.approx(sum(values) / 60, rel=0.2)

    def test_max_found_by_flooding(self):
        topo = random_topology(60, avg_degree=6, seed=4)
        values = zipf_values(60, seed=4)
        result = run_protocol(PushSumGossip(num_rounds=40), topo, values, "max",
                              seed=4)
        assert result.value == max(values)

    def test_more_rounds_improve_accuracy(self):
        """Eventual consistency: the estimate tightens as rounds increase."""
        topo = random_topology(100, avg_degree=6, seed=5)
        values = constant_values(100, 1)
        few = run_protocol(PushSumGossip(num_rounds=8), topo, values, "count", seed=5)
        many = run_protocol(PushSumGossip(num_rounds=120), topo, values, "count", seed=5)
        error_few = abs(few.value - 100) / 100
        error_many = abs(many.value - 100) / 100
        assert error_many <= error_few
